import pytest

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.circuits.faults import NetStuckAt
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.faultsim.campaign import (
    classify_structural_fault,
    decoder_campaign,
    scheme_campaign,
)
from repro.faultsim.injector import (
    burst_addresses,
    decoder_fault_list,
    random_addresses,
    rom_fault_list,
    sample_faults,
    sequential_addresses,
)
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.memory.faults import CellStuckAt
from repro.memory.organization import MemoryOrganization
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import Workload


def _uniform_addresses(n_bits, cycles, seed=0):
    return Workload.uniform(1 << n_bits, cycles, seed=seed).address_list()


@pytest.fixture(scope="module")
def checked4():
    return CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 4))


@pytest.fixture(scope="module")
def checker35():
    return MOutOfNChecker(3, 5, structural=False)


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestInjector:
    def test_1_2_stream_shims_warn_deprecation(self):
        with pytest.warns(DeprecationWarning, match="Workload.uniform"):
            random_addresses(4, 10, seed=1)

    def test_random_addresses_deterministic(self):
        assert random_addresses(4, 10, seed=1) == random_addresses(
            4, 10, seed=1
        )
        assert random_addresses(4, 10, seed=1) != random_addresses(
            4, 10, seed=2
        )

    def test_random_addresses_in_range(self):
        assert all(0 <= a < 16 for a in random_addresses(4, 200))

    def test_sequential_wraps(self):
        assert sequential_addresses(2, 6) == [0, 1, 2, 3, 0, 1]
        assert sequential_addresses(2, 3, start=2) == [2, 3, 0]

    def test_burst_length_and_range(self):
        stream = burst_addresses(4, 50, locality=4, seed=0)
        assert len(stream) == 50
        assert all(0 <= a < 16 for a in stream)

    def test_decoder_fault_list_counts(self, checked4):
        faults = decoder_fault_list(checked4)
        assert len(faults) == 2 * checked4.tree.circuit.num_gates
        with_inputs = decoder_fault_list(checked4, include_inputs=True)
        assert len(with_inputs) == len(faults) + 8

    def test_rom_fault_list(self, checked4):
        faults = rom_fault_list(checked4)
        assert len(faults) == 2 * 5

    def test_sample_faults(self, checked4):
        faults = decoder_fault_list(checked4)
        sampled = sample_faults(faults, 5, seed=1)
        assert len(sampled) == 5
        assert sample_faults(faults, None) == faults
        assert sample_faults(faults, 10_000) == faults


class TestDecoderCampaign:
    def test_full_coverage_on_long_uniform_stream(self, checked4, checker35):
        faults = decoder_fault_list(checked4)
        addresses = _uniform_addresses(4, 600, seed=5)
        result = decoder_campaign(checked4, checker35, faults, addresses)
        assert result.coverage == 1.0

    def test_sa0_zero_latency(self, checked4, checker35):
        faults = decoder_fault_list(checked4)
        addresses = _uniform_addresses(4, 300, seed=5)
        result = decoder_campaign(checked4, checker35, faults, addresses)
        for record in result.records:
            if record.kind == "sa0" and record.detected:
                assert record.latency == 0

    def test_analytic_escape_attached(self, checked4, checker35):
        faults = decoder_fault_list(checked4)[:6]
        result = decoder_campaign(
            checked4, checker35, faults, _uniform_addresses(4, 50)
        )
        assert all(r.analytic_escape is not None for r in result.records)

    def test_rom_output_faults_detected(self, checked4, checker35):
        faults = rom_fault_list(checked4)
        result = decoder_campaign(
            checked4, checker35, faults, _uniform_addresses(4, 200, seed=9)
        )
        # a ROM bit stuck flips some programmed word off-weight
        assert result.coverage == 1.0
        assert all(r.kind == "rom" for r in result.records)

    def test_classification(self, checked4):
        tree_gate = checked4.tree.circuit.gates[0]
        assert classify_structural_fault(
            checked4, NetStuckAt(tree_gate.output, 0)
        ) == "sa0"
        assert classify_structural_fault(
            checked4, NetStuckAt(checked4.rom_nets[0], 1)
        ) == "rom"
        input_net = checked4.tree.circuit.input_nets[0]
        assert classify_structural_fault(
            checked4, NetStuckAt(input_net, 1)
        ) == "address"


class TestSchemeCampaign:
    def test_end_to_end_coverage(self):
        org = MemoryOrganization(64, 8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9)
        )
        row_faults = sample_faults(
            decoder_fault_list(memory.row), 12, seed=2
        )
        cell_faults = [CellStuckAt(5, 1, 1), CellStuckAt(9, 0, 0)]
        addresses = _uniform_addresses(org.n, 400, seed=3)
        result = scheme_campaign(
            memory,
            addresses,
            row_faults=row_faults,
            memory_faults=cell_faults,
        )
        assert result.total == 14
        assert result.coverage > 0.8
        kinds = {r.kind for r in result.records}
        assert "memory" in kinds

    def test_writer_hook(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9)
        )
        marker = []

        def writer(mem):
            marker.append(True)
            for a in range(mem.organization.words):
                mem.write(a, (0, 0, 0, 0))

        scheme_campaign(
            memory, [0, 1, 2], memory_faults=[CellStuckAt(0, 0, 1)],
            writer=writer,
        )
        assert marker


class TestResults:
    def make_result(self):
        result = CampaignResult(cycles_simulated=100)
        result.add(FaultRecord("f1", "sa1", first_detection=0))
        result.add(FaultRecord("f2", "sa1", first_detection=7))
        result.add(FaultRecord("f3", "sa0", first_detection=None))
        return result

    def test_aggregates(self):
        result = self.make_result()
        assert result.total == 3
        assert result.detected == 2
        assert result.coverage == pytest.approx(2 / 3)
        assert result.mean_detection_cycle() == pytest.approx(3.5)
        assert result.max_detection_cycle() == 7

    def test_escape_fraction_at(self):
        result = self.make_result()
        assert result.escape_fraction_at(1) == pytest.approx(2 / 3)
        assert result.escape_fraction_at(8) == pytest.approx(1 / 3)

    def test_histogram_partitions_everything(self):
        result = self.make_result()
        hist = result.latency_histogram([1, 5, 10])
        assert sum(hist.values()) == result.total
        assert hist["undetected"] == 1

    def test_by_kind(self):
        groups = self.make_result().by_kind()
        assert set(groups) == {"sa0", "sa1"}
        assert groups["sa1"].total == 2

    def test_summary_keys(self):
        summary = self.make_result().summary()
        assert {"faults", "detected", "coverage"} <= set(summary)

    def test_latency_requires_first_error(self):
        record = FaultRecord("f", "sa1", first_detection=4, first_error=2)
        assert record.latency == 2
        record = FaultRecord("f", "sa1", first_detection=4)
        assert record.latency is None
