import pytest

from repro.circuits.faults import NetStuckAt
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import ModAMapping, ParityMapping, mapping_for_code
from repro.rom.nor_matrix import CheckedDecoder, NORMatrix


class TestNORMatrixBehaviour:
    def test_single_line_emits_programmed_word(self):
        rows = [(1, 0, 1), (0, 1, 1), (1, 1, 0)]
        matrix = NORMatrix(rows)
        for line, expected in enumerate(rows):
            vector = [0, 0, 0]
            vector[line] = 1
            assert matrix.output(vector) == expected

    def test_no_line_emits_all_ones(self):
        matrix = NORMatrix([(1, 0), (0, 1)])
        assert matrix.output((0, 0)) == (1, 1)

    def test_two_lines_emit_bitwise_and(self):
        rows = [(1, 1, 0, 0), (0, 1, 1, 0)]
        matrix = NORMatrix(rows)
        assert matrix.output((1, 1)) == (0, 1, 0, 0)

    def test_sparse_equals_dense(self):
        rows = [(1, 0, 1), (0, 1, 1), (1, 1, 0), (0, 1, 0)]
        matrix = NORMatrix(rows)
        for active in [(0,), (2,), (0, 3), (1, 2, 3), ()]:
            dense = [1 if i in active else 0 for i in range(4)]
            assert matrix.output(dense) == matrix.output_for_lines(active)

    def test_from_mapping_programs_codewords(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), n_bits=4)
        matrix = NORMatrix.from_mapping(mapping)
        assert matrix.num_lines == 16
        assert matrix.width == 5
        for address in range(16):
            assert matrix.output_for_lines((address,)) == mapping.codeword(
                address
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            NORMatrix([])
        with pytest.raises(ValueError):
            NORMatrix([(1, 0), (1,)])
        with pytest.raises(ValueError):
            NORMatrix([(1, 0)]).output((1, 0, 0))
        with pytest.raises(ValueError):
            NORMatrix([(1, 0)]).output_for_lines((3,))


class TestGateLevelView:
    def test_gate_level_matches_behavioural(self):
        from repro.circuits.netlist import Circuit

        rows = [(1, 0, 1), (0, 1, 1), (1, 1, 0), (0, 0, 1)]
        matrix = NORMatrix(rows)
        circuit = Circuit("rom")
        lines = circuit.add_inputs([f"l{i}" for i in range(4)])
        outs = matrix.append_to_circuit(circuit, lines)
        for net in outs:
            circuit.mark_output(net)
        import itertools

        for vector in itertools.product((0, 1), repeat=4):
            assert circuit.evaluate(vector) == matrix.output(vector)

    def test_constant_one_column(self):
        # A column where every row is programmed 1 has no NOR members.
        matrix = NORMatrix([(1, 1), (1, 0)])
        from repro.circuits.netlist import Circuit

        circuit = Circuit()
        lines = circuit.add_inputs(["a", "b"])
        outs = matrix.append_to_circuit(circuit, lines)
        for net in outs:
            circuit.mark_output(net)
        assert circuit.evaluate((0, 0)) == (1, 1)
        assert circuit.evaluate((0, 1)) == (1, 0)


class TestCheckedDecoder:
    @pytest.fixture(scope="class")
    def checked(self):
        return CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 4))

    def test_fault_free_rom_words(self, checked):
        for address in range(16):
            assert checked.rom_word(address) == checked.expected_word(address)

    def test_word_lines_one_hot(self, checked):
        for address in range(16):
            lines, _ = checked.evaluate(address)
            assert sum(lines) == 1 and lines[address] == 1

    def test_sa0_fault_emits_all_ones(self, checked):
        line = checked.tree.root.output_nets[6]
        _, word = checked.evaluate(6, faults=(NetStuckAt(line, 0),))
        assert word == (1,) * 5

    def test_sa1_fault_emits_and_of_words(self, checked):
        line3 = checked.tree.root.output_nets[3]
        _, word = checked.evaluate(7, faults=(NetStuckAt(line3, 1),))
        w3 = checked.expected_word(3)
        w7 = checked.expected_word(7)
        assert word == tuple(a & b for a, b in zip(w3, w7))

    def test_address_range_validated(self, checked):
        with pytest.raises(ValueError):
            checked.evaluate(16)

    def test_parity_mapping_decoder(self):
        checked = CheckedDecoder(ParityMapping(3))
        for address in range(8):
            word = checked.rom_word(address)
            assert word == ((1, 0) if bin(address).count("1") % 2 == 0
                            else (0, 1))
