import pytest

from repro.experiments.figures import (
    ascii_plot,
    survival_figure,
    tradeoff_figure,
)


class TestAsciiPlot:
    def test_single_series(self):
        text = ascii_plot({"s": [(0, 0), (1, 1), (2, 4)]})
        assert "legend: * s" in text
        assert text.count("\n") >= 10

    def test_multiple_series_markers(self):
        text = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}
        )
        assert "* a" in text and "o b" in text

    def test_log_axis(self):
        text = ascii_plot({"s": [(1, 0), (100, 1)]}, logx=True)
        assert "log10" in text

    def test_constant_series_does_not_crash(self):
        text = ascii_plot({"s": [(0, 5), (1, 5)]})
        assert "top=5" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"s": []})

    def test_dimensions(self):
        text = ascii_plot(
            {"s": [(0, 0), (1, 1)]}, width=30, height=8
        )
        plot_rows = [
            row for row in text.splitlines() if row.startswith("|")
        ]
        assert len(plot_rows) == 8
        assert all(len(row) == 31 for row in plot_rows)


class TestFigures:
    def test_tradeoff_figure_mentions_all_rams(self):
        text = tradeoff_figure(cs=(2, 10, 40))
        for label in ("16x2K", "32x4K", "64x8K"):
            assert label in text

    def test_survival_figure_has_both_series(self):
        text = survival_figure(n_bits=4, cycles=100, seed=1)
        assert "measured" in text and "analytic" in text

    def test_cli_figures_command(self, capsys):
        from repro.cli import main

        # keep it cheap: the command renders full-size figures
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Trade-off curve" in out
