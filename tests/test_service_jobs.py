"""Job records and the persistent JobQueue behind `repro serve`:
round-trippable records, an enforced state machine with immutable
terminal states, atomic persistence that survives a process restart,
and recovery of jobs interrupted mid-run."""

import json
import os

import pytest

from repro.service import (
    JOB_STATES,
    TERMINAL_STATES,
    JobError,
    JobQueue,
    JobRecord,
    JobStateError,
)
from repro.service.jobs import _TRANSITIONS, new_job_id


def make_queue(tmp_path):
    return JobQueue(str(tmp_path / "store"))


class TestJobRecord:
    def test_round_trips_through_dict(self):
        record = JobRecord(
            job_id="abc123",
            suite="tiny",
            spec={"name": "tiny", "blocks": []},
            options={"workers": 2},
            progress={"completed": 1, "total": 3},
            result_keys=["deadbeef"],
        )
        clone = JobRecord.from_dict(record.to_dict())
        assert clone == record
        # and the dict itself is plain JSON
        json.dumps(record.to_dict())

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown job state"):
            JobRecord(job_id="x", suite="s", spec={}, state="paused")

    def test_created_at_stamped(self):
        assert JobRecord(job_id="x", suite="s", spec={}).created_at > 0

    def test_finished_property_matches_terminal_states(self):
        for state in JOB_STATES:
            record = JobRecord(job_id="x", suite="s", spec={}, state=state)
            assert record.finished == (state in TERMINAL_STATES)

    def test_job_ids_are_unique(self):
        ids = {new_job_id() for _ in range(64)}
        assert len(ids) == 64


class TestStateMachine:
    def test_happy_path(self, tmp_path):
        queue = make_queue(tmp_path)
        record = queue.create(suite="tiny", spec={})
        assert record.state == "queued"
        running = queue.transition(record.job_id, "running")
        assert running.started_at is not None
        done = queue.transition(record.job_id, "done", report={"x": 1})
        assert done.finished_at is not None
        assert done.report == {"x": 1}

    def test_every_illegal_transition_raises(self, tmp_path):
        queue = make_queue(tmp_path)
        for state in JOB_STATES:
            record = queue.create(suite="s", spec={}, job_id=f"j-{state}")
            if state != "queued":  # force the starting state
                queue._jobs[record.job_id].state = state
            for target in JOB_STATES:
                if target in _TRANSITIONS[state]:
                    continue
                with pytest.raises(JobStateError):
                    queue.transition(record.job_id, target)

    def test_terminal_records_are_immutable(self, tmp_path):
        queue = make_queue(tmp_path)
        record = queue.create(suite="s", spec={})
        queue.transition(record.job_id, "running")
        queue.transition(record.job_id, "error", error="boom")
        with pytest.raises(JobStateError, match="already error"):
            queue.update(record.job_id, progress={"completed": 1})

    def test_update_rejects_state_and_unknown_fields(self, tmp_path):
        queue = make_queue(tmp_path)
        record = queue.create(suite="s", spec={})
        with pytest.raises(ValueError, match="unknown job field"):
            queue.update(record.job_id, state="done")
        with pytest.raises(ValueError, match="unknown job field"):
            queue.update(record.job_id, nonsense=1)
        with pytest.raises(ValueError, match="unknown job state"):
            queue.transition(record.job_id, "paused")

    def test_unknown_job_raises_joberror(self, tmp_path):
        queue = make_queue(tmp_path)
        with pytest.raises(JobError, match="unknown job"):
            queue.get("nope")

    def test_duplicate_job_id_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.create(suite="s", spec={}, job_id="same")
        with pytest.raises(JobError, match="duplicate"):
            queue.create(suite="s", spec={}, job_id="same")

    def test_get_returns_a_defensive_copy(self, tmp_path):
        queue = make_queue(tmp_path)
        record = queue.create(suite="s", spec={})
        queue.get(record.job_id).progress["completed"] = 99
        assert queue.get(record.job_id).progress == {}


class TestPersistence:
    def test_table_survives_reopen(self, tmp_path):
        root = str(tmp_path / "store")
        queue = JobQueue(root)
        record = queue.create(suite="tiny", spec={"name": "tiny"})
        queue.transition(record.job_id, "running")
        queue.transition(
            record.job_id, "done", result_keys=["k1", "k2"]
        )

        reopened = JobQueue(root)
        clone = reopened.get(record.job_id)
        assert clone.state == "done"
        assert clone.result_keys == ["k1", "k2"]
        assert clone.spec == {"name": "tiny"}

    def test_unparsable_record_files_are_skipped(self, tmp_path):
        root = str(tmp_path / "store")
        queue = JobQueue(root)
        good = queue.create(suite="s", spec={})
        with open(os.path.join(queue.root, "broken.json"), "w") as handle:
            handle.write("{half a rec")
        with open(os.path.join(queue.root, "hollow.json"), "w") as handle:
            handle.write("{}")
        reopened = JobQueue(root)
        assert [r.job_id for r in reopened.list()] == [good.job_id]

    def test_list_sorted_and_filtered(self, tmp_path):
        queue = make_queue(tmp_path)
        first = queue.create(suite="a", spec={}, job_id="a1")
        second = queue.create(suite="b", spec={}, job_id="b2")
        queue.transition(second.job_id, "running")
        assert [r.job_id for r in queue.list()] == ["a1", "b2"]
        assert [r.job_id for r in queue.list(state="queued")] == ["a1"]
        counts = queue.counts()
        assert counts["queued"] == 1 and counts["running"] == 1
        assert first.state == "queued"


class TestRecover:
    def test_running_jobs_are_requeued(self, tmp_path):
        root = str(tmp_path / "store")
        queue = JobQueue(root)
        interrupted = queue.create(suite="s", spec={}, job_id="mid")
        queue.transition(interrupted.job_id, "running")
        finished = queue.create(suite="s", spec={}, job_id="fin")
        queue.transition(finished.job_id, "running")
        queue.transition(finished.job_id, "done")

        # a new process opens the same table: the in-flight job comes
        # back queued (store-backed resume makes re-running idempotent)
        reopened = JobQueue(root)
        assert reopened.recover() == ["mid"]
        record = reopened.get("mid")
        assert record.state == "queued"
        assert record.recovered
        assert record.started_at is None
        assert reopened.get("fin").state == "done"

    def test_recover_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        assert queue.recover() == []
