import math

import pytest

from repro.utils.combinatorics import (
    binomial,
    central_binomial,
    smallest_r_for_cardinality,
)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(0, 20):
            for k in range(0, n + 1):
                assert binomial(n, k) == math.comb(n, k)

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-1, 0) == 0

    def test_paper_code_cardinalities(self):
        # Every code appearing in Tables 1 and 2.
        assert binomial(2, 1) == 2
        assert binomial(3, 2) == 3
        assert binomial(4, 2) == 6
        assert binomial(5, 3) == 10
        assert binomial(7, 4) == 35
        assert binomial(9, 5) == 126
        assert binomial(13, 7) == 1716
        assert binomial(18, 9) == 48620


class TestCentralBinomial:
    def test_small_values(self):
        assert central_binomial(2) == 2
        assert central_binomial(3) == 3
        assert central_binomial(4) == 6
        assert central_binomial(5) == 10

    def test_equals_floor_and_ceil_weight(self):
        for r in range(2, 15):
            assert central_binomial(r) == math.comb(r, r // 2)
            assert central_binomial(r) == math.comb(r, (r + 1) // 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            central_binomial(-1)

    def test_monotone_in_r(self):
        values = [central_binomial(r) for r in range(1, 25)]
        assert values == sorted(values)


class TestSmallestR:
    def test_paper_selections(self):
        # The r the paper picks for each required cardinality.
        assert smallest_r_for_cardinality(2) == 2
        assert smallest_r_for_cardinality(5) == 4
        assert smallest_r_for_cardinality(9) == 5
        assert smallest_r_for_cardinality(33) == 7
        assert smallest_r_for_cardinality(101) == 9
        assert smallest_r_for_cardinality(1001) == 13
        assert smallest_r_for_cardinality(32769) == 18

    def test_result_is_minimal(self):
        for target in (2, 3, 7, 10, 11, 36, 70, 127, 924, 925):
            r = smallest_r_for_cardinality(target)
            assert central_binomial(r) >= target
            assert central_binomial(r - 1) < target

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            smallest_r_for_cardinality(0)
