"""DesignReport structure: fields, serialisation, rendering details."""

from fractions import Fraction

import pytest

from repro.core.selection import select_code, select_zero_latency_code
from repro.design.engine import DesignEngine
from repro.design.report import DesignReport, decoder_check_report
from repro.design.spec import DesignSpec


def make_report(**spec_kwargs) -> DesignReport:
    defaults = dict(words=2048, bits=16, c=10, pndc=1e-9)
    defaults.update(spec_kwargs)
    return DesignEngine().evaluate(DesignSpec(**defaults))


class TestDecoderCheckReport:
    def test_mod_selection_fields(self):
        selection = select_code(10, 1e-9)
        side = decoder_check_report(selection, rom_lines=256)
        assert side.code == "3-out-of-5"
        assert side.a_final == 9
        assert side.rom_lines == 256
        assert side.rom_width == 5
        assert side.escape_per_cycle == Fraction(1, 8)
        assert side.expected_detection_cycles is not None
        assert side.detection_quantile_999 is not None

    def test_zero_latency_selection_has_no_latency_stats(self):
        selection = select_zero_latency_code(3)
        side = decoder_check_report(selection, rom_lines=8)
        assert side.escape_per_cycle == 0
        assert side.expected_detection_cycles is None
        assert side.detection_quantile_999 is None

    def test_dict_round_trip_preserves_exact_fraction(self):
        side = decoder_check_report(select_code(10, 1e-9), rom_lines=256)
        restored = type(side).from_dict(side.to_dict())
        assert restored == side
        assert isinstance(restored.escape_per_cycle, Fraction)


class TestDesignReport:
    def test_json_round_trip_full(self):
        report = make_report(policy="approximate", pndc=1e-15)
        assert DesignReport.from_json(report.to_json()) == report

    def test_to_dict_sections(self):
        data = make_report().to_dict()
        assert set(data) == {"spec", "row", "column", "area", "safety"}
        assert data["spec"]["words"] == 2048
        assert data["row"]["code"] == "3-out-of-5"

    def test_render_sections_present(self):
        text = make_report().render()
        for heading in (
            "self-checking memory design report",
            "row decoder check",
            "column decoder check",
            "area bill",
            "system safety (SII model)",
        ):
            assert heading in text

    def test_render_zero_latency_column_line(self):
        text = make_report().render()  # default: zero-latency column
        assert "detection latency     : 0 cycles (every fault)" in text

    def test_render_shared_column_has_escape_lines(self):
        text = make_report(column_zero_latency=False).render()
        assert text.count("escape per cycle") == 2

    def test_area_consistency(self):
        area = make_report().area
        assert area.total_percent == pytest.approx(
            area.decoder_check_percent
            + area.parity_bit_percent
            + area.parity_checker_percent
        )

    def test_safety_improvement_positive(self):
        safety = make_report().safety
        assert safety.residual_rate_per_hour < safety.baseline_rate_per_hour
        assert safety.improvement_factor > 1
