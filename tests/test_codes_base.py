import pytest

from repro.codes.base import Code, validate_bits
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.parity import ParityCode


class TestValidateBits:
    def test_normalises_to_tuple(self):
        assert validate_bits([1, 0, 1]) == (1, 0, 1)

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            validate_bits((0, 1, 2))
        with pytest.raises(ValueError):
            validate_bits("101")  # strings are not bit vectors


class TestCodeHelpers:
    def test_noncode_words_partition_the_space(self):
        code = MOutOfNCode(2, 4)
        members = set(code.words())
        non_members = set(code.noncode_words())
        assert members & non_members == set()
        assert len(members) + len(non_members) == 16

    def test_assert_contains(self):
        code = MOutOfNCode(2, 4)
        code.assert_contains((1, 1, 0, 0))
        with pytest.raises(ValueError):
            code.assert_contains((1, 1, 1, 0))

    def test_default_cardinality_counts_words(self):
        class TwoWords(Code):
            length = 3

            def is_codeword(self, word):
                return tuple(word) in {(1, 0, 0), (0, 1, 0)}

            def words(self):
                yield (1, 0, 0)
                yield (0, 1, 0)

        assert TwoWords().cardinality() == 2

    def test_minimum_distance_requires_two_words(self):
        class OneWord(Code):
            length = 2

            def is_codeword(self, word):
                return tuple(word) == (1, 0)

            def words(self):
                yield (1, 0)

        with pytest.raises(ValueError):
            OneWord().minimum_distance()

    def test_is_unordered_on_parity_code_is_false(self):
        # parity codes contain 0000 which everything covers
        assert not ParityCode(3).is_unordered()
