"""`repro.analytics.regress` — windowed-baseline regression
detection: the policy table, the median baseline, severity routing,
and the bench-selection diagnostics."""

import pytest

from repro.analytics.model import Regression, TrendPoint, TrendSeries
from repro.analytics.regress import (
    DEFAULT_WINDOW,
    MetricPolicy,
    RegressReport,
    default_policy,
    detect,
    known_benches,
    select_series,
)


def make_series(bench, metric, values, family="fam"):
    points = [
        TrendPoint(
            value=value,
            version=f"1.{index}.0",
            git_sha=f"sha{index}",
            index=index,
        )
        for index, value in enumerate(values)
    ]
    return TrendSeries(
        bench=bench, metric=metric, family=family, points=points
    )


class TestBaseline:
    def test_single_point_has_no_baseline(self):
        assert make_series("b", "speedup", [10.0]).baseline(5) is None

    def test_median_excludes_the_last_point(self):
        series = make_series("b", "speedup", [10.0, 20.0, 99.0])
        assert series.baseline(5) == 15.0

    def test_window_limits_the_trailing_points(self):
        series = make_series(
            "b", "speedup", [1.0, 1.0, 30.0, 40.0, 50.0, 99.0]
        )
        assert series.baseline(3) == 40.0
        assert series.baseline(100) == 30.0

    def test_zero_window_is_no_baseline(self):
        series = make_series("b", "speedup", [1.0, 2.0])
        assert series.baseline(0) is None


class TestDefaultPolicy:
    def test_ratio_metrics_are_hard_higher(self):
        for metric in ("coverage", "speedup", "vector_speedup"):
            policy = default_policy(metric)
            assert policy == MetricPolicy("higher", "hard", 25.0)

    def test_throughput_is_warn_higher(self):
        policy = default_policy("faults_per_sec")
        assert policy == MetricPolicy("higher", "warn", 50.0)

    def test_wall_time_is_warn_lower(self):
        for metric in ("serial_s", "cold_s", "lint_ms"):
            policy = default_policy(metric)
            assert policy == MetricPolicy("lower", "warn", 50.0)

    def test_counters_are_not_gated(self):
        for metric in ("faults", "cells", "rules_run", "workers"):
            assert default_policy(metric) is None


class TestDetect:
    def test_injected_drop_vs_baseline_is_a_hard_regression(self):
        # the acceptance scenario: the observed point lands 30% below
        # the median of the trailing window (120/123/126 -> 123)
        series = make_series(
            "decoder_n6_c512",
            "vector_speedup",
            [120.0, 123.0, 126.0, 123.0 * 0.7],
        )
        report = detect([series])
        assert not report.ok
        assert report.exit_code() == 2
        (finding,) = report.hard
        assert finding.bench == "decoder_n6_c512"
        assert finding.metric == "vector_speedup"
        assert finding.baseline == 123.0
        assert finding.observed == 86.1
        assert finding.change_pct == 30.0
        assert finding.window_used == 3
        assert finding.before == "1.2.0 @sha2"
        assert finding.after == "1.3.0 @sha3"
        text = finding.describe()
        for token in ("dropped 30.0%", "baseline 123", "observed 86.1"):
            assert token in text

    def test_drop_within_tolerance_passes(self):
        series = make_series(
            "d", "speedup", [100.0, 100.0, 100.0 * 0.8]
        )
        report = detect([series])
        assert report.ok and not report.regressions
        assert report.checked == 1

    def test_wall_time_rise_is_warn_only(self):
        series = make_series("d", "packed_s", [0.01, 0.01, 0.02])
        report = detect([series])
        assert report.ok
        assert report.exit_code() == 0
        (finding,) = report.warnings
        assert finding.severity == "warn"
        assert finding.polarity == "lower"
        assert "rose 100.0%" in finding.describe()

    def test_single_entry_series_skips_instead_of_crashing(self):
        report = detect([make_series("d", "speedup", [30.0])])
        assert report.ok and report.checked == 0
        (skip,) = report.skipped
        assert skip == {
            "bench": "d",
            "metric": "speedup",
            "reason": "1 point(s), no baseline",
        }

    def test_ungated_metrics_are_ignored(self):
        report = detect([make_series("d", "faults", [10.0, 99.0])])
        assert report.checked == 0 and not report.regressions

    def test_tolerance_override_tightens_every_band(self):
        series = make_series("d", "speedup", [100.0, 100.0, 90.0])
        assert detect([series]).ok
        report = detect([series], tolerance_pct=5.0)
        assert not report.ok
        assert report.hard[0].tolerance_pct == 5.0

    def test_policies_override_gates_a_custom_metric(self):
        series = make_series("d", "faults", [100.0, 100.0, 10.0])
        report = detect(
            [series],
            policies={"faults": MetricPolicy("higher", "hard", 25.0)},
        )
        assert not report.ok

    def test_non_positive_baseline_is_skipped(self):
        report = detect([make_series("d", "speedup", [0.0, 0.0, 1.0])])
        assert report.checked == 0
        assert "non-positive baseline" in report.skipped[0]["reason"]

    def test_hard_findings_sort_before_warnings(self):
        report = detect(
            [
                make_series("a", "cold_s", [0.01, 0.01, 0.09]),
                make_series("z", "speedup", [100.0, 100.0, 10.0]),
            ]
        )
        severities = [r.severity for r in report.regressions]
        assert severities == ["hard", "warn"]


class TestRegressReport:
    def test_render_and_dict_round_trip(self):
        series = make_series(
            "d", "vector_speedup", [100.0, 100.0, 50.0]
        )
        report = detect([series, make_series("d", "speedup", [1.0])])
        report.files = ["BENCH_x.history.jsonl"]
        report.malformed = 2
        text = report.render(verbose=True)
        assert "HARD d vector_speedup" in text
        assert "skip d speedup: 1 point(s), no baseline" in text
        assert "2 malformed history line(s) ignored" in text
        assert "FAIL — 1 hard regression(s), 0 warning(s)" in text
        data = report.to_dict()
        assert data["ok"] is False
        assert data["hard"] == 1 and data["warnings"] == 0
        assert data["malformed_lines"] == 2
        assert data["files"] == ["BENCH_x.history.jsonl"]
        assert data["window"] == DEFAULT_WINDOW

    def test_clean_render_mentions_warn_count(self):
        report = detect(
            [make_series("d", "cold_s", [0.01, 0.01, 0.09])]
        )
        assert "ok — no hard regression" in report.render()
        assert "(1 warning(s))" in report.render()

    def test_empty_report_is_ok(self):
        report = RegressReport()
        assert report.ok and report.exit_code() == 0


class TestRegressionValidation:
    def test_unknown_severity_and_polarity_raise(self):
        base = dict(
            bench="b",
            metric="m",
            baseline=1.0,
            observed=2.0,
            change_pct=1.0,
            tolerance_pct=25.0,
            window_used=1,
        )
        with pytest.raises(ValueError, match="unknown severity"):
            Regression(severity="soft", polarity="higher", **base)
        with pytest.raises(ValueError, match="unknown polarity"):
            Regression(severity="hard", polarity="sideways", **base)


class TestSelection:
    def series_set(self):
        return [
            make_series("a", "speedup", [1.0, 2.0]),
            make_series("a", "cold_s", [1.0, 2.0]),
            make_series("b", "speedup", [1.0, 2.0]),
        ]

    def test_known_benches_are_sorted_unique(self):
        assert known_benches(self.series_set()) == ["a", "b"]

    def test_only_and_skip_filter_by_bench(self):
        series = self.series_set()
        assert {
            s.bench for s in select_series(series, only=["a"])
        } == {"a"}
        assert {
            s.bench for s in select_series(series, skip=["a"])
        } == {"b"}
        assert select_series(series) == series

    def test_unknown_names_fail_fast_with_the_known_list(self):
        with pytest.raises(ValueError) as err:
            select_series(self.series_set(), only=["nope"])
        assert "unknown bench name(s) ['nope']" in str(err.value)
        assert "known: ['a', 'b']" in str(err.value)
