"""Netlist well-formedness rules and the collapse-soundness audit.

The structural rules cannot fire on circuits built through the public
``Circuit`` API (construction enforces the invariants), so these tests
hand-mutate ``Gate`` attributes the way a buggy deserialiser or an
external netlist importer would, then prove each rule bites.
"""

import pytest

from repro.analysis import (
    analyze,
    collapse_cone_violations,
    fault_cone,
    output_cones,
)
from repro.circuits.equivalence import FaultClasses, collapse_faults
from repro.circuits.faults import NetStuckAt
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def two_rail_xor():
    """A clean two-output circuit: z1 = a^b, z2 = ~(a^b)."""
    circuit = Circuit("clean")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    z1 = circuit.add_gate(GateType.XOR, [a, b])
    z2 = circuit.add_gate(GateType.XNOR, [a, b])
    circuit.mark_output(z1, "z1")
    circuit.mark_output(z2, "z2")
    return circuit


def split_cones():
    """Two disjoint output cones: out0 = BUF(a), out1 = BUF(b)."""
    circuit = Circuit("split")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    x = circuit.add_gate(GateType.BUF, [a])
    y = circuit.add_gate(GateType.BUF, [b])
    circuit.mark_output(x, "x")
    circuit.mark_output(y, "y")
    return circuit, a, b, x, y


def by_rule(report):
    grouped = {}
    for finding in report.findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


CIRCUIT_RULES = {
    "net-undriven",
    "net-multidriver",
    "net-cycle",
    "net-dangling",
    "net-unreachable",
    "net-collapse-unsound",
}


class TestStructuralRules:
    def test_clean_circuit_runs_all_rules_clean(self):
        report = analyze(two_rail_xor())
        assert report.kind == "circuit"
        assert report.clean
        assert report.exit_code() == 0
        assert CIRCUIT_RULES <= set(report.rules_run)

    def test_dangling_gate_is_a_warning_not_an_error(self):
        circuit = two_rail_xor()
        circuit.add_gate(GateType.AND, [0, 1])  # never read, never marked
        report = analyze(circuit)
        grouped = by_rule(report)
        assert set(grouped) == {"net-dangling"}
        assert grouped["net-dangling"][0].severity == "warning"
        # warnings pass by default but fail the strict gate
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_multidriver_after_hand_mutation(self):
        circuit = Circuit("multi")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        g1 = circuit.add_gate(GateType.AND, [a, b])
        circuit.add_gate(GateType.OR, [a, b])
        circuit.mark_output(g1)
        circuit.gates[1].output = g1  # second driver onto g1's net
        grouped = by_rule(analyze(circuit))
        assert "net-multidriver" in grouped
        finding = grouped["net-multidriver"][0]
        assert finding.severity == "error"
        assert "2 sources" in finding.message

    def test_undriven_net_after_input_removal(self):
        circuit = Circuit("undriven")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        out = circuit.add_gate(GateType.AND, [a, b])
        circuit.mark_output(out)
        circuit._input_nets.remove(b)  # deserialiser dropped a port
        grouped = by_rule(analyze(circuit, rules=["net-undriven"]))
        assert "net-undriven" in grouped
        assert f"net {b}" in grouped["net-undriven"][0].location

    def test_cycle_downgrades_cone_rules_to_skips(self):
        circuit = Circuit("cycle")
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        out = circuit.add_gate(GateType.AND, [a, b])
        circuit.mark_output(out)
        circuit.gates[0].inputs = (a, out)  # gate reads its own output
        report = analyze(circuit)
        grouped = by_rule(report)
        assert "net-cycle" in grouped
        assert grouped["net-cycle"][0].severity == "error"
        # cone computation is meaningless on a non-levelized netlist:
        # the cone-based rules must decline, pointing at net-cycle
        skipped = {skip.rule for skip in report.skipped}
        assert {"net-unreachable", "net-collapse-unsound"} <= skipped
        for skip in report.skipped:
            assert "levelized" in skip.reason

    def test_unreachable_cone_is_flagged(self):
        circuit = two_rail_xor()
        # a two-gate cone feeding nothing observable
        dead = circuit.add_gate(GateType.NOT, [0])
        circuit.add_gate(GateType.AND, [dead, 1])
        grouped = by_rule(analyze(circuit))
        assert "net-unreachable" in grouped
        assert "no path" in grouped["net-unreachable"][0].message
        # the sink gate itself dangles
        assert "net-dangling" in grouped


class TestOutputCones:
    def test_cones_are_bitmasks_over_output_positions(self):
        circuit, a, b, x, y = split_cones()
        cones = output_cones(circuit)
        assert cones[x] == 0b01
        assert cones[y] == 0b10
        assert cones[a] == 0b01
        assert cones[b] == 0b10

    def test_fault_cone_for_net_and_pin_keys(self):
        circuit, a, b, x, y = split_cones()
        cones = output_cones(circuit)
        assert fault_cone(circuit, ("net", a, 0), cones) == 0b01
        # a pin fault enters through its gate's output
        assert fault_cone(circuit, ("pin", 1, 0, 1), cones) == 0b10

    def test_output_stem_cone_includes_downstream_readers(self):
        # PR 2 scenario: a stem that is both a primary output and the
        # input of later logic influences both output positions
        circuit = Circuit("stem")
        a = circuit.add_input("a")
        stem = circuit.add_gate(GateType.BUF, [a])
        inv = circuit.add_gate(GateType.NOT, [stem])
        circuit.mark_output(stem, "word")
        circuit.mark_output(inv, "nword")
        cones = output_cones(circuit)
        assert cones[stem] == 0b11
        assert cones[inv] == 0b10


class TestCollapseSoundness:
    def test_real_collapse_has_no_violations(self):
        circuit, *_ = split_cones()
        assert collapse_cone_violations(circuit) == []

    def test_output_stem_guard_keeps_collapse_sound(self):
        # the single-reader stem rule must not merge across the stem
        # when the stem is itself observable (a primary output)
        circuit = Circuit("stem")
        a = circuit.add_input("a")
        stem = circuit.add_gate(GateType.BUF, [a])
        inv = circuit.add_gate(GateType.NOT, [stem])
        circuit.mark_output(stem, "word")
        circuit.mark_output(inv, "nword")
        assert collapse_cone_violations(circuit) == []
        report = analyze(circuit)
        assert report.clean

    def test_corrupted_classes_are_caught(self):
        circuit, a, b, x, y = split_cones()
        sound = collapse_faults(circuit)
        # merge two faults from disjoint cones into one class
        corrupted = FaultClasses(
            [[NetStuckAt(x, 0), NetStuckAt(y, 0)]], sound.total
        )
        violations = collapse_cone_violations(circuit, corrupted)
        assert len(violations) == 1
        cones = violations[0]["cones"]
        assert len(cones) == 2
        assert [x] in [c["outputs"] for c in cones]
        assert [y] in [c["outputs"] for c in cones]

    def test_singleton_classes_are_never_violations(self):
        circuit, a, b, x, y = split_cones()
        singletons = FaultClasses(
            [[NetStuckAt(x, 0)], [NetStuckAt(y, 1)]], 2
        )
        assert collapse_cone_violations(circuit, singletons) == []


class TestCheckerCircuitsDirectly:
    def test_sorting_network_dangles_but_has_no_errors(self):
        # analyzed as a *bare circuit* the structural m-out-of-n
        # sorting network legitimately leaves sorter outputs unread;
        # that is why the design driver skips netlist rules on checker
        # circuits — but none of it is an error
        from repro.checkers.m_out_of_n_checker import MOutOfNChecker

        circuit = MOutOfNChecker(2, 5, structural=True).circuit
        report = analyze(circuit)
        assert report.ok
        assert {f.rule for f in report.findings} <= {"net-dangling"}

    def test_rule_selection_restricts_and_excludes(self):
        circuit = two_rail_xor()
        circuit.add_gate(GateType.AND, [0, 1])  # dangles
        only = analyze(circuit, rules=["net-undriven"])
        assert only.rules_run == ("net-undriven",)
        assert only.clean
        without = analyze(circuit, skip=["net-dangling"])
        assert "net-dangling" not in without.rules_run
        assert without.clean

    def test_unknown_artifact_type_is_rejected(self):
        with pytest.raises(TypeError, match="cannot handle"):
            analyze(42)
