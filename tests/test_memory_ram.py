import pytest

from repro.memory.faults import (
    CellStuckAt,
    CouplingFault,
    DataLineStuckAt,
    MuxLineStuckAt,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM


@pytest.fixture
def ram():
    return BehavioralRAM(MemoryOrganization(64, 8, column_mux=4))


class TestReadWrite:
    def test_round_trip(self, ram):
        ram.write(10, (1, 0, 1, 1, 0, 0, 1, 0))
        assert ram.read_data(10) == (1, 0, 1, 1, 0, 0, 1, 0)

    def test_parity_bit_maintained(self, ram):
        ram.write(3, (1, 0, 0, 0, 0, 0, 0, 0))
        word = ram.read(3)
        assert len(word) == 9
        assert sum(word) % 2 == 0
        assert ram.parity_ok(3)

    def test_initial_contents_are_code_words(self, ram):
        for address in (0, 31, 63):
            assert ram.parity_ok(address)

    def test_without_parity(self):
        ram = BehavioralRAM(
            MemoryOrganization(16, 4, column_mux=2), with_parity=False
        )
        ram.write(1, (1, 1, 0, 0))
        assert ram.read(1) == (1, 1, 0, 0)
        with pytest.raises(RuntimeError):
            ram.parity_ok(1)

    def test_validation(self, ram):
        with pytest.raises(ValueError):
            ram.write(64, (0,) * 8)
        with pytest.raises(ValueError):
            ram.write(0, (0,) * 7)
        with pytest.raises(ValueError):
            ram.read(-1)


class TestFaults:
    def test_cell_stuck_at_detected_by_parity(self, ram):
        ram.write(5, (0,) * 8)
        ram.inject(CellStuckAt(address=5, bit=2, value=1))
        assert ram.read(5)[2] == 1
        assert not ram.parity_ok(5)

    def test_cell_fault_is_address_local(self, ram):
        ram.write(5, (0,) * 8)
        ram.write(6, (0,) * 8)
        ram.inject(CellStuckAt(address=5, bit=2, value=1))
        assert ram.parity_ok(6)

    def test_unexcited_cell_fault_invisible(self, ram):
        ram.write(5, (1, 1, 1, 0, 0, 0, 0, 0))
        ram.inject(CellStuckAt(address=5, bit=0, value=1))
        assert ram.parity_ok(5)  # stored value already 1

    def test_data_line_fault_hits_every_address(self, ram):
        ram.write(1, (0,) * 8)
        ram.write(2, (0,) * 8)
        ram.inject(DataLineStuckAt(bit=4, value=1))
        assert not ram.parity_ok(1)
        assert not ram.parity_ok(2)

    def test_mux_line_fault_hits_one_column_way(self, ram):
        org = ram.organization
        ram.inject(MuxLineStuckAt(column=1, bit=0, value=1))
        for address in range(16):
            ram.write(address, (0,) * 8)
            expected_broken = org.split_address(address)[1] == 1
            assert ram.parity_ok(address) != expected_broken

    def test_coupling_fault_conditional(self, ram):
        ram.write(8, (1,) + (0,) * 7)   # aggressor bit set
        ram.write(9, (0,) * 8)
        ram.inject(
            CouplingFault(
                aggressor_address=8, aggressor_bit=0,
                victim_address=9, victim_bit=3,
            )
        )
        assert ram.read(9)[3] == 1
        assert not ram.parity_ok(9)
        # clearing the aggressor disarms the fault
        ram.write(8, (0,) * 8)
        assert ram.parity_ok(9)

    def test_clear_faults(self, ram):
        ram.write(5, (0,) * 8)
        ram.inject(CellStuckAt(5, 0, 1))
        ram.clear_faults()
        assert ram.parity_ok(5)

    def test_invalid_fault_values(self):
        with pytest.raises(ValueError):
            CellStuckAt(0, 0, 2)
        with pytest.raises(ValueError):
            DataLineStuckAt(0, -1)
        with pytest.raises(ValueError):
            MuxLineStuckAt(0, 0, 3)
