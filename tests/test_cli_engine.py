"""The unified --engine CLI surface: policy choices on every
campaign-driven command, the deprecated --packed/--serial aliases,
alias/flag conflicts, suite-level overrides, and the resolved engine in
--json payloads."""

import json

import pytest

from repro.cli import ENGINE_CHOICES, main
from repro.faultsim.vectorsim import numpy_available

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy (repro[vector]) not installed"
)


class TestEngineChoices:
    def test_choices_cover_the_campaign_policies(self):
        assert set(ENGINE_CHOICES) == {
            "serial", "packed", "vector", "auto",
        }

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["march", "--engine", "warp"])
        assert excinfo.value.code == 2
        assert "--engine" in capsys.readouterr().err


class TestEngineFlag:
    def test_march_packed_json(self, capsys):
        assert main(["march", "--engine", "packed", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "packed"

    def test_march_serial_json(self, capsys):
        assert main(["march", "--engine", "serial", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "serial"

    @needs_numpy
    def test_march_vector_json(self, capsys):
        assert main(["march", "--engine", "vector", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "vector"

    @needs_numpy
    def test_auto_reports_the_resolved_engine(self, capsys):
        # "auto" is a policy; the payload surfaces what actually ran
        assert main(["march", "--engine", "auto", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "vector"

    def test_serial_engine_rejects_workers(self, capsys):
        assert main(
            ["transient", "--engine", "serial", "--workers", "2"]
        ) == 1
        assert "--workers requires the packed or vector engine" in (
            capsys.readouterr().err
        )


class TestDeprecatedAliases:
    def test_serial_alias_still_works(self, capsys):
        assert main(["march", "--serial", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "serial"

    def test_packed_alias_still_works(self, capsys):
        assert main(["march", "--packed", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "packed"

    def test_alias_help_says_deprecated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["march", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "deprecated alias for --engine packed" in out
        assert "deprecated alias for --engine serial" in out

    def test_alias_conflicts_with_engine_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["march", "--engine", "serial", "--packed"])
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err


class TestSuiteEngineOverride:
    def test_suite_run_engine_override_json(self, tmp_path, capsys):
        assert main(
            ["suite", "run", "smoke", "--engine", "serial",
             "--store", str(tmp_path / "store"), "--quiet", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["execution"]["errors"] == 0
        engines = {
            cell["provenance"].get("engine")
            for cell in report["cells"]
            if cell["family"] != "design"  # design cells are analytic
        }
        assert engines == {"serial"}

    @needs_numpy
    def test_suite_run_vector_matches_packed_payload(
        self, tmp_path, capsys
    ):
        # the acceptance contract: an --engine vector suite run is
        # stable-payload identical to the packed run (engine names and
        # wall times aside)
        def run(engine, store):
            assert main(
                ["suite", "run", "smoke", "--engine", engine,
                 "--store", str(store), "--quiet", "--json"]
            ) == 0
            return json.loads(capsys.readouterr().out)

        def stable(report):
            # everything but the engine labels and the engine-keyed
            # store identity: the scientific payload must be identical
            cells = []
            for cell in report["cells"]:
                cell = dict(cell)
                cell.pop("execution")
                cell.pop("store_key")
                cell["summary"] = {
                    k: v
                    for k, v in cell["summary"].items()
                    if k != "engine"
                }
                cell["provenance"] = {
                    k: v
                    for k, v in cell["provenance"].items()
                    if k not in ("engine", "key")
                }
                cells.append(cell)
            return cells

        packed = run("packed", tmp_path / "packed-store")
        vector = run("vector", tmp_path / "vector-store")
        assert stable(packed) == stable(vector)

    def test_suite_run_alias_conflicts_with_engine(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["suite", "run", "smoke", "--engine", "serial",
                 "--packed"]
            )
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err
