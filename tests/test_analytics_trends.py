"""`repro.analytics.trends` — provenance-grouped trend queries over
a result store and over the campaign service's result API."""

import pytest

from repro.analytics.model import TrendGroup
from repro.analytics.trends import service_trends, store_trends
from repro.results import ResultStore
from repro.service import CampaignService, InProcessClient

from test_suite import tiny_suite


def meta(campaign, workload, engine, coverage, created_at, key=""):
    return {
        "campaign": campaign,
        "repro_version": "1.9.0",
        "created_at": created_at,
        "material": {
            "campaign": campaign,
            "target": {"type": "BehavioralRAM", "organization": "8x64"},
            "workload": {"label": workload},
            "policy": {"engine": engine},
        },
        "summary": {
            "faults": 10,
            "detected": int(coverage * 10),
            "coverage": coverage,
            "mean_detection_cycle": 1.5,
            "cycles_simulated": 64,
            "engine": engine,
        },
    }


class FakeStore:
    def __init__(self, metas):
        self._metas = metas

    def keys(self):
        return sorted(self._metas)

    def meta(self, key):
        return self._metas[key]


class TestStoreTrends:
    def test_groups_by_provenance_and_orders_by_created_at(self):
        store = FakeStore(
            {
                "k2": meta("march", "mats", "packed", 0.9, 20.0),
                "k1": meta("march", "mats", "packed", 1.0, 10.0),
                "k3": meta("march", "mats", "vector", 1.0, 30.0),
            }
        )
        groups = store_trends(store)
        assert [group.key["engine"] for group in groups] == [
            "packed",
            "vector",
        ]
        packed = groups[0]
        assert packed.key == {
            "campaign": "march",
            "target": "BehavioralRAM[8x64]",
            "workload": "mats",
            "engine": "packed",
        }
        assert [p["key"] for p in packed.points] == ["k1", "k2"]
        assert packed.metric_series("coverage").values() == [1.0, 0.9]

    def test_coarser_group_by_merges(self):
        store = FakeStore(
            {
                "k1": meta("march", "mats", "packed", 1.0, 10.0),
                "k2": meta("march", "other", "packed", 0.9, 20.0),
            }
        )
        (group,) = store_trends(store, group_by=("campaign",))
        assert group.key == {"campaign": "march"}
        assert len(group) == 2

    def test_unreadable_meta_is_skipped(self):
        store = FakeStore(
            {"k1": meta("m", "w", "e", 1.0, 1.0), "k2": None}
        )
        (group,) = store_trends(store)
        assert [p["key"] for p in group.points] == ["k1"]

    def test_decoder_target_label_uses_the_checked_type(self):
        entry = meta("decoder", "exhaustive", "packed", 1.0, 1.0)
        entry["material"]["target"] = {
            "checked": {"type": "FlatDecoder"},
            "checker": {"type": "Parity"},
        }
        (group,) = store_trends(FakeStore({"k": entry}))
        assert group.key["target"] == "FlatDecoder"

    def test_unlabelable_target_is_none(self):
        entry = meta("x", "w", "e", 1.0, 1.0)
        entry["material"]["target"] = ["not", "a", "dict"]
        (group,) = store_trends(FakeStore({"k": entry}))
        assert group.key["target"] is None

    def test_unknown_group_field_raises(self):
        with pytest.raises(ValueError, match="unknown group field"):
            store_trends(FakeStore({}), group_by=("campaign", "moon"))
        assert store_trends(FakeStore({})) == []

    def test_over_a_real_result_store(self, tmp_path):
        from repro.cli import main

        store = str(tmp_path / "store")
        out = str(tmp_path / "march.json")
        assert main(["march", "--store", store, "--json", "--out", out]) == 0
        groups = store_trends(ResultStore(store))
        assert groups, "march left no stored campaigns"
        for group in groups:
            assert group.key["campaign"] == "march"
            assert group.key["target"] == "BehavioralRAM[8x64]"
            assert group.metric_series("coverage").values()


class TestTrendGroup:
    def test_metric_series_skips_missing_and_bool_values(self):
        group = TrendGroup(
            key={"campaign": "m"},
            points=[
                {"key": "a", "coverage": 1.0, "created_at": 1.0},
                {"key": "b", "coverage": None},
                {"key": "c", "coverage": True},
            ],
        )
        series = group.metric_series("coverage")
        assert series.values() == [1.0]
        assert series.bench == "m"
        assert series.family == "store"

    def test_label_and_dict(self):
        group = TrendGroup(key={"campaign": None, "engine": None})
        assert group.label() == "(unlabelled)"
        assert TrendGroup(
            key={"campaign": "m", "engine": "packed"}
        ).label() == "m / packed"
        data = group.to_dict()
        assert data == {
            "key": {"campaign": None, "engine": None},
            "count": 0,
            "points": [],
        }


class FakeClient:
    """The result-query surface only: jobs() + result(key)."""

    base_url = "http://fake"

    def __init__(self):
        self._results = {
            "c1": dict(
                meta("march", "w", "packed", 1.0, 1.0),
                key="c1",
                kind="campaign",
            ),
            "c2": dict(
                meta("march", "w", "packed", 0.8, 2.0),
                key="c2",
                kind="campaign",
            ),
            "r1": {"key": "r1", "kind": "report"},
        }

    def jobs(self):
        return [
            {"job_id": "j1", "result_keys": ["c1", "r1"]},
            {"job_id": "j2", "result_keys": ["c2", "c1"]},  # dup c1
        ]

    def result(self, key):
        return self._results[key]


class TestServiceTrends:
    def test_groups_campaign_artifacts_skipping_reports(self):
        (group,) = service_trends(FakeClient())
        assert group.key == {"campaign": "march", "engine": "packed"}
        assert [p["key"] for p in group.points] == ["c1", "c2"]
        assert group.metric_series("coverage").values() == [1.0, 0.8]

    def test_store_only_fields_are_rejected(self):
        with pytest.raises(ValueError, match="service source"):
            service_trends(FakeClient(), group_by=("workload",))

    def test_over_the_in_process_service(self, tmp_path):
        with CampaignService(str(tmp_path / "store")) as service:
            client = InProcessClient(service)
            job = client.submit(tiny_suite())
            job = client.wait(job["job_id"], timeout=300)
            assert job["state"] == "done"
            groups = service_trends(client)
        campaigns = {group.key["campaign"] for group in groups}
        assert campaigns == {"transient", "march"}
        for group in groups:
            assert group.metric_series("coverage").values()
