"""Property tests: each packed checker accepts exactly the words its
serial checker accepts — on every input word, not just code words."""

import itertools
import random

import pytest

from repro.checkers.base import Checker
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.two_rail_checker import TwoRailChecker
from repro.circuits.parallel import pack_stimuli


def packed_acceptance(checker, words):
    packed, lanes = pack_stimuli(words)
    acc = checker.accepts_packed(packed, lanes)
    return [bool((acc >> lane) & 1) for lane in range(lanes)]


def serial_acceptance(checker, words):
    return [checker.accepts(word) for word in words]


def all_words(width):
    return list(itertools.product((0, 1), repeat=width))


EXHAUSTIVE_CHECKERS = [
    MOutOfNChecker(3, 5, structural=False),
    MOutOfNChecker(3, 5, structural=True),
    MOutOfNChecker(2, 4, structural=False),
    MOutOfNChecker(2, 4, structural=True),
    MOutOfNChecker(1, 2, structural=False),
    BergerChecker(3),
    BergerChecker(4),
    ParityChecker(2),
    ParityChecker(4),
    ParityChecker(5, even=False),
    TwoRailChecker(1),
    TwoRailChecker(2),
    TwoRailChecker(3),
]


@pytest.mark.parametrize(
    "checker", EXHAUSTIVE_CHECKERS, ids=lambda c: repr(c)
)
def test_packed_equals_serial_exhaustively(checker):
    words = all_words(checker.input_width)
    assert packed_acceptance(checker, words) == serial_acceptance(
        checker, words
    )


@pytest.mark.parametrize(
    "checker",
    [
        MOutOfNChecker(9, 18, structural=False),
        BergerChecker(12),
        ParityChecker(16),
        TwoRailChecker(8),
    ],
    ids=lambda c: repr(c),
)
def test_packed_equals_serial_on_random_wide_words(checker):
    rng = random.Random(42)
    words = [
        tuple(rng.randint(0, 1) for _ in range(checker.input_width))
        for _ in range(512)
    ]
    assert packed_acceptance(checker, words) == serial_acceptance(
        checker, words
    )


class _EveryOtherChecker(Checker):
    """Plugin checker with no packed override — exercises the generic
    unpack-and-defer fallback of the base class."""

    def __init__(self, width):
        self.input_width = width

    def indication(self, word):
        return (1, 0) if sum(word) % 2 == 0 else (1, 1)


def test_base_fallback_matches_serial():
    checker = _EveryOtherChecker(5)
    words = all_words(5)
    assert packed_acceptance(checker, words) == serial_acceptance(
        checker, words
    )


@pytest.mark.parametrize(
    "checker",
    [
        MOutOfNChecker(3, 5, structural=False),
        BergerChecker(3),
        ParityChecker(4),
        TwoRailChecker(2),
        _EveryOtherChecker(4),
    ],
    ids=lambda c: type(c).__name__,
)
def test_packed_width_validated(checker):
    with pytest.raises(ValueError):
        checker.accepts_packed([0] * (checker.input_width + 1), 4)


def test_packed_single_lane_and_full_lane_masks():
    checker = MOutOfNChecker(3, 5, structural=False)
    word = (1, 1, 1, 0, 0)  # weight 3 -> accepted
    packed, lanes = pack_stimuli([word])
    assert checker.accepts_packed(packed, lanes) == 1
    bad = (1, 1, 1, 1, 0)
    packed, lanes = pack_stimuli([word, bad, word])
    assert checker.accepts_packed(packed, lanes) == 0b101
