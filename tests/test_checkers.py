import itertools

import pytest

from repro.checkers.base import indication_valid
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import (
    MOutOfNChecker,
    build_sorting_network,
)
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.two_rail_checker import TwoRailChecker, two_rail_cell
from repro.codes.berger import BergerCode
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.parity import ParityCode
from repro.codes.two_rail import TwoRailCode


class TestIndicationConvention:
    def test_valid_pairs(self):
        assert indication_valid((0, 1))
        assert indication_valid((1, 0))

    def test_invalid_pairs(self):
        assert not indication_valid((0, 0))
        assert not indication_valid((1, 1))

    def test_wrong_width(self):
        with pytest.raises(ValueError):
            indication_valid((1, 0, 1))


class TestParityChecker:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 8, 17])
    def test_accepts_exactly_even_words(self, width):
        checker = ParityChecker(width)
        code = ParityCode(width - 1)
        for word in itertools.product((0, 1), repeat=width):
            assert checker.accepts(word) == code.is_codeword(word)

    def test_odd_variant(self):
        checker = ParityChecker(4, even=False)
        assert checker.accepts((1, 0, 0, 0))
        assert not checker.accepts((1, 1, 0, 0))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ParityChecker(1)
        with pytest.raises(ValueError):
            ParityChecker(4).indication((1, 0))


class TestTwoRailChecker:
    @pytest.mark.parametrize("pairs", [1, 2, 3, 4])
    def test_accepts_exactly_two_rail_words(self, pairs):
        checker = TwoRailChecker(pairs)
        code = TwoRailCode(pairs)
        for word in itertools.product((0, 1), repeat=2 * pairs):
            assert checker.accepts(word) == code.is_codeword(word)

    def test_cell_truth_table(self):
        from repro.circuits.netlist import Circuit

        c = Circuit()
        nets = c.add_inputs(["a1", "b1", "a2", "b2"])
        f, g = two_rail_cell(c, (nets[0], nets[1]), (nets[2], nets[3]))
        c.mark_output(f)
        c.mark_output(g)
        # valid inputs -> complementary outputs encoding XOR/XNOR
        assert c.evaluate((0, 1, 0, 1)) == (1, 0)
        assert c.evaluate((0, 1, 1, 0)) == (0, 1)
        assert c.evaluate((1, 0, 1, 0)) == (1, 0)
        # non-code input -> non-complementary output for some pattern
        assert c.evaluate((1, 1, 1, 0)) == (1, 1)

    def test_pairs_validation(self):
        with pytest.raises(ValueError):
            TwoRailChecker(0)


class TestMOutOfNChecker:
    @pytest.mark.parametrize("m,n", [(1, 2), (2, 3), (2, 4), (3, 5)])
    def test_structural_accepts_exactly_codewords(self, m, n):
        checker = MOutOfNChecker(m, n, structural=True)
        code = MOutOfNCode(m, n)
        for word in itertools.product((0, 1), repeat=n):
            assert checker.accepts(word) == code.is_codeword(word), word

    @pytest.mark.parametrize("m,n", [(1, 2), (3, 5), (4, 7)])
    def test_behavioural_matches_structural(self, m, n):
        structural = MOutOfNChecker(m, n, structural=True)
        behavioural = MOutOfNChecker(m, n, structural=False)
        for word in itertools.product((0, 1), repeat=n):
            assert structural.accepts(word) == behavioural.accepts(word)

    def test_indication_encodes_direction(self):
        checker = MOutOfNChecker(2, 4, structural=False)
        assert checker.indication((0, 0, 0, 0)) == (0, 0)  # under weight
        assert checker.indication((1, 1, 1, 1)) == (1, 1)  # over weight
        assert indication_valid(checker.indication((1, 1, 0, 0)))

    def test_all_ones_rejected(self):
        # the stuck-at-0 signature must always be flagged
        for m, n in [(1, 2), (2, 3), (3, 5), (4, 7)]:
            assert not MOutOfNChecker(m, n, structural=False).accepts(
                (1,) * n
            )

    def test_gate_count_positive_and_quadratic_bound(self):
        count = MOutOfNChecker(3, 5).gate_count()
        assert 0 < count <= 2 * 5 * 5

    def test_sorting_network_sorts(self):
        from repro.circuits.netlist import Circuit

        for width in (2, 3, 5, 6):
            c = Circuit()
            nets = c.add_inputs([f"x{i}" for i in range(width)])
            sorted_nets = build_sorting_network(c, nets)
            for net in sorted_nets:
                c.mark_output(net)
            for word in itertools.product((0, 1), repeat=width):
                out = c.evaluate(word)
                assert list(out) == sorted(word, reverse=True)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MOutOfNChecker(0, 4)
        with pytest.raises(ValueError):
            MOutOfNChecker(4, 4)
        with pytest.raises(ValueError):
            MOutOfNChecker(2, 4).indication((1, 0, 1))


class TestBergerChecker:
    def test_accepts_exactly_codewords(self):
        checker = BergerChecker(3)
        code = BergerCode(3)
        for word in itertools.product((0, 1), repeat=code.length):
            assert checker.accepts(word) == code.is_codeword(word)

    def test_gate_count_estimate_positive(self):
        assert BergerChecker(4).gate_count_estimate() > 0

    def test_width_validation(self):
        with pytest.raises(ValueError):
            BergerChecker(3).indication((1, 0))
