"""TSC property proofs as lint rules: every registry code/checker pair
is proven code-disjoint and self-testing, and a deliberately broken
checker (one gate inverted) is refuted with a concrete code-word
counterexample — in the rendered text and in the JSON artifact alike.
"""

import json

import pytest

from repro.analysis import RULES, AnalysisError, analyze, output_cones, rule
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.two_rail_checker import TwoRailChecker
from repro.circuits.gates import GateType
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.parity import ParityCode
from repro.codes.two_rail import TwoRailCode
from repro.core.mapping import TruncatedBergerMapping
from repro.design.engine import DesignEngine
from repro.design.registry import checker_for, mapping_for_code
from repro.design.spec import DesignSpec

SMALL = DesignSpec(words=64, bits=8, column_mux=4)


def registry_checker_pairs():
    """Every (checker, code) composition reachable through the design
    registries, the way DesignEngine builds them."""
    pairs = []
    for code in (MOutOfNCode(1, 2), MOutOfNCode(2, 5), MOutOfNCode(3, 6)):
        mapping = mapping_for_code(code, 4)
        checker = checker_for(mapping, structural=False)
        pairs.append((checker, getattr(mapping, "code", None)))
    berger = TruncatedBergerMapping(4, 1)
    pairs.append((checker_for(berger, False), None))
    return pairs


class TestTSCProofs:
    @pytest.mark.parametrize(
        "checker,code",
        registry_checker_pairs(),
        ids=lambda obj: type(obj).__name__ if obj is not None else "derived",
    )
    def test_every_registry_pair_proves_tsc(self, checker, code):
        report = analyze(checker, code=code)
        assert report.errors == 0, report.render()
        assert {"tsc-code-disjoint", "tsc-self-testing"} <= set(
            report.rules_run
        )

    @pytest.mark.parametrize(
        "checker,code",
        [
            (ParityChecker(17), ParityCode(16)),
            (ParityChecker(9, even=False), ParityCode(8, even=False)),
            (TwoRailChecker(4), TwoRailCode(4)),
            (MOutOfNChecker(2, 5, structural=True), MOutOfNCode(2, 5)),
        ],
        ids=["parity16", "odd-parity8", "two-rail4", "2-of-5-structural"],
    )
    def test_shipped_checkers_prove_clean(self, checker, code):
        report = analyze(checker, code=code)
        assert report.errors == 0, report.render()

    def test_affine_proof_scales_past_the_exhaustive_cutoff(self):
        # 2^65 vectors are unenumerable; the GF(2) symbolic path proves
        # both properties anyway, with no code-disjoint skip
        report = analyze(ParityChecker(65), code=ParityCode(64))
        assert report.errors == 0, report.render()
        assert all(s.rule != "tsc-code-disjoint" for s in report.skipped)
        assert report.wall_time_s < 2.0

    def test_structurally_silent_faults_become_one_skip(self):
        # internal sorting-network nets constant over the code space
        # carry untestable stuck-ats: excluded, never silently passed
        report = analyze(MOutOfNChecker(2, 5, structural=True))
        assert report.errors == 0
        silent = [
            s
            for s in report.skipped
            if s.rule == "tsc-self-testing"
            and "structurally silent" in s.reason
        ]
        assert len(silent) == 1

    def test_behavioural_checker_without_circuit_skips_self_testing(self):
        report = analyze(BergerChecker(8))
        assert report.errors == 0
        assert any(
            s.rule == "tsc-self-testing" and "behavioural" in s.reason
            for s in report.skipped
        )


class TestMutatedCheckerRefutation:
    def broken_sorting_network(self):
        """The acceptance fixture: one observable AND inverted to OR."""
        checker = MOutOfNChecker(2, 5, structural=True)
        cones = output_cones(checker.circuit)
        gate = [
            g
            for g in checker.circuit.gates
            if g.gate_type is GateType.AND and cones[g.output]
        ][-1]
        gate.gate_type = GateType.OR
        return checker

    def test_brute_force_refutation_with_code_word_witness(self):
        report = analyze(self.broken_sorting_network())
        errors = [f for f in report.findings if f.severity == "error"]
        assert errors and all(
            f.rule == "tsc-code-disjoint" for f in errors
        )
        witness = errors[0].counterexample
        assert witness is not None
        assert len(witness["word"]) == 5
        assert witness["is_codeword"] is False  # accepted a non-code word
        # capped reporting is declared, never silent
        assert any("stopped after" in s.reason for s in report.skipped)

    def test_counterexample_survives_text_and_json(self):
        report = analyze(self.broken_sorting_network())
        text = report.render()
        assert "counterexample:" in text
        assert "accepts a non-code word" in text
        data = json.loads(report.to_json())
        assert data["counts"]["error"] >= 1
        refutations = [
            f
            for f in data["findings"]
            if f["rule"] == "tsc-code-disjoint" and "counterexample" in f
        ]
        assert refutations
        assert refutations[0]["counterexample"]["word"] is not None

    def test_symbolic_refutation_of_a_flipped_xor(self):
        checker = ParityChecker(17)
        checker.circuit.gates[0].gate_type = GateType.XNOR
        report = analyze(checker)
        errors = [f for f in report.findings if f.severity == "error"]
        assert len(errors) == 1
        assert "symbolic GF(2) refutation" in errors[0].message
        witness = errors[0].counterexample
        assert len(witness["word"]) == 17
        # the witness really is misclassified: an accepted code word
        # whose indication claims otherwise, or vice versa
        code = ParityCode(16)
        valid = witness["indication"][0] != witness["indication"][1]
        assert valid != code.is_codeword(witness["word"])


class TestDecoderRules:
    def test_built_decoder_is_consistent(self):
        memory = DesignEngine().build(SMALL)
        report = analyze(memory.row)
        assert report.kind == "decoder"
        assert report.errors == 0, report.render()

    def test_corrupted_rom_row_yields_an_addressed_counterexample(self):
        memory = DesignEngine().build(SMALL)
        decoder = memory.row
        rows = list(decoder.matrix.rows)
        rows[3] = tuple(1 - bit for bit in rows[3])
        decoder.matrix.rows = tuple(rows)
        report = analyze(decoder)
        errors = [f for f in report.findings if f.severity == "error"]
        assert any(f.rule == "decoder-consistency" for f in errors)
        witness = errors[0].counterexample
        assert witness["address"] == 3
        assert witness["programmed"] != witness["expected"]

    def test_aliasing_mapping_skips_fault_secure_by_design(self):
        memory = DesignEngine().build(SMALL)
        report = analyze(memory.row)
        skips = [
            s for s in report.skipped if s.rule == "tsc-fault-secure"
        ]
        assert len(skips) == 1
        assert "design point" in skips[0].reason

    def test_injective_mapping_proves_fault_secure(self):
        memory = DesignEngine().build(SMALL)
        report = analyze(memory.column)
        assert report.errors == 0, report.render()
        assert "tsc-fault-secure" in report.rules_run
        assert all(
            s.rule != "tsc-fault-secure" for s in report.skipped
        )


class TestDesignRules:
    def test_built_memory_lints_clean_across_all_families(self):
        report = analyze(DesignEngine().build(SMALL))
        assert report.kind == "design"
        assert report.errors == 0, report.render()
        assert {
            "design-checker-width",
            "design-placement",
            "design-coverage",
            "net-dangling",
            "decoder-consistency",
            "tsc-code-disjoint",
        } <= set(report.rules_run)

    def test_spec_target_is_built_then_analyzed(self):
        report = analyze(SMALL)
        assert report.kind == "design"
        assert report.target == SMALL.label()
        assert report.errors == 0, report.render()

    def test_checker_width_mismatch_is_an_error(self):
        memory = DesignEngine().build(SMALL)
        memory.parity_checker = ParityChecker(5)
        report = analyze(memory, rules=["design-checker-width"])
        assert report.errors == 1
        assert "parity checker" in report.findings[0].location


class TestEngineLintHook:
    def test_lint_true_passes_a_sound_build_through(self):
        memory = DesignEngine().build(SMALL, lint=True)
        assert memory.organization.words == 64

    def test_lint_true_raises_on_an_error_finding(self):
        @rule(
            "test-injected-failure",
            "design",
            severity="error",
            summary="always fails (test fixture)",
        )
        def _always_fail(memory, ctx, lint_rule):
            yield lint_rule.finding(ctx.loc(), "injected failure")

        try:
            with pytest.raises(AnalysisError) as excinfo:
                DesignEngine().build(SMALL, lint=True)
            assert "test-injected-failure" in str(excinfo.value)
            assert excinfo.value.report.errors >= 1
        finally:
            RULES.unregister("test-injected-failure")
