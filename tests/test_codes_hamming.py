import pytest

from repro.codes.hamming import HammingCode, hamming_check_bits
from repro.utils.bitops import all_bit_vectors


class TestCheckBits:
    def test_known_values(self):
        assert hamming_check_bits(1) == 2
        assert hamming_check_bits(4) == 3
        assert hamming_check_bits(11) == 4
        assert hamming_check_bits(16) == 5
        assert hamming_check_bits(64) == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            hamming_check_bits(0)


class TestSEC:
    def test_every_encoding_is_codeword(self):
        code = HammingCode(4)
        for data in all_bit_vectors(4):
            assert code.is_codeword(code.encode(data))

    def test_corrects_every_single_bit_error(self):
        code = HammingCode(4)
        for data in all_bit_vectors(4):
            word = code.encode(data)
            for position in range(code.length):
                corrupted = list(word)
                corrupted[position] ^= 1
                result = code.decode(corrupted)
                assert result.corrected
                assert result.data == data

    def test_clean_decode(self):
        code = HammingCode(8)
        word = code.encode((1, 0, 1, 1, 0, 0, 1, 0))
        result = code.decode(word)
        assert not result.corrected
        assert result.data == (1, 0, 1, 1, 0, 0, 1, 0)

    def test_minimum_distance_three(self):
        assert HammingCode(4).minimum_distance() == 3


class TestSECDED:
    def test_detects_every_double_error(self):
        code = HammingCode(4, extended=True)
        data = (1, 0, 1, 0)
        word = code.encode(data)
        for i in range(code.length):
            for j in range(i + 1, code.length):
                corrupted = list(word)
                corrupted[i] ^= 1
                corrupted[j] ^= 1
                result = code.decode(corrupted)
                assert result.detected_uncorrectable, (i, j)

    def test_still_corrects_single_errors(self):
        code = HammingCode(4, extended=True)
        for data in all_bit_vectors(4):
            word = code.encode(data)
            for position in range(code.length):
                corrupted = list(word)
                corrupted[position] ^= 1
                result = code.decode(corrupted)
                assert result.corrected and result.data == data

    def test_minimum_distance_four(self):
        assert HammingCode(4, extended=True).minimum_distance() == 4

    def test_check_overhead_vs_parity(self):
        # The baseline comparison: SEC-DED needs ~log2(m)+2 check bits
        # where the paper's scheme needs a single parity bit.
        assert HammingCode(16, extended=True).check_bits == 6
        assert HammingCode(64, extended=True).check_bits == 8


class TestValidation:
    def test_decode_wrong_length(self):
        with pytest.raises(ValueError):
            HammingCode(4).decode((0, 0, 0))

    def test_encode_wrong_length(self):
        with pytest.raises(ValueError):
            HammingCode(4).encode((0, 0, 0))

    def test_cardinality(self):
        assert HammingCode(4).cardinality() == 16
