import pytest

from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.unordered import is_unordered_code
from repro.core.mapping import (
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
    mapping_for_code,
)
from repro.utils.bitops import parity_of


class TestModAMapping:
    def test_default_a_odd_rule(self):
        # C(5,3)=10 even -> a=9; C(3,2)=3 odd -> a=3.
        assert ModAMapping(MOutOfNCode(3, 5), 4).a == 9
        assert ModAMapping(MOutOfNCode(2, 3), 4).a == 3

    def test_even_a_rejected_by_default(self):
        with pytest.raises(ValueError):
            ModAMapping(MOutOfNCode(3, 5), 4, a=8)

    def test_even_a_allowed_for_ablation(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4, a=8, allow_even_a=True)
        assert mapping.a == 8

    def test_a_range_validation(self):
        with pytest.raises(ValueError):
            ModAMapping(MOutOfNCode(3, 5), 4, a=11)
        with pytest.raises(ValueError):
            ModAMapping(MOutOfNCode(3, 5), 4, a=0)

    def test_index_is_mod_a(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 5, complete=False)
        for address in range(32):
            assert mapping.index(address) == address % 9

    def test_completion_remap(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4)  # a=9, one unused word
        assert mapping.index(9) == 9          # remapped to the unused word
        assert mapping.index(0) == 0
        assert mapping.index(10) == 1
        assert mapping.num_words_used == 10

    def test_remap_skipped_when_address_space_too_small(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 3)  # only 8 addresses < 9
        assert mapping.num_words_used == 9

    def test_all_codewords_emitted_with_completion(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4)
        emitted = {mapping.codeword(a) for a in range(16)}
        assert emitted == set(MOutOfNCode(3, 5).words())

    def test_codewords_are_code_members(self):
        mapping = ModAMapping(MOutOfNCode(2, 4), 4)
        for address in range(16):
            assert MOutOfNCode(2, 4).is_codeword(mapping.codeword(address))

    def test_table_covers_all_addresses(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4)
        assert len(mapping.table()) == 16

    def test_address_validation(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4)
        with pytest.raises(ValueError):
            mapping.index(16)


class TestParityMapping:
    def test_index_is_parity(self):
        mapping = ParityMapping(5)
        for address in range(32):
            assert mapping.index(address) == parity_of(address)

    def test_codewords_are_one_out_of_two(self):
        mapping = ParityMapping(4)
        words = {mapping.codeword(a) for a in range(16)}
        assert words == {(1, 0), (0, 1)}

    def test_both_rails_used(self):
        # the checker is exercised with both code words (self-testing)
        mapping = ParityMapping(3)
        indices = {mapping.index(a) for a in range(8)}
        assert indices == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            ParityMapping(0)


class TestIdentityMapping:
    def test_distinct_word_per_address(self):
        code = MOutOfNCode(4, 8)  # 70 >= 16
        mapping = IdentityMapping(code, 4)
        words = [mapping.codeword(a) for a in range(16)]
        assert len(set(words)) == 16
        assert is_unordered_code(words)

    def test_insufficient_code_rejected(self):
        with pytest.raises(ValueError):
            IdentityMapping(MOutOfNCode(3, 5), 4)  # 10 < 16


class TestTruncatedBergerMapping:
    def test_high_bits_ignored(self):
        mapping = TruncatedBergerMapping(6, k=2)
        for address in range(64):
            assert mapping.index(address) == mapping.index(address & 0xF)

    def test_codeword_is_berger_encoding(self):
        mapping = TruncatedBergerMapping(5, k=2)
        word = mapping.codeword(0b10101)
        assert mapping.berger.is_codeword(word)

    def test_rom_width(self):
        mapping = TruncatedBergerMapping(6, k=2)  # 4 info + 3 check
        assert mapping.rom_width == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            TruncatedBergerMapping(4, k=0)
        with pytest.raises(ValueError):
            TruncatedBergerMapping(4, k=4)


class TestMappingForCode:
    def test_one_out_of_two_gets_parity(self):
        assert isinstance(
            mapping_for_code(MOutOfNCode(1, 2), 4), ParityMapping
        )

    def test_others_get_mod_a(self):
        mapping = mapping_for_code(MOutOfNCode(3, 5), 4)
        assert isinstance(mapping, ModAMapping)
        assert mapping.a == 9
