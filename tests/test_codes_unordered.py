import pytest

from repro.codes.unordered import (
    and_of_distinct_words_is_noncode,
    bitwise_and,
    covers,
    is_unordered_code,
    violating_pairs,
)


class TestCovers:
    def test_basic(self):
        assert covers((1, 1, 0), (1, 0, 0))
        assert covers((1, 1, 0), (1, 1, 0))  # reflexive
        assert not covers((1, 0, 0), (1, 1, 0))
        assert not covers((1, 0, 0), (0, 1, 0))

    def test_all_ones_covers_everything(self):
        for v in [(0, 0, 0), (1, 0, 1), (1, 1, 1)]:
            assert covers((1, 1, 1), v)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            covers((1, 0), (1, 0, 0))


class TestBitwiseAnd:
    def test_and(self):
        assert bitwise_and((1, 1, 0), (1, 0, 1)) == (1, 0, 0)

    def test_and_covered_by_both(self):
        u, v = (1, 1, 0, 1), (0, 1, 1, 1)
        w = bitwise_and(u, v)
        assert covers(u, w) and covers(v, w)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bitwise_and((1,), (1, 0))


class TestUnorderedPredicate:
    def test_unordered_set(self):
        assert is_unordered_code([(1, 1, 0), (0, 1, 1), (1, 0, 1)])

    def test_ordered_set(self):
        assert not is_unordered_code([(1, 1, 0), (1, 0, 0)])

    def test_single_word_is_unordered(self):
        assert is_unordered_code([(1, 0, 1)])

    def test_violating_pairs_reports_both_directions(self):
        pairs = violating_pairs([(1, 1, 0), (1, 0, 0), (0, 0, 0)])
        # (110 covers 100), (110 covers 000), (100 covers 000)
        assert len(pairs) == 3
        assert ((1, 1, 0), (1, 0, 0)) in pairs


class TestAndClosure:
    def test_unordered_implies_and_is_noncode(self):
        words = [(1, 1, 0, 0), (0, 1, 1, 0), (0, 0, 1, 1), (1, 0, 0, 1)]
        assert is_unordered_code(words)
        assert and_of_distinct_words_is_noncode(words)

    def test_systematic_code_fails_and_closure(self):
        # Ordered (systematic identity-ish) code: AND of two words can be
        # another word -> silent stuck-at-1 escapes (ablation X5).
        words = [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert not and_of_distinct_words_is_noncode(words)

    def test_the_paper_lemma_for_every_small_constant_weight_code(self):
        from repro.codes.m_out_of_n import MOutOfNCode

        for n in range(2, 8):
            for m in range(1, n):
                assert and_of_distinct_words_is_noncode(
                    MOutOfNCode(m, n).words()
                ), f"{m}-out-of-{n}"
