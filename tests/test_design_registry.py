"""Registry layer: default lookups match the old dispatch; plugins work.

The acceptance test of the API redesign lives here: a brand-new code,
registered purely through :mod:`repro.design.registry`, builds a working
checked memory without any edit to ``core/scheme.py``.
"""

import pytest

from repro.checkers.base import Checker
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.circuits.faults import NetStuckAt
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import (
    AddressMapping,
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
    mapping_for_code,
)
from repro.core.scheme import SelfCheckingMemory
from repro.decoder.flat import FlatDecoder
from repro.decoder.tree import DecoderTree
from repro.design import registry
from repro.memory.organization import MemoryOrganization


class TestRegistryObject:
    def test_duplicate_registration_rejected(self):
        r = registry.Registry("thing")
        r.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            r.register("x", lambda: 2)

    def test_unknown_name_lists_known(self):
        r = registry.Registry("thing")
        r.register("alpha", lambda: 1)
        with pytest.raises(KeyError, match="alpha"):
            r.get("beta")

    def test_decorator_form(self):
        r = registry.Registry("thing")

        @r.register("f")
        def factory():
            return 7

        assert r.get("f")() == 7
        assert "f" in r
        r.unregister("f")
        assert "f" not in r


class TestDefaultLookups:
    """The registry reproduces the deleted isinstance/if-elif dispatch."""

    def test_mapping_for_m_out_of_n_is_mod(self):
        mapping = mapping_for_code(MOutOfNCode(3, 5), 5)
        assert isinstance(mapping, ModAMapping)
        assert mapping.a == 9

    def test_mapping_for_1_out_of_2_is_parity(self):
        assert isinstance(
            mapping_for_code(MOutOfNCode(1, 2), 4), ParityMapping
        )

    def test_checker_for_m_out_of_n_mapping(self):
        mapping = mapping_for_code(MOutOfNCode(3, 5), 5)
        checker = registry.checker_for(mapping)
        assert isinstance(checker, MOutOfNChecker)
        assert checker.accepts(mapping.codeword(11))

    def test_checker_for_truncated_berger(self):
        mapping = TruncatedBergerMapping(6, 2)
        checker = registry.checker_for(mapping)
        assert isinstance(checker, BergerChecker)

    def test_checker_for_unknown_mapping_raises(self):
        class Mystery:
            n_bits = 3

        with pytest.raises(TypeError, match="no checker registered"):
            registry.checker_for(Mystery())

    def test_decoder_styles(self):
        assert isinstance(registry.decoder_for("tree", 4, "t"), DecoderTree)
        assert isinstance(registry.decoder_for("flat", 4, "f"), FlatDecoder)

    def test_resolve_code(self):
        code = registry.resolve_code("3-out-of-5")
        assert (code.m, code.n) == (3, 5)
        with pytest.raises(ValueError, match="unrecognised code spec"):
            registry.resolve_code("gray-7")


# -- the plugin acceptance test ---------------------------------------------
#
# A "pair code": k information bits followed by their complements.  Every
# word has weight exactly k, so the code is unordered and the NOR-matrix
# detection argument holds.  None of this touches core/scheme.py.


class PairCode:
    """k-bit value + bitwise complement: 2^k words of a k-out-of-2k code."""

    mapping_kind = "pair-identity"  # routes mapping_for_code by attribute

    def __init__(self, k: int):
        self.k = k
        self.n = 2 * k
        self.name = f"pair-{k}"

    def cardinality(self) -> int:
        return 1 << self.k

    def word_at(self, index: int):
        bits = tuple((index >> (self.k - 1 - i)) & 1 for i in range(self.k))
        return bits + tuple(1 - b for b in bits)


class PairMapping(AddressMapping):
    """Zero-latency identity mapping onto the pair code."""

    def __init__(self, code: PairCode, n_bits: int):
        if code.k != n_bits:
            raise ValueError("pair code must match the address width")
        self.code = code
        self.n_bits = n_bits
        self.rom_width = code.n
        self.num_words_used = 1 << n_bits

    def index(self, address: int) -> int:
        self._check_address(address)
        return address

    def codeword(self, address: int):
        return self.code.word_at(self.index(address))


class PairChecker(Checker):
    def __init__(self, k: int):
        self.k = k
        self.input_width = 2 * k

    def indication(self, word):
        halves_complementary = all(
            word[i] != word[self.k + i] for i in range(self.k)
        )
        return (1, 0) if halves_complementary else (1, 1)


@pytest.fixture
def pair_code_registered():
    registry.MAPPINGS.register(
        "pair-identity", lambda code, n_bits, **_: PairMapping(code, n_bits)
    )
    registry.CHECKERS.register(
        "PairCode", lambda mapping, structural: PairChecker(mapping.code.k)
    )
    try:
        yield
    finally:
        registry.MAPPINGS.unregister("pair-identity")
        registry.CHECKERS.unregister("PairCode")


class TestPluginCode:
    def test_new_code_builds_working_memory(self, pair_code_registered):
        org = MemoryOrganization(words=64, bits=8, column_mux=8)
        memory = SelfCheckingMemory(
            org,
            mapping_for_code(PairCode(org.p), org.p),
            mapping_for_code(PairCode(org.s), org.s),
        )
        pattern = (1, 0, 1, 1, 0, 0, 1, 0)
        memory.write(13, pattern)
        result = memory.read(13)
        assert result.data == pattern
        assert not result.error_detected

    def test_new_code_detects_decoder_fault_immediately(
        self, pair_code_registered
    ):
        org = MemoryOrganization(words=64, bits=8, column_mux=8)
        memory = SelfCheckingMemory(
            org,
            mapping_for_code(PairCode(org.p), org.p),
            mapping_for_code(PairCode(org.s), org.s),
        )
        # merge word line 2 into every access: distinct pair words AND to
        # a non-code word, so the identity mapping flags it on cycle one
        line = memory.row.tree.root.output_nets[2]
        memory.inject_row_fault(NetStuckAt(line, 1))
        result = memory.read(org.join_address(5, 0))
        assert not result.row_ok

    def test_registry_command_is_extensible(self, pair_code_registered):
        assert "pair-identity" in registry.MAPPINGS.names()
