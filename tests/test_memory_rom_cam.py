import pytest

from repro.memory.cam import BehavioralCAM
from repro.memory.faults import CellStuckAt
from repro.memory.organization import MemoryOrganization
from repro.memory.rom_mem import BehavioralROM


def rom_contents(org):
    return [
        tuple((word >> bit) & 1 for bit in range(org.bits))
        for word in range(org.words)
    ]


class TestROM:
    def test_reads_programmed_contents(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        rom = BehavioralROM(org, rom_contents(org))
        for address in range(16):
            data = rom.read(address)[:4]
            assert data == tuple((address >> b) & 1 for b in range(4))

    def test_parity_column_valid(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        rom = BehavioralROM(org, rom_contents(org))
        assert all(rom.parity_ok(a) for a in range(16))

    def test_cell_fault_flagged(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        rom = BehavioralROM(org, rom_contents(org))
        rom.inject(CellStuckAt(address=0, bit=1, value=1))
        assert not rom.parity_ok(0)
        rom.clear_faults()
        assert rom.parity_ok(0)

    def test_contents_validation(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        with pytest.raises(ValueError):
            BehavioralROM(org, rom_contents(org)[:-1])
        bad = rom_contents(org)
        bad[3] = (1, 0)
        with pytest.raises(ValueError):
            BehavioralROM(org, bad)

    def test_address_validation(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        rom = BehavioralROM(org, rom_contents(org))
        with pytest.raises(ValueError):
            rom.read(16)

    def test_no_parity_mode(self):
        org = MemoryOrganization(16, 4, column_mux=2)
        rom = BehavioralROM(org, rom_contents(org), with_parity=False)
        assert rom.word_width == 4
        with pytest.raises(RuntimeError):
            rom.parity_ok(0)


class TestCAM:
    def test_write_lookup(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        tag = (1, 0, 1, 1, 0, 0)
        cam.write(3, tag)
        assert cam.lookup(tag) == 3
        assert cam.match_lines(tag) == (0, 0, 0, 1, 0, 0, 0, 0)

    def test_miss_returns_none(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        assert cam.lookup((1,) * 6) is None

    def test_invalid_entries_not_matched(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        tag = (0,) * 6
        cam.write(2, tag)
        cam.invalidate(2)
        assert cam.lookup(tag) is None

    def test_priority_on_duplicate_tags(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        tag = (1, 1, 0, 0, 1, 1)
        cam.write(6, tag)
        cam.write(2, tag)
        assert cam.lookup(tag) == 2

    def test_read_path_parity(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        cam.write(1, (1, 0, 0, 1, 0, 1))
        assert cam.parity_ok(1)

    def test_cell_fault_false_miss_and_parity_flag(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        tag = (1, 0, 1, 0, 1, 0)
        cam.write(4, tag)
        cam.inject(CellStuckAt(address=4, bit=0, value=0))
        assert cam.lookup(tag) is None          # false miss on match port
        assert not cam.parity_ok(4)             # read path catches it

    def test_cell_fault_false_hit(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        stored = (1, 0, 1, 0, 1, 0)
        cam.write(4, stored)
        cam.inject(CellStuckAt(address=4, bit=0, value=0))
        ghost = (0,) + stored[1:]
        assert cam.lookup(ghost) == 4           # matches a never-written tag

    def test_entry_count_validation(self):
        with pytest.raises(ValueError):
            BehavioralCAM(entries=6, tag_bits=4)
        with pytest.raises(ValueError):
            BehavioralCAM(entries=2, tag_bits=4)

    def test_key_width_validation(self):
        cam = BehavioralCAM(entries=8, tag_bits=6)
        with pytest.raises(ValueError):
            cam.match_lines((1, 0))
        with pytest.raises(ValueError):
            cam.invalidate(8)
