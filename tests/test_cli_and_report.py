import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_select_args(self):
        parser = build_parser()
        args = parser.parse_args(["select", "-c", "10", "-p", "1e-9"])
        assert args.cycles == 10
        assert args.pndc == 1e-9

    def test_report_args(self):
        parser = build_parser()
        args = parser.parse_args(
            ["report", "--words", "2048", "--bits", "16", "-c", "10",
             "-p", "1e-9"]
        )
        assert args.words == 2048
        assert args.mux == 8

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_select(self, capsys):
        assert main(["select", "-c", "10", "-p", "1e-9"]) == 0
        out = capsys.readouterr().out
        assert "3-out-of-5" in out

    def test_select_approximate_policy(self, capsys):
        assert main(
            ["select", "-c", "10", "-p", "1e-20",
             "--policy", "approximate"]
        ) == 0
        assert "5-out-of-9" in capsys.readouterr().out

    def test_report(self, capsys):
        code = main(
            ["report", "--words", "1024", "--bits", "16", "-c", "10",
             "-p", "1e-9"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "design report" in out
        assert "16x1K" in out

    def test_report_shared_column(self, capsys):
        main(
            ["report", "--words", "1024", "--bits", "16", "-c", "10",
             "-p", "1e-9", "--shared-column-code"]
        )
        assert "mapping 'mod'" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "9-out-of-18" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "7-out-of-13" in capsys.readouterr().out

    def test_safety(self, capsys):
        assert main(["safety"]) == 0
        assert "orders of magnitude" in capsys.readouterr().out

    def test_area_example(self, capsys):
        assert main(["area-example"]) == 0
        assert "6.25" in capsys.readouterr().out

    def test_structure(self, capsys):
        assert main(["structure"]) == 0
        assert "structural checks passed" in capsys.readouterr().out

    def test_ecc_baseline(self, capsys):
        assert main(["ecc-baseline"]) == 0
        assert "SEC-DED" in capsys.readouterr().out
