import pytest

from repro.memory.faults import (
    CellStuckAt,
    CouplingFault,
    DataLineStuckAt,
)
from repro.memory.march import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    MarchElement,
    MarchTest,
    march_address_stream,
    run_march,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM


def make_ram():
    return BehavioralRAM(MemoryOrganization(32, 4, column_mux=2))


class TestMarchDefinitions:
    def test_complexities(self):
        assert MARCH_C_MINUS.complexity == 10
        assert MATS_PLUS.complexity == 5
        assert MARCH_X.complexity == 6
        assert MARCH_Y.complexity == 8

    def test_element_validation(self):
        with pytest.raises(ValueError):
            MarchElement("^", ("r0",))
        with pytest.raises(ValueError):
            MarchElement("+", ("q0",))

    def test_element_addresses(self):
        up = MarchElement("+", ("r0",))
        down = MarchElement("-", ("r0",))
        assert list(up.addresses(4)) == [0, 1, 2, 3]
        assert list(down.addresses(4)) == [3, 2, 1, 0]

    def test_str_representations(self):
        assert "March C-" in str(MARCH_C_MINUS)
        assert "10N" in str(MARCH_C_MINUS)


class TestFaultFreePass:
    @pytest.mark.parametrize(
        "test", [MARCH_C_MINUS, MATS_PLUS, MARCH_X, MARCH_Y]
    )
    def test_healthy_ram_passes(self, test):
        assert run_march(make_ram(), test) == []


class TestCoverage:
    @pytest.mark.parametrize(
        "test", [MARCH_C_MINUS, MATS_PLUS, MARCH_X, MARCH_Y]
    )
    @pytest.mark.parametrize("value", [0, 1])
    def test_every_march_detects_every_cell_stuck_at(self, test, value):
        # SAF coverage is the baseline guarantee of all march tests
        for address in (0, 13, 31):
            for bit in (0, 3):
                ram = make_ram()
                ram.inject(CellStuckAt(address, bit, value))
                violations = run_march(ram, test)
                assert violations, (test.name, address, bit, value)

    def test_violation_records_location(self):
        ram = make_ram()
        ram.inject(CellStuckAt(7, 2, 1))
        violations = run_march(ram, MATS_PLUS)
        assert any(v.address == 7 for v in violations)
        first = violations[0]
        assert first.observed != first.expected

    def test_data_line_fault_detected(self):
        ram = make_ram()
        ram.inject(DataLineStuckAt(1, 1))
        assert run_march(ram, MATS_PLUS)

    def test_march_c_minus_detects_idempotent_coupling(self):
        # CFid: aggressor=1 forces victim bit high on reads
        ram = make_ram()
        ram.inject(
            CouplingFault(
                aggressor_address=3, aggressor_bit=0,
                victim_address=9, victim_bit=0,
                trigger=1, forced=1,
            )
        )
        assert run_march(ram, MARCH_C_MINUS)


class TestWriteTriggeredCoupling:
    """The textbook CFid guarantees: March C- covers every write-triggered
    coupling fault, MATS+ provably does not (its single ascending
    read-write element never re-reads a victim below its aggressor after
    the aggressor's up-transition)."""

    @staticmethod
    def cfid(aggressor, victim, trigger=1, forced=1):
        return CouplingFault(
            aggressor_address=aggressor, aggressor_bit=0,
            victim_address=victim, victim_bit=0,
            trigger=trigger, forced=forced, write_triggered=True,
        )

    @pytest.mark.parametrize("aggressor,victim", [(3, 9), (9, 3)])
    @pytest.mark.parametrize("trigger,forced", [(1, 1), (0, 0)])
    def test_march_c_minus_detects_both_orders_and_transitions(
        self, aggressor, victim, trigger, forced
    ):
        ram = make_ram()
        ram.inject(self.cfid(aggressor, victim, trigger, forced))
        assert run_march(ram, MARCH_C_MINUS), (
            aggressor, victim, trigger, forced,
        )

    def test_mats_plus_misses_aggressor_above_victim(self):
        # aggressor > victim: the ascending element writes the victim
        # first (v=1), so the later aggressor up-transition forces a
        # value the descending r1 then expects — never observed wrong.
        ram = make_ram()
        ram.inject(self.cfid(aggressor=9, victim=3))
        assert run_march(ram, MATS_PLUS) == []

    def test_mats_plus_detects_aggressor_below_victim(self):
        # the opposite order IS caught: SAF-grade coverage only.
        ram = make_ram()
        ram.inject(self.cfid(aggressor=3, victim=9))
        assert run_march(ram, MATS_PLUS)

    def test_apply_write_corrupts_stored_state(self):
        ram = make_ram()
        ram.inject(self.cfid(aggressor=5, victim=2))
        zero = (0,) * ram.organization.bits
        ram.write(2, zero)
        ram.write(5, zero)
        ram.write(5, (1,) * ram.organization.bits)  # 0 -> 1 transition
        assert ram.raw_word(2)[0] == 1  # victim's stored bit forced
        # and the victim's parity is now inconsistent: detectable
        assert not ram.parity_ok(2)

    def test_no_retrigger_without_transition(self):
        ram = make_ram()
        ram.inject(self.cfid(aggressor=5, victim=2))
        ones = (1,) * ram.organization.bits
        ram.write(5, ones)          # transition: forces victim
        ram.force_stored_bit(2, 0, 0)  # repair the victim by hand
        ram.write(5, ones)          # aggressor already at trigger
        assert ram.raw_word(2)[0] == 0  # no transition, no corruption

    def test_same_cell_rejected(self):
        with pytest.raises(ValueError):
            self.cfid(aggressor=4, victim=4)

    def test_campaign_engine_matrix_matches_run_march(self):
        from repro.scenarios import CampaignEngine, MemoryScenario

        scenarios = [
            MemoryScenario(faults=(self.cfid(3, 9),)),
            MemoryScenario(faults=(self.cfid(9, 3),)),
        ]
        for test in (MATS_PLUS, MARCH_C_MINUS):
            result = CampaignEngine().march(make_ram(), scenarios, test)
            for scenario, record in zip(scenarios, result.records):
                ram = make_ram()
                ram.inject(scenario.faults[0])
                assert record.detected == bool(run_march(ram, test))


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestAddressStream:
    def test_shim_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="Workload.march"):
            march_address_stream(MATS_PLUS, 4)

    def test_stream_length(self):
        words = 8
        stream = march_address_stream(MATS_PLUS, words)
        assert len(stream) == MATS_PLUS.complexity * words

    def test_reads_only_filter(self):
        stream = march_address_stream(MATS_PLUS, 4, reads_only=True)
        # w0 element contributes nothing; two r/w elements -> 1 read each
        assert len(stream) == 8

    def test_descending_elements_reverse(self):
        stream = march_address_stream(
            MarchTest("t", (MarchElement("-", ("r0",)),)), 4
        )
        assert stream == [3, 2, 1, 0]

    def test_stream_drives_decoder_campaign(self):
        from repro.checkers.m_out_of_n_checker import MOutOfNChecker
        from repro.codes.m_out_of_n import MOutOfNCode
        from repro.core.mapping import mapping_for_code
        from repro.faultsim.campaign import decoder_campaign
        from repro.faultsim.injector import decoder_fault_list
        from repro.rom.nor_matrix import CheckedDecoder

        checked = CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 5))
        stream = march_address_stream(MARCH_C_MINUS, 32)
        result = decoder_campaign(
            checked,
            MOutOfNChecker(3, 5, structural=False),
            decoder_fault_list(checked),
            stream,
            attach_analytic=False,
        )
        # a full march sweep excites and detects every decoder fault
        assert result.coverage == 1.0
