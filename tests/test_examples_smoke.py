"""Smoke-run every example script — the documented entry points must work."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in SCRIPTS}
    assert "quickstart.py" in names
    assert len(SCRIPTS) >= 4


@pytest.mark.parametrize("script", SCRIPTS, ids=lambda p: p.name)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their findings"


def test_quickstart_output_mentions_detection():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    out = completed.stdout
    assert "3-out-of-5" in out
    assert "error_detected=True" in out
