"""Cross-organisation sweep: the design flow must hold for any geometry.

Builds the complete scheme for a grid of memory organisations and
requirements and verifies the invariants end to end — the kind of
configuration sweep a downstream adopter would hit immediately.
"""

import pytest

from repro.core.plan import plan_memory_codes
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.memory.organization import MemoryOrganization

ORGS = [
    MemoryOrganization(32, 4, column_mux=2),
    MemoryOrganization(64, 8, column_mux=4),
    MemoryOrganization(128, 8, column_mux=2),
    MemoryOrganization(256, 16, column_mux=8),
    MemoryOrganization(512, 9, column_mux=4),   # non-power-of-two width
]

REQUIREMENTS = [(5, 1e-6), (10, 1e-9), (40, 1e-9)]


@pytest.mark.parametrize("org", ORGS, ids=lambda o: o.label())
@pytest.mark.parametrize("req", REQUIREMENTS, ids=lambda r: f"c{r[0]}")
def test_scheme_builds_and_operates(org, req):
    c, pndc = req
    memory = SelfCheckingMemory.from_selection(org, select_code(c, pndc))
    pattern = tuple(i % 2 for i in range(org.bits))
    memory.write(org.words - 1, pattern)
    result = memory.read(org.words - 1)
    assert result.data == pattern
    assert not result.error_detected
    assert 0 < memory.area_overhead_percent() < 150


@pytest.mark.parametrize("org", ORGS, ids=lambda o: o.label())
def test_plan_overhead_consistent_with_scheme(org):
    plan = plan_memory_codes(org, c=10, pndc=1e-9)
    memory = SelfCheckingMemory(
        org, plan.row_mapping(), plan.column_mapping()
    )
    assert memory.area_overhead_percent() == pytest.approx(
        plan.overhead_percent()
    )


@pytest.mark.parametrize("org", ORGS, ids=lambda o: o.label())
def test_decoder_fault_detected_within_budget(org):
    """One injected merge per organisation must be caught quickly."""
    from repro.circuits.faults import NetStuckAt
    from repro.scenarios import Workload

    c, pndc = 10, 1e-9
    memory = SelfCheckingMemory.from_selection(org, select_code(c, pndc))
    line = memory.row.tree.root.output_nets[1]
    memory.inject_row_fault(NetStuckAt(line, 1))
    detected_at = None
    for cycle, address in enumerate(
        Workload.uniform(1 << org.n, 600, seed=org.words).addresses()
    ):
        if memory.read(address).error_detected:
            detected_at = cycle
            break
    memory.clear_faults()
    assert detected_at is not None
    # generous envelope: mean detection is ~a/(a-1) cycles of *excited*
    # traffic; 600 uniform cycles leave enormous slack
    assert detected_at < 600
