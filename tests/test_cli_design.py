"""CLI redesign: --version, --json everywhere, sweep, registry,
registry-generated experiment commands, real exit codes."""

import json

import pytest

from repro import __version__
from repro.cli import EXPERIMENTS, build_parser, main
from repro.design.report import DesignReport


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestJsonOutputs:
    def test_select_json(self, capsys):
        assert main(["select", "-c", "10", "-p", "1e-9", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["code"] == "3-out-of-5"
        assert data["a_final"] == 9
        assert data["escape_per_cycle"] == "1/8"

    def test_report_json_round_trips(self, capsys):
        assert main(
            ["report", "--words", "2048", "--bits", "16", "-c", "10",
             "-p", "1e-9", "--json"]
        ) == 0
        report = DesignReport.from_json(capsys.readouterr().out)
        assert report.row.code == "3-out-of-5"
        assert report.spec.words == 2048

    def test_experiment_json_wraps_output(self, capsys):
        assert main(["safety", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["command"] == "safety"
        assert "orders of magnitude" in data["output"]

    def test_table1_json_has_structured_rows(self, capsys):
        assert main(["table1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["rows"]) == 6
        assert data["rows"][0]["c"] == 2

    def test_registry_json(self, capsys):
        assert main(["registry", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "mod" in data["mappings"]
        assert "tree" in data["decoders"]


class TestCampaignSubcommands:
    """The 1.3 `repro transient` / `repro march` commands ride the
    EXPERIMENTS table with the campaign-command option set."""

    def test_transient_json_rows_and_stats(self, capsys):
        assert main(["transient", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["command"] == "transient"
        assert data["engine"] == "packed"
        assert data["campaign"]["engine"] == "packed"
        workloads = {row["workload"] for row in data["rows"]}
        assert {"uniform", "sequential", "bursty"} <= workloads

    def test_march_json_rows(self, capsys):
        assert main(["march", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        by_test = {row["test"]: row for row in data["rows"]}
        assert by_test["March C-"]["coverage"] == 1.0
        assert by_test["MATS+"]["coverage"] < 1.0
        assert "coupling (write CFid)" in by_test["MATS+"]["missed_classes"]

    def test_serial_engine_flag(self, capsys):
        assert main(["march", "--serial", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["engine"] == "serial"

    def test_workers_with_serial_rejected(self, capsys):
        assert main(["transient", "--serial", "--workers", "2"]) == 1
        assert "--workers requires the packed or vector engine" in (
            capsys.readouterr().err
        )

    def test_report_workload_option(self, capsys):
        assert main(
            ["report", "--words", "512", "--bits", "8", "-c", "10",
             "-p", "1e-9", "--empirical", "--workload", "bursty",
             "--json"]
        ) == 0
        report = DesignReport.from_json(capsys.readouterr().out)
        assert report.empirical.workload.startswith("bursty(")

    def test_report_rejects_unknown_workload(self, capsys):
        with pytest.raises(SystemExit):
            main(
                ["report", "--words", "512", "--bits", "8", "-c", "10",
                 "-p", "1e-9", "--workload", "fancy"]
            )


class TestSweep:
    def test_sweep_text_table(self, capsys):
        assert main(["sweep", "-c", "2", "-c", "10", "-p", "1e-9"]) == 0
        out = capsys.readouterr().out
        assert "6 specs" in out
        assert "9-out-of-18" in out  # c=2 row
        assert "3-out-of-5" in out   # c=10 row

    def test_sweep_json_parallel(self, capsys):
        assert main(
            ["sweep", "-c", "10", "-p", "1e-9", "--workers", "4",
             "--org", "16x2K", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data) == 1
        assert data[0]["row"]["code"] == "3-out-of-5"

    def test_sweep_custom_org_format(self, capsys):
        assert main(
            ["sweep", "-c", "10", "-p", "1e-9", "--org", "1024x16x8"]
        ) == 0
        assert "16x1K" in capsys.readouterr().out

    def test_sweep_bad_org_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "-c", "10", "-p", "1e-9", "--org", "banana"]
            )

    def test_sweep_transposed_org_rejected(self, capsys):
        # '16x2048' is the paper label order typed numerically; refuse
        # rather than size a 16-word x 2048-bit memory
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "-c", "10", "-p", "1e-9", "--org", "16x2048"]
            )
        assert "did you mean '2048x16'" in capsys.readouterr().err


class TestOutFile:
    def test_report_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(
            ["report", "--words", "1024", "--bits", "16", "-c", "10",
             "-p", "1e-9", "--out", str(target)]
        ) == 0
        assert "16x1K" in target.read_text()
        assert str(target) in capsys.readouterr().out

    def test_experiment_out_writes_file(self, tmp_path):
        target = tmp_path / "table1.txt"
        assert main(["table1", "--out", str(target)]) == 0
        assert "9-out-of-18" in target.read_text()


class TestExitCodes:
    def test_domain_error_returns_1_not_traceback(self, capsys):
        # 3 words is not a power of two -> ValueError inside the command
        code = main(
            ["report", "--words", "3", "--bits", "16", "-c", "10",
             "-p", "1e-9"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_bad_pndc_returns_1(self):
        assert main(["select", "-c", "10", "-p", "2.0"]) == 1


class TestExperimentTable:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 12
        assert len({entry.name for entry in EXPERIMENTS}) == 12
        names = {entry.name for entry in EXPERIMENTS}
        # the 1.3 campaign commands ride the same table
        assert {"transient", "march"} <= names

    def test_parser_has_every_experiment(self):
        parser = build_parser()
        for entry in EXPERIMENTS:
            args = parser.parse_args([entry.name])
            assert callable(args.func)
