"""Property-based tests (hypothesis) on the core invariants."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.codes.parity import ParityCode
from repro.codes.unordered import bitwise_and, covers
from repro.core.latency import (
    collision_count,
    escape_probability,
    worst_escape_over_blocks,
)
from repro.core.mapping import ModAMapping, ParityMapping
from repro.core.selection import SelectionPolicy, select_code
from repro.utils.bitops import bits_to_int, int_to_bits

@st.composite
def code_mn(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    m = draw(st.integers(min_value=1, max_value=n - 1))
    return MOutOfNCode(m, n)


class TestBitops:
    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_int_bits_round_trip(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        assert bits_to_int(int_to_bits(value, width)) == value


class TestParityCodeProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=12))
    def test_encoding_always_even(self, data):
        code = ParityCode(len(data))
        assert sum(code.encode(tuple(data))) % 2 == 0

    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=10),
        st.data(),
    )
    def test_single_flip_always_detected(self, data, drawn):
        code = ParityCode(len(data))
        word = list(code.encode(tuple(data)))
        position = drawn.draw(
            st.integers(min_value=0, max_value=len(word) - 1)
        )
        word[position] ^= 1
        assert not code.is_codeword(word)


class TestMOutOfNProperties:
    @given(code_mn(), st.data())
    @settings(max_examples=60)
    def test_index_round_trip(self, code, data):
        index = data.draw(
            st.integers(min_value=0, max_value=code.cardinality() - 1)
        )
        assert code.index_of(code.word_at(index)) == index

    @given(code_mn(), st.data())
    @settings(max_examples=60)
    def test_distinct_words_and_is_noncode(self, code, data):
        # the unordered-code lemma, on random word pairs
        size = code.cardinality()
        i = data.draw(st.integers(min_value=0, max_value=size - 1))
        j = data.draw(st.integers(min_value=0, max_value=size - 1))
        u, v = code.word_at(i), code.word_at(j)
        if i != j:
            merged = bitwise_and(u, v)
            assert not code.is_codeword(merged)
            assert covers(u, merged) and covers(v, merged)

    @given(code_mn())
    @settings(max_examples=40)
    def test_all_ones_is_never_codeword(self, code):
        assert not code.is_codeword((1,) * code.n)


class TestLatencyProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=600).filter(lambda a: a % 2 == 1),
        st.data(),
    )
    @settings(max_examples=80)
    def test_collision_count_matches_enumeration(self, i, a, data):
        m1 = data.draw(st.integers(min_value=0, max_value=(1 << i) - 1))
        expected = sum(1 for x in range(1 << i) if x % a == m1 % a)
        assert collision_count(i, a, m1) == expected

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=600).filter(lambda a: a % 2 == 1),
    )
    @settings(max_examples=80)
    def test_escape_bound_dominates_every_m1(self, i, a):
        bound = escape_probability(i, a)
        worst = max(
            escape_probability(i, a, m1)
            for m1 in range(min(1 << i, 2 * a + 1))
        )
        assert worst <= bound

    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=60)
    def test_worst_escape_non_increasing(self, k):
        a = 2 * k + 1
        assert worst_escape_over_blocks(a + 2, 32) <= worst_escape_over_blocks(
            a, 32
        )


class TestMappingProperties:
    @given(
        st.integers(min_value=2, max_value=9),
        st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=40)
    def test_mod_mapping_indices_dense_and_valid(self, n_bits, r):
        code = maximal_code_for_width(r)
        if (code.m, code.n) == (1, 2):
            return
        mapping = ModAMapping(code, n_bits)
        for address in range(1 << n_bits):
            index = mapping.index(address)
            assert 0 <= index < code.cardinality()

    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=60)
    def test_parity_mapping_flips_on_single_bit(self, n_bits, data):
        mapping = ParityMapping(n_bits)
        address = data.draw(
            st.integers(min_value=0, max_value=(1 << n_bits) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=n_bits - 1))
        assert mapping.index(address) != mapping.index(address ^ (1 << bit))


class TestSelectionProperties:
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=2, max_value=25),
    )
    @settings(max_examples=60, deadline=2000)
    def test_exact_policy_always_meets_target(self, c, neg_exp):
        from hypothesis import assume

        target = 10.0 ** -neg_exp
        # below the non-excitation floor the requirement is infeasible
        # (required_a_for raises); see TestInfeasibleTargets
        assume(math.log10(0.5) * 64 * c <= -neg_exp)
        sel = select_code(c, target, policy=SelectionPolicy.EXACT)
        assert sel.meets_target
        assert sel.achieved_pndc <= target

    def test_infeasible_target_raises_cleanly(self):
        with pytest.raises(ValueError):
            select_code(1, 1e-20, policy=SelectionPolicy.EXACT)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=40, deadline=2000)
    def test_selected_code_is_cheapest_meeting_spec(self, c, neg_exp):
        target = 10.0 ** -neg_exp
        from hypothesis import assume

        # same feasibility guard as the meets-target property above:
        # below the non-excitation floor select_code raises by design
        # (see test_infeasible_target_raises_cleanly)
        assume(math.log10(0.5) * 64 * c <= -neg_exp)
        sel = select_code(c, target, policy=SelectionPolicy.EXACT)
        if sel.mapping_kind == "parity":
            return
        # no strictly narrower maximal code meets the spec
        narrower_r = sel.code.n - 1
        if narrower_r < 2:
            return
        narrower = maximal_code_for_width(narrower_r)
        cardinality = narrower.cardinality()
        if (narrower.m, narrower.n) == (1, 2):
            escape = Fraction(1, 2)
        else:
            a = cardinality if cardinality % 2 else cardinality - 1
            escape = worst_escape_over_blocks(a, 64)
        assert float(escape) ** c > target
