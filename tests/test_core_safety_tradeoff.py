import pytest

from repro.core.safety import (
    SafetyModel,
    undetectable_rate_unchecked_decoders,
    undetectable_rate_with_coverage,
)
from repro.core.tradeoff import TradeoffExplorer
from repro.memory.organization import paper_org


class TestSafetyArithmetic:
    def test_paper_numbers(self):
        # §II: 1e-5 MTBF, 1e-4 escape -> 1e-9; array-only -> ~1e-6.
        assert undetectable_rate_with_coverage(1e-5, 1e-4) == pytest.approx(
            1e-9
        )
        array_only = undetectable_rate_unchecked_decoders(1e-5, 0.1, 1e-4)
        assert array_only == pytest.approx(1.0009e-6, rel=1e-3)

    def test_three_orders_of_magnitude(self):
        import math

        full = undetectable_rate_with_coverage(1e-5, 1e-4)
        partial = undetectable_rate_unchecked_decoders(1e-5, 0.1, 1e-4)
        assert math.log10(partial / full) == pytest.approx(3.0, abs=0.01)

    def test_model_improvement_monotone_in_escape(self):
        model = SafetyModel(1e-5, decoder_area_fraction=0.1)
        rates = [model.rate_with_scheme(e) for e in (1e-2, 1e-4, 1e-6)]
        assert rates == sorted(rates, reverse=True)

    def test_zero_escape_infinite_improvement(self):
        model = SafetyModel(1e-5, 0.1, array_escape_fraction=0.0)
        assert model.improvement_factor(0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            undetectable_rate_with_coverage(-1.0, 0.5)
        with pytest.raises(ValueError):
            undetectable_rate_with_coverage(1e-5, 2.0)
        with pytest.raises(ValueError):
            undetectable_rate_unchecked_decoders(1e-5, 1.5, 0.1)


class TestTradeoffExplorer:
    @pytest.fixture(scope="class")
    def explorer(self):
        return TradeoffExplorer(paper_org("16x2K"))

    def test_point_matches_selection(self, explorer):
        pt = explorer.point(10, 1e-9)
        assert pt.code_name == "3-out-of-5"
        assert pt.overhead_percent == pytest.approx(24.66, abs=0.05)

    def test_latency_sweep_monotone(self, explorer):
        points = explorer.sweep_latency((2, 5, 10, 20, 40), 1e-9)
        overheads = [pt.overhead_percent for pt in points]
        assert overheads == sorted(overheads, reverse=True)

    def test_escape_sweep_monotone(self, explorer):
        points = explorer.sweep_escape(10, (1e-2, 1e-9, 1e-30))
        overheads = [pt.overhead_percent for pt in points]
        assert overheads == sorted(overheads)

    def test_pareto_frontier_strictly_improving(self, explorer):
        frontier = explorer.pareto_frontier((2, 5, 10, 20, 30, 40), 1e-9)
        cs = [pt.c for pt in frontier]
        areas = [pt.overhead_percent for pt in frontier]
        assert cs == sorted(cs)
        assert areas == sorted(areas, reverse=True)
        assert len(frontier) >= 3

    def test_budget_query_respects_budget(self, explorer):
        best = explorer.max_latency_for_budget(25.0, 1e-9)
        assert best is not None
        assert best.overhead_percent <= 25.0

    def test_budget_query_tight_budget(self, explorer):
        # the 1-out-of-2 endpoint costs ~9.9 %; below that, nothing fits
        assert explorer.max_latency_for_budget(5.0, 1e-9) is None

    def test_rows_serialisable(self, explorer):
        row = explorer.point(10, 1e-9).as_row()
        assert row[0] == 10 and row[2] == "3-out-of-5"
