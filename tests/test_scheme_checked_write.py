"""Tests for the write path routed through faulty decoders."""

import pytest

from repro.circuits.faults import NetStuckAt
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.memory.organization import MemoryOrganization


@pytest.fixture
def memory():
    org = MemoryOrganization(words=64, bits=8, column_mux=4)
    return SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))


PATTERN = (1, 0, 1, 1, 0, 0, 1, 0)
ZERO = (0,) * 8


class TestFaultFreeCheckedWrite:
    def test_writes_requested_location_only(self, memory):
        memory.checked_write(10, PATTERN)
        assert memory.read(10).data == PATTERN
        assert memory.read(11).data == ZERO

    def test_indications_clean(self, memory):
        result = memory.checked_write(10, PATTERN)
        assert not result.error_detected
        assert result.data == PATTERN


class TestFaultyCheckedWrite:
    def test_sa1_merge_writes_both_rows(self, memory):
        org = memory.organization
        stuck_row = 2
        line = memory.row.tree.root.output_nets[stuck_row]
        memory.inject_row_fault(NetStuckAt(line, 1))
        target = org.join_address(5, 1)
        result = memory.checked_write(target, PATTERN)
        memory.clear_faults()
        # both the target and the merged row hold the data now
        assert memory.read(target).data == PATTERN
        assert memory.read(org.join_address(stuck_row, 1)).data == PATTERN
        # and the write cycle itself was flagged by the row checker
        assert not result.row_ok

    def test_sa0_drops_the_write_and_flags(self, memory):
        org = memory.organization
        row_value, col_value = org.split_address(9)
        line = memory.row.tree.root.output_nets[row_value]
        memory.inject_row_fault(NetStuckAt(line, 0))
        memory.write(9, ZERO)
        result = memory.checked_write(9, PATTERN)
        memory.clear_faults()
        assert memory.read(9).data == ZERO  # write never landed
        assert not result.row_ok            # ...but the cycle was flagged

    def test_silent_merge_when_words_collide(self):
        # two rows with equal code words: the merge is invisible on the
        # write cycle (that is the latency the paper's model prices in).
        # Needs >= 32 rows so a pair survives the completion remap
        # (rows 0 and 18 are congruent mod 9).
        org = MemoryOrganization(words=128, bits=8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9)
        )
        mapping = memory.row.mapping
        stuck_row = None
        target_row = None
        for candidate in range(1, org.rows):
            if mapping.index(candidate) == mapping.index(0):
                stuck_row, target_row = candidate, 0
                break
        assert stuck_row is not None, "need a colliding pair for this org"
        line = memory.row.tree.root.output_nets[stuck_row]
        memory.inject_row_fault(NetStuckAt(line, 1))
        result = memory.checked_write(
            org.join_address(target_row, 0), PATTERN
        )
        memory.clear_faults()
        assert result.row_ok  # escaped this cycle, as the model predicts
        # data nevertheless corrupted the merged row: the latent error
        assert memory.read(
            org.join_address(stuck_row, 0)
        ).data == PATTERN


class TestColumnFaultCheckedWrite:
    """Column-decoder stuck-ats on the write path (§III applies to both
    axes; the column ROM observes the mux-select lines on writes too)."""

    def test_column_sa0_drops_the_write_and_flags(self, memory):
        org = memory.organization
        _, col_value = org.split_address(9)
        line = memory.column.tree.root.output_nets[col_value]
        memory.inject_column_fault(NetStuckAt(line, 0))
        memory.write(9, ZERO)
        result = memory.checked_write(9, PATTERN)
        memory.clear_faults()
        assert memory.read(9).data == ZERO   # nothing selected, write lost
        assert not result.column_ok          # all-1s ROM word flagged
        assert result.error_detected

    def test_column_sa1_merge_writes_both_ways(self, memory):
        org = memory.organization
        stuck_col = 3
        line = memory.column.tree.root.output_nets[stuck_col]
        memory.inject_column_fault(NetStuckAt(line, 1))
        target = org.join_address(5, 0)
        result = memory.checked_write(target, PATTERN)
        memory.clear_faults()
        assert memory.read(target).data == PATTERN
        assert memory.read(org.join_address(5, stuck_col)).data == PATTERN
        assert not result.column_ok  # distinct words AND to non-code

    def test_multi_row_merge_writes_every_selected_row(self):
        # two simultaneous row stuck-at-1s: the data lands in all three
        # rows and the triple-AND ROM word still leaves the code
        org = MemoryOrganization(words=64, bits=8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9)
        )
        for stuck_row in (1, 2):
            line = memory.row.tree.root.output_nets[stuck_row]
            memory.inject_row_fault(NetStuckAt(line, 1))
        target = org.join_address(7, 0)
        result = memory.checked_write(target, PATTERN)
        memory.clear_faults()
        for row in (1, 2, 7):
            assert memory.read(org.join_address(row, 0)).data == PATTERN
        assert not result.row_ok

    def test_write_cycle_parity_reflects_written_word(self, memory):
        # decoder faults do not corrupt the write-cycle parity check: the
        # indication is computed from the word being written
        line = memory.row.tree.root.output_nets[0]
        memory.inject_row_fault(NetStuckAt(line, 0))
        result = memory.checked_write(0, PATTERN)
        memory.clear_faults()
        assert result.parity_ok
        assert not result.row_ok


class TestSelectionAttribute:
    """Regression: `.selection` exists on every construction path."""

    def test_directly_constructed_memory_has_none_selection(self):
        org = MemoryOrganization(words=64, bits=8, column_mux=4)
        code = select_code(10, 1e-9).code
        memory = SelfCheckingMemory(
            org,
            mapping_for_code(code, org.p),
            mapping_for_code(code, org.s),
        )
        assert memory.selection is None  # used to raise AttributeError

    def test_from_selection_still_records_selection(self, memory):
        assert memory.selection is not None
        assert memory.selection.code_name == "3-out-of-5"
