"""Exhaustive TSC-property verification of the gate-level checkers."""

import pytest

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.properties import (
    is_code_disjoint,
    is_fault_secure,
    is_self_testing,
    undetected_checker_faults,
)
from repro.checkers.two_rail_checker import TwoRailChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.parity import ParityCode
from repro.codes.two_rail import TwoRailCode


class TestCodeDisjointness:
    @pytest.mark.parametrize("pairs", [1, 2, 3])
    def test_two_rail_checker(self, pairs):
        checker = TwoRailChecker(pairs)
        assert is_code_disjoint(checker.circuit, TwoRailCode(pairs))

    @pytest.mark.parametrize("width", [2, 3, 4, 6])
    def test_parity_checker(self, width):
        checker = ParityChecker(width)
        assert is_code_disjoint(checker.circuit, ParityCode(width - 1))

    @pytest.mark.parametrize("m,n", [(1, 2), (2, 3), (2, 4), (3, 5), (3, 6)])
    def test_m_out_of_n_checker(self, m, n):
        checker = MOutOfNChecker(m, n, structural=True)
        assert is_code_disjoint(checker.circuit, MOutOfNCode(m, n))

    def test_report_mode_lists_counterexamples(self):
        # A deliberately broken "checker": constant valid indication.
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Circuit

        c = Circuit()
        c.add_inputs(["x0", "x1"])
        one = c.add_gate(GateType.CONST1, ())
        zero = c.add_gate(GateType.CONST0, ())
        c.mark_output(one)
        c.mark_output(zero)
        ok, bad = is_code_disjoint(c, MOutOfNCode(1, 2), report=True)
        assert not ok
        # non-code words (00, 11) wrongly accepted
        assert len(bad) == 2


class TestSelfTesting:
    def test_two_rail_tree_is_self_testing(self):
        checker = TwoRailChecker(2)
        words = list(TwoRailCode(2).words())
        missed = undetected_checker_faults(checker.circuit, words)
        assert missed == []

    def test_two_rail_tree_three_pairs_self_testing(self):
        checker = TwoRailChecker(3)
        assert is_self_testing(
            checker.circuit, list(TwoRailCode(3).words())
        )

    def test_parity_checker_self_testing(self):
        checker = ParityChecker(4)
        assert is_self_testing(
            checker.circuit, list(ParityCode(3).words())
        )

    def test_restricted_inputs_break_self_testing(self):
        # Exercising only one code word cannot test both polarities.
        checker = TwoRailChecker(2)
        single = [tuple(TwoRailCode(2).encode((0, 0)))]
        assert not is_self_testing(checker.circuit, single)


class TestFaultSecure:
    def test_inverter_pair_generator_is_fault_secure(self):
        # A two-rail "functional block": duplicated rail generator.
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Circuit

        c = Circuit()
        a = c.add_input("a")
        inv = c.add_gate(GateType.NOT, (a,))
        c.mark_output(a)
        c.mark_output(inv)
        code = TwoRailCode(1)
        # Internal faults only: an input-stem fault moves *both* rails to
        # a consistent (wrong) code word and is out of the fault model.
        from repro.circuits.faults import enumerate_stuck_at_faults

        faults = enumerate_stuck_at_faults(c, include_inputs=False)
        assert is_fault_secure(
            c,
            code.is_codeword,
            input_vectors=[(0,), (1,)],
            faults=faults,
        )

    def test_input_stem_fault_breaks_fault_secureness(self):
        # ...and the exhaustive checker exposes exactly that.
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Circuit

        c = Circuit()
        a = c.add_input("a")
        inv = c.add_gate(GateType.NOT, (a,))
        c.mark_output(a)
        c.mark_output(inv)
        assert not is_fault_secure(
            c, TwoRailCode(1).is_codeword, input_vectors=[(0,), (1,)]
        )

    def test_single_output_duplication_violation_detected(self):
        # A block that drives both rails from ONE gate is not fault
        # secure: a fault flips both rails together into a code word.
        from repro.circuits.gates import GateType
        from repro.circuits.netlist import Circuit

        c = Circuit()
        a = c.add_input("a")
        buf = c.add_gate(GateType.BUF, (a,))
        inv = c.add_gate(GateType.NOT, (buf,))
        c.mark_output(buf)
        c.mark_output(inv)
        # fault on `buf` output changes both outputs -> (b, ~b) stays a
        # code word while being wrong.
        code = TwoRailCode(1)
        assert not is_fault_secure(
            c, code.is_codeword, input_vectors=[(0,), (1,)]
        )
