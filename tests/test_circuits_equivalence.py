"""Fault-collapsing tests, including a behavioural-equivalence proof."""

import itertools
import random

import pytest

from repro.circuits.equivalence import (
    collapse_faults,
    representative_faults,
)
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def inverter_chain(length):
    c = Circuit("chain")
    net = c.add_input("a")
    for i in range(length):
        net = c.add_gate(GateType.NOT, (net,), name=f"inv{i}")
    c.mark_output(net)
    return c


def and_gate():
    c = Circuit("and2")
    a = c.add_input("a")
    b = c.add_input("b")
    c.mark_output(c.add_gate(GateType.AND, (a, b)))
    return c


def random_circuit(seed, inputs=3, gates=8):
    rng = random.Random(seed)
    c = Circuit(f"random{seed}")
    nets = c.add_inputs([f"x{i}" for i in range(inputs)])
    pool = list(nets)
    choices = [
        GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
        GateType.XOR, GateType.NOT,
    ]
    for _ in range(gates):
        gate_type = rng.choice(choices)
        if gate_type is GateType.NOT:
            ins = (rng.choice(pool),)
        else:
            ins = (rng.choice(pool), rng.choice(pool))
        pool.append(c.add_gate(gate_type, ins))
    c.mark_output(pool[-1])
    c.mark_output(pool[-2])
    return c


class TestCollapseStructure:
    def test_inverter_chain_collapses_hard(self):
        # every fault along a chain is equivalent to one of 2 classes
        c = inverter_chain(5)
        classes = collapse_faults(c)
        assert classes.num_classes == 2
        assert classes.total == 2 + 5 * 2 + 5 * 2  # stems + outputs + pins

    def test_and_gate_classes(self):
        c = and_gate()
        classes = collapse_faults(c)
        # universe: 2 inputs*2 + 1 output*2 + 2 pins*2 = 10 faults.
        # inputs are single-reader: stem ≡ pin.  pin sa0 ≡ out sa0.
        # classes: {a/0, pinA/0, b/0, pinB/0, out/0}, {a/1,pinA/1},
        # {b/1,pinB/1}, {out/1} -> 4 classes
        assert classes.num_classes == 4
        assert classes.collapse_ratio == pytest.approx(0.4)

    def test_representatives_one_per_class(self):
        c = and_gate()
        reps = representative_faults(c)
        assert len(reps) == collapse_faults(c).num_classes

    def test_restricted_fault_set(self):
        from repro.circuits.faults import NetStuckAt

        c = and_gate()
        subset = [
            NetStuckAt(c.gates[0].output, 0),
            NetStuckAt(c.input_nets[0], 0),
        ]
        classes = collapse_faults(c, subset)
        # both belong to the big sa0 class -> one class
        assert classes.num_classes == 1
        assert classes.total == 2

    def test_class_of_lookup(self):
        from repro.circuits.faults import NetStuckAt

        c = and_gate()
        classes = collapse_faults(c)
        cls = classes.class_of(NetStuckAt(c.gates[0].output, 0))
        assert len(cls) >= 5
        with pytest.raises(KeyError):
            classes.class_of(NetStuckAt(999, 0))


class TestBehaviouralEquivalence:
    """Collapsed classes must be *functionally* indistinguishable."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits(self, seed):
        c = random_circuit(seed)
        classes = collapse_faults(c)
        vectors = list(itertools.product((0, 1), repeat=len(c.input_nets)))
        for cls in classes.classes:
            signatures = set()
            for fault in cls:
                signature = tuple(
                    c.evaluate(v, faults=(fault,)) for v in vectors
                )
                signatures.add(signature)
            assert len(signatures) == 1, cls

    def test_decoder_tree_collapse_ratio(self):
        from repro.decoder.tree import DecoderTree

        tree = DecoderTree(4)
        classes = collapse_faults(tree.circuit)
        # AND-tree structure collapses a large share of the faults
        assert classes.collapse_ratio < 0.7

    def test_decoder_tree_classes_equivalent(self):
        from repro.decoder.tree import DecoderTree

        tree = DecoderTree(3)
        classes = collapse_faults(tree.circuit)
        vectors = list(itertools.product((0, 1), repeat=3))
        for cls in classes.classes:
            signatures = {
                tuple(tree.circuit.evaluate(v, faults=(f,)) for v in vectors)
                for f in cls
            }
            assert len(signatures) == 1
