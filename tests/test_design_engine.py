"""DesignEngine: build/evaluate/sweep, and equivalence with the legacy
entry points (the API-redesign acceptance criteria)."""

import pytest

from repro.core.report import design_report
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import SelectionPolicy, select_code
from repro.design.engine import DesignEngine
from repro.design.report import DesignReport
from repro.design.spec import DesignSpec
from repro.memory.organization import PAPER_ORGS, MemoryOrganization

REQUIREMENTS = [(2, 1e-9), (10, 1e-9), (10, 1e-15)]


@pytest.fixture(scope="module")
def engine():
    return DesignEngine()


class TestBuild:
    def test_build_returns_working_memory(self, engine):
        spec = DesignSpec(words=64, bits=8, column_mux=4)
        memory = engine.build(spec)
        assert isinstance(memory, SelfCheckingMemory)
        memory.write(7, (1, 1, 0, 0, 1, 0, 1, 0))
        result = memory.read(7)
        assert result.data == (1, 1, 0, 0, 1, 0, 1, 0)
        assert not result.error_detected

    def test_build_records_selection(self, engine):
        memory = engine.build(DesignSpec(words=64, bits=8, column_mux=4))
        assert memory.selection is not None
        assert memory.selection.code_name == "3-out-of-5"

    def test_build_matches_legacy_from_requirements(self, engine):
        spec = DesignSpec(
            words=64, bits=8, column_mux=4, column_zero_latency=False
        )
        via_engine = engine.build(spec)
        legacy = SelfCheckingMemory.from_requirements(
            MemoryOrganization(64, 8, 4), c=spec.c, pndc=spec.pndc
        )
        assert (
            via_engine.row.mapping.table() == legacy.row.mapping.table()
        )
        assert (
            via_engine.column.mapping.table()
            == legacy.column.mapping.table()
        )

    def test_zero_latency_column_default(self, engine):
        memory = engine.build(DesignSpec(words=64, bits=8, column_mux=4))
        # identity column mapping: one distinct word per mux way
        assert memory.column.mapping.num_words_used == 4

    def test_row_code_override(self, engine):
        spec = DesignSpec(
            words=64, bits=8, column_mux=4, row_code="2-out-of-4"
        )
        memory = engine.build(spec)
        assert memory.selection.code_name == "2-out-of-4"

    def test_flat_decoder_style(self, engine):
        spec = DesignSpec(
            words=64, bits=8, column_mux=4, decoder_style="flat"
        )
        memory = engine.build(spec)
        memory.write(3, (1,) * 8)
        assert memory.read(3).data == (1,) * 8

    def test_structural_checkers(self, engine):
        spec = DesignSpec(
            words=64, bits=8, column_mux=4, checker_style="structural"
        )
        memory = engine.build(spec)
        assert not memory.read(0).error_detected


class TestEvaluate:
    @pytest.mark.parametrize("org", PAPER_ORGS, ids=lambda o: o.label())
    @pytest.mark.parametrize("req", REQUIREMENTS, ids=str)
    def test_render_matches_legacy_design_report(self, engine, org, req):
        c, pndc = req
        spec = DesignSpec.for_organization(org, c=c, pndc=pndc)
        assert engine.evaluate(spec).render() == design_report(
            org, c, pndc
        )

    def test_selection_fields_match_select_code(self, engine):
        spec = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)
        report = engine.evaluate(spec)
        selection = select_code(10, 1e-9)
        assert report.row.code == selection.code_name
        assert report.row.a_final == selection.a_final
        assert report.row.pndc_achieved == selection.achieved_pndc

    def test_approximate_policy_flows_through(self, engine):
        spec = DesignSpec(
            words=2048, bits=16, c=10, pndc=1e-20, policy="approximate"
        )
        report = engine.evaluate(spec)
        expected = select_code(
            10, 1e-20, policy=SelectionPolicy.APPROXIMATE
        )
        assert report.row.code == expected.code_name

    def test_report_json_round_trip(self, engine):
        report = engine.evaluate(DesignSpec(words=2048, bits=16))
        assert DesignReport.from_json(report.to_json()) == report


class TestSweep:
    def test_grid_acceptance(self, engine):
        """PAPER_ORGS x 3 requirements: reports match design_report."""
        specs = DesignSpec.grid(PAPER_ORGS, REQUIREMENTS)
        reports = engine.sweep(specs, workers=4)
        assert len(reports) == 9
        for spec, report in zip(specs, reports):
            assert report.spec == spec  # order preserved
            assert report.render() == design_report(
                spec.organization, spec.c, spec.pndc
            )
            assert DesignReport.from_json(report.to_json()) == report

    def test_serial_and_parallel_agree(self, engine):
        specs = DesignSpec.grid(PAPER_ORGS, REQUIREMENTS[:2])
        assert engine.sweep(specs) == engine.sweep(specs, workers=3)

    def test_process_pool_executor(self, engine):
        specs = DesignSpec.grid(PAPER_ORGS[:1], REQUIREMENTS[:2])
        reports = engine.sweep(specs, workers=2, executor="process")
        assert reports == engine.sweep(specs)

    def test_unknown_executor_rejected(self, engine):
        with pytest.raises(ValueError, match="executor"):
            engine.sweep(
                DesignSpec.grid(PAPER_ORGS[:1], REQUIREMENTS[:1]),
                workers=2,
                executor="fiber",
            )

    def test_accepts_any_iterable(self, engine):
        reports = engine.sweep(
            iter(DesignSpec.grid(PAPER_ORGS[:1], REQUIREMENTS[:1]))
        )
        assert len(reports) == 1
