import math
from fractions import Fraction

import pytest

from repro.core.latency import (
    collision_count,
    cycles_to_reach,
    detection_quantile,
    escape_probability,
    expected_detection_cycles,
    pndc,
    required_a_for,
    worst_escape_over_blocks,
    worst_escape_probability,
    worst_pndc,
)


class TestCollisionCount:
    def test_direct_enumeration_agreement(self):
        for i in (1, 2, 3, 4, 5, 6):
            for a in (3, 5, 7, 9, 11):
                for m1 in range(min(1 << i, a + 2)):
                    expected = sum(
                        1 for x in range(1 << i) if x % a == m1 % a
                    )
                    assert collision_count(i, a, m1) == expected

    def test_worst_case_is_ceil(self):
        for i in (3, 4, 5, 6, 7):
            for a in (3, 5, 9, 11):
                worst = max(
                    collision_count(i, a, m1) for m1 in range(1 << i)
                )
                assert worst == math.ceil((1 << i) / a)

    def test_gcd_collapses_modulus(self):
        # §III.2: gcd(2^j, a) = f shrinks the effective modulus to a/f.
        assert collision_count(4, 6, 0, modulus_gcd=2) == collision_count(
            4, 3, 0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_count(-1, 3, 0)
        with pytest.raises(ValueError):
            collision_count(3, 0, 0)
        with pytest.raises(ValueError):
            collision_count(3, 9, 0, modulus_gcd=2)  # 2 does not divide 9


class TestEscapeProbability:
    def test_paper_worked_example(self):
        # c=10, Pndc=1e-9: a=9 gives escape 2/16 = 1/8 at i=4.
        assert worst_escape_probability(4, 9) == Fraction(1, 8)
        assert float(pndc(4, 9, 10)) == pytest.approx(2.0 ** -30)

    def test_small_block_escape_is_nonexcitation(self):
        # 2^i <= a: only x = m1 collides.
        assert escape_probability(3, 9) == Fraction(1, 8)
        assert escape_probability(2, 9) == Fraction(1, 4)

    def test_specific_m1(self):
        # i=4, a=9: residue 0 appears for x in {0, 9} -> 2/16;
        # residue 8 appears only for x=8 -> 1/16.
        assert escape_probability(4, 9, m1=0) == Fraction(2, 16)
        assert escape_probability(4, 9, m1=8) == Fraction(1, 16)

    def test_worst_over_blocks_supremum(self):
        # a=9: widths 4.. give 2/16, 4/32, 8/64... all 1/8.
        assert worst_escape_over_blocks(9, 10) == Fraction(1, 8)
        # a=5: width 3 gives 2/8 = 1/4.
        assert worst_escape_over_blocks(5, 10) == Fraction(1, 4)

    def test_worst_over_blocks_tiny_decoder(self):
        # no width exceeds a: only the non-excitation term remains.
        assert worst_escape_over_blocks(9, 3) == Fraction(1, 8)

    def test_worst_escape_non_increasing_in_a(self):
        previous = Fraction(1)
        for a in range(1, 400, 2):
            current = worst_escape_over_blocks(a, 40)
            assert current <= previous
            previous = current

    def test_validation(self):
        with pytest.raises(ValueError):
            pndc(3, 9, 0)
        with pytest.raises(ValueError):
            worst_escape_over_blocks(9, 0)


class TestRequiredA:
    def test_paper_worked_example(self):
        assert required_a_for(10, 1e-9) == 9

    def test_table1_c20_needs_a5(self):
        # The exact bound: a=3 fails (escape 1/2 at i=2), a=5 passes.
        assert required_a_for(20, 1e-9) == 5

    def test_table1_c2(self):
        assert required_a_for(2, 1e-9) == 32769

    def test_result_is_minimal_odd(self):
        for c, target in [(10, 1e-9), (5, 1e-9), (20, 1e-9), (10, 1e-5)]:
            a = required_a_for(c, target)
            assert a % 2 == 1
            assert float(worst_escape_over_blocks(a, 64)) ** c <= target
            if a > 1:
                prev = a - 2
                assert (
                    float(worst_escape_over_blocks(prev, 64)) ** c > target
                )

    def test_validation(self):
        with pytest.raises(ValueError):
            required_a_for(10, 0.0)
        with pytest.raises(ValueError):
            required_a_for(10, 1.0)


class TestDerivedQuantities:
    def test_worst_pndc(self):
        assert worst_pndc(9, 10, 64) == Fraction(1, 8) ** 10

    def test_cycles_to_reach_inverts_pndc(self):
        c = cycles_to_reach(9, 1e-9)
        assert float(worst_escape_over_blocks(9, 64)) ** c <= 1e-9
        assert float(worst_escape_over_blocks(9, 64)) ** (c - 1) > 1e-9

    def test_expected_detection_cycles(self):
        assert expected_detection_cycles(Fraction(0)) == 1.0
        assert expected_detection_cycles(Fraction(1, 2)) == 2.0
        assert expected_detection_cycles(Fraction(1)) == math.inf

    def test_detection_quantile(self):
        assert detection_quantile(Fraction(1, 8), 0.999) == 4
        assert detection_quantile(Fraction(0), 0.999) == 1
        with pytest.raises(ValueError):
            detection_quantile(Fraction(1), 0.9)
        with pytest.raises(ValueError):
            detection_quantile(Fraction(1, 2), 1.5)
