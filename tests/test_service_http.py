"""The wire layer: Router dispatch/error mapping and the stdlib HTTP
server + ServiceClient over a real socket.

`InProcessClient` proves the API; these tests prove the transport —
status codes, content types, malformed bodies, and the acceptance
scenario of two `ServiceClient`s racing suites against one live
server."""

import json
import threading

import pytest

from repro.service import (
    CampaignService,
    Router,
    ServiceClient,
    ServiceError,
    serving,
)

from test_suite import tiny_suite


@pytest.fixture
def service(tmp_path):
    with CampaignService(str(tmp_path / "store"), workers=2) as svc:
        yield svc


class TestRouter:
    """Edge paths exercised without a socket — same code the server
    runs."""

    def route(self, service, method, path, body=None):
        status, content_type, payload = Router(service).route(
            method, path, body
        )
        return status, content_type, payload

    def test_unknown_route_is_404(self, service):
        status, _, body = self.route(service, "GET", "/nope")
        assert status == 404
        assert "no route" in json.loads(body)["error"]

    def test_malformed_body_is_400(self, service):
        status, _, body = self.route(service, "POST", "/suites", b"{nope")
        assert status == 400
        assert "error" in json.loads(body)

    def test_empty_and_non_object_bodies_are_400(self, service):
        assert self.route(service, "POST", "/suites")[0] == 400
        assert self.route(service, "POST", "/suites", b"[1]")[0] == 400

    def test_submission_without_suite_is_400(self, service):
        status, _, body = self.route(
            service, "POST", "/suites", json.dumps({"options": {}}).encode()
        )
        assert status == 400
        assert "suite" in json.loads(body)["error"]

    def test_unknown_job_is_404(self, service):
        assert self.route(service, "GET", "/jobs/nope")[0] == 404

    def test_unknown_result_key_is_404(self, service):
        assert self.route(service, "GET", "/results/ffff")[0] == 404

    def test_query_strings_are_stripped(self, service):
        status, _, _ = self.route(service, "GET", "/healthz?probe=1")
        assert status == 200


class TestOverTheWire:
    def test_health_and_submit_over_a_real_socket(self, service):
        with serving(service) as url:
            assert url.startswith("http://127.0.0.1:")
            client = ServiceClient(url)
            assert client.health()["status"] == "ok"

            job = client.submit(tiny_suite())
            job = client.wait(job["job_id"], timeout=120)
            assert job["state"] == "done"
            assert len(job["result_keys"]) == 3
            assert [j["job_id"] for j in client.jobs()] == [job["job_id"]]

            key = job["result_keys"][0]
            assert client.result(key)["kind"] == "campaign"
            lines = client.records(key).splitlines()
            assert lines and all(json.loads(line) for line in lines)

    def test_records_content_type_is_jsonl(self, service):
        with serving(service) as url:
            client = ServiceClient(url)
            job = client.wait(
                client.submit(tiny_suite())["job_id"], timeout=120
            )
            status, content_type, _ = client._request(
                "GET", f"/results/{job['result_keys'][0]}/records"
            )
            assert status == 200
            assert content_type == "application/x-ndjson"

    def test_error_statuses_cross_the_wire(self, service):
        with serving(service) as url:
            client = ServiceClient(url)
            with pytest.raises(ServiceError) as err:
                client.job("nope")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.submit(tiny_suite(), engine="quantum")
            assert err.value.status == 400

            job = client.wait(
                client.submit(tiny_suite())["job_id"], timeout=120
            )
            with pytest.raises(ServiceError) as err:
                client.cancel(job["job_id"])
            assert err.value.status == 409

    def test_unreachable_server_raises_status_zero(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 0

    def test_two_service_clients_racing_one_server(self, service):
        # ISSUE acceptance: two ServiceClients submitting concurrently
        # against one server + one store both complete with verified
        # results
        with serving(service) as url:
            suites = [tiny_suite(cycles=64), tiny_suite(cycles=96)]
            done, errors = {}, []

            def run(tag, suite):
                try:
                    client = ServiceClient(url)
                    job = client.submit(suite)
                    done[tag] = client.wait(job["job_id"], timeout=120)
                except Exception as exc:
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i, suite))
                for i, suite in enumerate(suites)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert {j["state"] for j in done.values()} == {"done"}
            checker = ServiceClient(url)
            for job in done.values():
                for key in job["result_keys"]:
                    assert checker.result(key)["sha256"]

    def test_job_table_survives_server_restart_over_http(self, tmp_path):
        root = str(tmp_path / "store")
        with CampaignService(root) as first:
            with serving(first) as url:
                client = ServiceClient(url)
                job = client.wait(
                    client.submit(tiny_suite())["job_id"], timeout=120
                )
                assert job["state"] == "done"

        with CampaignService(root) as second:
            with serving(second) as url:
                client = ServiceClient(url)
                survivor = client.job(job["job_id"])
                assert survivor["state"] == "done"
                assert client.records(job["result_keys"][0])
