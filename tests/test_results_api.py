"""The 1.4 results API: ResultSet round-trips, algebra, statistics.

Covers the acceptance property of the results redesign — ResultSet ->
JSONL -> ResultSet is bit-identical (records, provenance, summary) for
decoder, scheme, transient and march campaigns — plus the shared
statistics edge cases on both containers (CampaignResult stays a thin
view over the same machinery).
"""

import io
import json
import math

import pytest

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.faultsim.injector import decoder_fault_list, sample_faults
from repro.faultsim.results import CampaignResult, FaultRecord
from repro.memory.faults import CellStuckAt
from repro.memory.march import MARCH_C_MINUS
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.results import (
    Provenance,
    ResultRecord,
    ResultSet,
    ResultSetWriter,
    fault_id,
)
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import (
    CampaignEngine,
    MemoryScenario,
    TransientScenario,
    Workload,
)


def checked_decoder(n_bits=4):
    return CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), n_bits))


def run_decoder_campaign(engine=None):
    engine = engine or CampaignEngine()
    checked = checked_decoder()
    checker = MOutOfNChecker(3, 5, structural=False)
    return engine.decoder(
        checked,
        checker,
        decoder_fault_list(checked),
        Workload.uniform(16, 120, seed=5),
    )


def run_scheme_campaign(engine=None):
    engine = engine or CampaignEngine()
    org = MemoryOrganization(64, 8, column_mux=4)
    memory = SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))
    scenarios = sample_faults(
        decoder_fault_list(memory.row), 8, seed=2
    ) + [CellStuckAt(5, 1, 1)]
    return engine.scheme(
        memory, Workload.uniform(1 << org.n, 150, seed=3), scenarios
    )


def run_transient_campaign(engine=None):
    engine = engine or CampaignEngine()
    org = MemoryOrganization(32, 8, column_mux=4)
    scenarios = [
        TransientScenario.single(a, bit=a % 9, cycle=(a * 7) % 90)
        for a in range(0, 32, 2)
    ]
    return engine.transient(
        BehavioralRAM(org),
        scenarios,
        Workload.scrubbed(32, 400, scrub_period=4, seed=1),
    )


def run_march_campaign(engine=None):
    engine = engine or CampaignEngine()
    org = MemoryOrganization(16, 4, column_mux=4)
    scenarios = [
        MemoryScenario(faults=(CellStuckAt(a, a % 4, a % 2),))
        for a in range(16)
    ]
    return engine.march(BehavioralRAM(org), scenarios, MARCH_C_MINUS)


CAMPAIGNS = {
    "decoder": run_decoder_campaign,
    "scheme": run_scheme_campaign,
    "transient": run_transient_campaign,
    "march": run_march_campaign,
}


class TestRoundTrip:
    """ResultSet -> JSONL -> ResultSet is bit-identical for every
    campaign family (the acceptance property)."""

    @pytest.mark.parametrize("family", sorted(CAMPAIGNS))
    def test_jsonl_round_trip_is_bit_identical(self, family):
        result = CAMPAIGNS[family]()
        artifact = result.to_result_set()
        assert artifact.provenance is not None
        assert artifact.provenance.campaign == family

        text = artifact.to_jsonl()
        restored = ResultSet.from_jsonl(text)
        assert restored.records == artifact.records
        assert restored.provenances == artifact.provenances
        assert restored.summary() == artifact.summary()
        assert restored == artifact
        # the serialised form itself is a fixed point
        assert restored.to_jsonl() == text

    def test_round_trip_through_file_and_stream(self, tmp_path):
        artifact = run_decoder_campaign().to_result_set()
        path = tmp_path / "campaign.jsonl"
        artifact.write_jsonl(path)
        assert ResultSet.read_jsonl(path) == artifact
        buffer = io.StringIO()
        artifact.write_jsonl(buffer)
        assert ResultSet.from_jsonl(buffer.getvalue()) == artifact

    def test_streaming_writer_matches_batch_serialisation(self, tmp_path):
        artifact = run_transient_campaign().to_result_set()
        path = tmp_path / "streamed.jsonl"
        with ResultSetWriter(
            path, artifact.provenances, artifact.cycles_simulated
        ) as writer:
            for record in artifact.records:
                writer.add(record)
        assert writer.count == artifact.total
        assert ResultSet.read_jsonl(path) == artifact

    def test_rejects_foreign_streams(self):
        with pytest.raises(ValueError, match="not a repro-results"):
            ResultSet.from_jsonl('{"hello": 1}\n')
        with pytest.raises(ValueError, match="empty"):
            ResultSet.from_jsonl("")

    def test_campaign_view_round_trip(self):
        result = run_march_campaign()
        artifact = result.to_result_set()
        view = artifact.to_campaign()
        assert isinstance(view, CampaignResult)
        assert [(r.kind, r.first_detection) for r in view.records] == [
            (r.kind, r.first_detection) for r in result.records
        ]
        # fault identity is preserved through its printable form
        assert [str(r.fault) for r in view.records] == [
            fault_id(r.fault) for r in result.records
        ]
        assert view.summary() == artifact.summary()


class TestProvenance:
    def test_every_record_knows_its_provenance(self):
        artifact = run_transient_campaign().to_result_set()
        for record in artifact.records:
            provenance = artifact.record_provenance(record)
            assert provenance.campaign == "transient"
            assert provenance.engine == "packed"
            assert provenance.repro_version
            assert provenance.workload.startswith("scrubbed")
            assert provenance.workload_spec["kind"] == "scrubbed"

    def test_provenance_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown Provenance"):
            Provenance.from_dict({"campaign": "x", "bogus": 1})

    def test_spec_stamped_through_design_flow(self):
        from repro import DesignEngine, DesignSpec

        spec = DesignSpec(words=256, bits=8, c=10, pndc=1e-9)
        engine = DesignEngine()
        memory = engine.build(spec)
        driver = CampaignEngine()
        result = driver.decoder(
            memory.row,
            memory.row_checker,
            decoder_fault_list(memory.row),
            Workload.uniform(1 << spec.organization.p, 64, seed=7),
            spec=spec.to_dict(),
        )
        assert result.provenance.spec["words"] == 256


class TestAlgebra:
    def make(self, faults, kind="sa1", provenance=None):
        provenance = provenance or Provenance(
            campaign="decoder", engine="packed", repro_version="1.4.0"
        )
        return ResultSet(
            records=[
                ResultRecord(fault=f, kind=kind, first_detection=d)
                for f, d in faults
            ],
            provenances=(provenance,),
            cycles_simulated=100,
        )

    def test_merge_preserves_lineage_and_dedupes_provenance(self):
        shared = Provenance(campaign="decoder", engine="packed")
        other = Provenance(campaign="decoder", engine="serial")
        a = self.make([("f1", 1)], provenance=shared)
        b = self.make([("f2", 2)], provenance=shared)
        c = self.make([("f3", None)], provenance=other)
        merged = a.merge(b, c)
        assert merged.total == 3
        assert len(merged.provenances) == 2
        assert merged.record_provenance(merged.records[0]) is shared
        assert merged.record_provenance(merged.records[2]) == other

    def test_filter_by_kind_detected_and_predicate(self):
        artifact = run_decoder_campaign().to_result_set()
        sa1 = artifact.filter(kind="sa1")
        assert sa1.total > 0
        assert all(r.kind == "sa1" for r in sa1.records)
        undetected = artifact.filter(detected=False)
        assert undetected.total == artifact.total - artifact.detected
        early = artifact.filter(
            lambda r: r.detected and r.first_detection < 5
        )
        assert all(r.first_detection < 5 for r in early.records)
        # filters share provenance with the parent
        assert sa1.provenances == artifact.provenances

    def test_group_by_field_and_callable(self):
        artifact = run_decoder_campaign().to_result_set()
        by_kind = artifact.group_by("kind")
        assert sum(g.total for g in by_kind.values()) == artifact.total
        by_parity = artifact.group_by(
            lambda r: (r.first_detection or 0) % 2
        )
        assert set(by_parity) <= {0, 1}

    def test_diff_identical_runs(self):
        left = run_march_campaign().to_result_set()
        right = run_march_campaign().to_result_set()
        diff = left.diff(right)
        assert diff.identical
        assert diff.matched == left.total
        assert diff.coverage_delta == 0.0

    def test_diff_reports_outcome_changes(self):
        left = self.make([("f1", 3), ("f2", None), ("f3", 5), ("gone", 1)])
        right = self.make([("f1", 7), ("f2", 2), ("f3", None), ("new", 0)])
        diff = left.diff(right)
        assert not diff.identical
        assert diff.only_left == ["gone"]
        assert diff.only_right == ["new"]
        assert diff.newly_detected == ["f2"]
        assert diff.newly_undetected == ["f3"]
        assert diff.detection_moved == [("f1", 3, 7)]
        assert json.loads(json.dumps(diff.to_dict()))["identical"] is False
        assert "newly detected" in diff.render()

    def test_diff_matches_duplicate_faults_by_occurrence(self):
        left = self.make([("dup", 1), ("dup", 2)])
        right = self.make([("dup", 1), ("dup", 9)])
        diff = left.diff(right)
        assert diff.matched == 2
        assert not diff.identical
        assert diff.detection_moved == [("dup", 2, 9)]
        assert left.diff(self.make([("dup", 1), ("dup", 2)])).identical

    def test_diff_cross_engine_is_identical(self):
        packed = run_transient_campaign(
            CampaignEngine(engine="packed")
        ).to_result_set()
        serial = run_transient_campaign(
            CampaignEngine(engine="serial")
        ).to_result_set()
        assert packed.diff(serial).identical


@pytest.mark.parametrize(
    "container",
    ["campaign", "resultset"],
)
class TestStatisticsEdgeCases:
    """Satellite coverage: latency_histogram custom bins and
    escape_fraction_at edge cases, identical on both containers."""

    def build(self, container, outcomes):
        if container == "campaign":
            result = CampaignResult(cycles_simulated=50)
            for index, detection in enumerate(outcomes):
                result.add(
                    FaultRecord(f"f{index}", "sa1", detection)
                )
            return result
        return ResultSet(
            records=[
                ResultRecord(f"f{index}", "sa1", detection)
                for index, detection in enumerate(outcomes)
            ],
            cycles_simulated=50,
        )

    def test_empty_records(self, container):
        empty = self.build(container, [])
        assert empty.coverage == 1.0
        assert empty.escape_fraction_at(10) == 0.0
        assert empty.max_detection_cycle() is None
        assert math.isnan(empty.mean_detection_cycle())
        hist = empty.latency_histogram([2, 4])
        assert hist == {"[0,2)": 0, "[2,4)": 0, "[4,inf)": 0,
                        "undetected": 0}

    def test_all_undetected(self, container):
        result = self.build(container, [None, None, None])
        assert result.coverage == 0.0
        assert result.escape_fraction_at(1) == 1.0
        assert result.escape_fraction_at(10 ** 9) == 1.0
        hist = result.latency_histogram([5])
        assert hist["undetected"] == 3
        assert hist["[0,5)"] == 0 and hist["[5,inf)"] == 0

    def test_custom_bins_partition_everything(self, container):
        result = self.build(container, [0, 1, 2, 6, 30, None])
        hist = result.latency_histogram([3, 7])
        assert hist == {
            "[0,3)": 3, "[3,7)": 1, "[7,inf)": 1, "undetected": 1,
        }
        assert sum(hist.values()) == result.total
        # unsorted bins are sorted, single-bin works
        assert result.latency_histogram([7, 3]) == hist
        single = result.latency_histogram([1])
        assert single == {"[0,1)": 1, "[1,inf)": 4, "undetected": 1}

    def test_escape_fraction_boundaries(self, container):
        result = self.build(container, [0, 7, None])
        # detection at cycle 7 counts only for c > 7 (cycle < c)
        assert result.escape_fraction_at(7) == pytest.approx(2 / 3)
        assert result.escape_fraction_at(8) == pytest.approx(1 / 3)
        assert result.escape_fraction_at(0) == 1.0


class TestSummaryJsonSafety:
    """Satellite: summary() must be strict-JSON (no NaN) even with zero
    detections."""

    def test_zero_detection_summary_is_null_not_nan(self):
        result = CampaignResult(cycles_simulated=10)
        result.add(FaultRecord("f", "sa1", None))
        summary = result.summary()
        assert summary["mean_detection_cycle"] is None
        # strict parse: json.loads with NaN forbidden must accept it
        text = json.dumps(summary)
        parsed = json.loads(
            text, parse_constant=lambda c: pytest.fail(f"non-JSON {c}")
        )
        assert parsed["mean_detection_cycle"] is None
        assert "NaN" not in text

    def test_resultset_summary_matches(self):
        result = CampaignResult(cycles_simulated=10)
        result.add(FaultRecord("f", "sa1", None))
        assert result.to_result_set().summary() == result.summary()

    def test_mean_detection_cycle_stays_nan_for_api_compat(self):
        result = CampaignResult()
        assert math.isnan(result.mean_detection_cycle())
