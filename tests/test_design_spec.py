"""DesignSpec: validation, immutability, JSON round trips, grids."""

import dataclasses

import pytest

from repro.core.selection import SelectionPolicy
from repro.design.spec import DesignSpec
from repro.memory.organization import PAPER_ORGS


class TestValidation:
    def test_defaults_are_valid(self):
        spec = DesignSpec(words=2048, bits=16)
        assert spec.c == 10
        assert spec.policy is SelectionPolicy.EXACT
        assert spec.organization.label() == "16x2K"

    def test_policy_string_coerced_to_enum(self):
        spec = DesignSpec(words=2048, bits=16, policy="approximate")
        assert spec.policy is SelectionPolicy.APPROXIMATE

    def test_frozen(self):
        spec = DesignSpec(words=2048, bits=16)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.words = 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"words": 1000, "bits": 16},          # not a power of two
            {"words": 2048, "bits": 0},           # empty word
            {"words": 2048, "bits": 16, "c": 0},  # no latency budget
            {"words": 2048, "bits": 16, "pndc": 0.0},
            {"words": 2048, "bits": 16, "pndc": 1.5},
            {"words": 2048, "bits": 16, "checker_style": "quantum"},
            {"words": 2048, "bits": 16, "decoder_style": "banyan"},
            {"words": 2048, "bits": 16, "row_code": "not-a-code"},
            {"words": 2048, "bits": 16, "policy": "vibes"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            DesignSpec(**kwargs)

    def test_structural_checkers_flag(self):
        assert not DesignSpec(
            words=64, bits=8, column_mux=4
        ).structural_checkers
        assert DesignSpec(
            words=64, bits=8, column_mux=4, checker_style="structural"
        ).structural_checkers


class TestSerialization:
    def test_json_round_trip(self):
        spec = DesignSpec(
            words=4096, bits=32, c=20, pndc=1e-15,
            policy="approximate", column_zero_latency=False,
            checker_style="structural", decoder_style="flat",
            row_code="3-out-of-5",
        )
        assert DesignSpec.from_json(spec.to_json()) == spec

    def test_to_dict_uses_policy_value(self):
        data = DesignSpec(words=2048, bits=16).to_dict()
        assert data["policy"] == "exact"

    def test_unknown_fields_rejected(self):
        data = DesignSpec(words=2048, bits=16).to_dict()
        data["latency_budget"] = 3
        with pytest.raises(ValueError, match="unknown DesignSpec fields"):
            DesignSpec.from_dict(data)

    def test_replace_revalidates(self):
        spec = DesignSpec(words=2048, bits=16)
        assert spec.replace(c=40).c == 40
        with pytest.raises(ValueError):
            spec.replace(c=-1)


class TestGrid:
    def test_grid_is_cross_product(self):
        specs = DesignSpec.grid(PAPER_ORGS, [(2, 1e-9), (10, 1e-9)])
        assert len(specs) == 6
        assert {s.organization.label() for s in specs} == {
            "16x2K", "32x4K", "64x8K"
        }
        assert {s.c for s in specs} == {2, 10}

    def test_grid_forwards_common_kwargs(self):
        specs = DesignSpec.grid(
            PAPER_ORGS[:1], [(10, 1e-9)], policy="approximate"
        )
        assert specs[0].policy is SelectionPolicy.APPROXIMATE

    def test_for_organization(self):
        spec = DesignSpec.for_organization(PAPER_ORGS[1], c=5)
        assert (spec.words, spec.bits, spec.c) == (4096, 32, 5)
