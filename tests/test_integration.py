"""Cross-module integration tests: the full paper flow, end to end."""


from repro import (
    MemoryOrganization,
    SelectionPolicy,
    SelfCheckingMemory,
    StdCellAreaModel,
    select_code,
)
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.core.mapping import mapping_for_code
from repro.decoder.analysis import analyze_decoder
from repro.faultsim.campaign import decoder_campaign, scheme_campaign
from repro.faultsim.injector import (
    decoder_fault_list,
    sample_faults,
)
from repro.scenarios import Workload
from repro.memory.faults import CellStuckAt
from repro.rom.nor_matrix import CheckedDecoder


class TestRequirementToSilicon:
    """c/Pndc requirement -> code -> scheme -> verified behaviour."""

    def test_full_flow_meets_latency_spec_empirically(self):
        c_req, pndc_req = 10, 1e-9
        selection = select_code(c_req, pndc_req)
        mapping = mapping_for_code(selection.code, 6)
        checked = CheckedDecoder(mapping)
        checker = MOutOfNChecker(
            selection.code.m, selection.code.n, structural=False
        )
        faults = decoder_fault_list(checked)
        addresses = Workload.uniform(64, 800, seed=13)
        result = decoder_campaign(
            checked, checker, faults, addresses, attach_analytic=False
        )
        # every fault detected well within the horizon
        assert result.coverage == 1.0
        # and the *measured latency from first error* respects the model:
        # across all sa1 faults, detection happens within a small multiple
        # of the analytic quantile for Pndc=1e-9 at a=9
        from repro.core.latency import detection_quantile
        from fractions import Fraction

        bound = detection_quantile(Fraction(1, 8), 1 - 1e-6)
        sa1 = [r for r in result.records if r.kind == "sa1"]
        latencies = [r.latency for r in sa1 if r.latency is not None]
        assert latencies and max(latencies) <= 6 * bound

    def test_analytic_and_simulated_worst_escape_agree(self):
        selection = select_code(10, 1e-9)
        mapping = mapping_for_code(selection.code, 5)
        checked = CheckedDecoder(mapping)
        analysis = analyze_decoder(checked.tree, mapping)
        # the analytic worst per-cycle escape over sa1 sites is bounded by
        # the selection's promised worst case once non-excitation-only
        # sites (2^i <= a, zero latency) are excluded
        risky = [
            s
            for s in analysis.sa1_sites
            if not s.zero_latency
        ]
        for site in risky:
            assert site.escape_per_cycle <= selection.achieved_escape

    def test_structural_checkers_in_the_loop(self):
        org = MemoryOrganization(64, 8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9), structural_checkers=True
        )
        memory.write(5, (1, 0, 1, 0, 1, 0, 1, 0))
        result = memory.read(5)
        assert not result.error_detected
        memory.inject_memory_fault(CellStuckAt(5, 2, 0))
        assert memory.read(5).error_detected


class TestPolicyConsistency:
    def test_exact_never_wider_than_necessary_vs_approx(self):
        # exact may be wider than approx only where approx misses spec
        for c in (2, 5, 10, 20, 40):
            for pndc in (1e-3, 1e-9, 1e-15):
                exact = select_code(c, pndc, policy=SelectionPolicy.EXACT)
                approx = select_code(
                    c, pndc, policy=SelectionPolicy.APPROXIMATE
                )
                if exact.rom_width > approx.rom_width:
                    assert not approx.meets_target


class TestAreaLatencySurface:
    def test_every_table_point_runs_through_the_real_scheme(self):
        # build one small scheme per selected code to prove the codes are
        # constructible end to end (not just on paper)
        model = StdCellAreaModel()
        org = MemoryOrganization(256, 8, column_mux=4)
        for c in (5, 10, 20, 40):
            selection = select_code(c, 1e-9)
            memory = SelfCheckingMemory.from_selection(org, selection)
            memory.write(1, (1,) * 8)
            assert not memory.read(1).error_detected
            overhead = model.overhead_percent(org, selection.rom_width)
            assert overhead > 0

    def test_wider_code_never_cheaper(self):
        model = StdCellAreaModel()
        org = MemoryOrganization(2048, 16, column_mux=8)
        overheads = [model.overhead_percent(org, r) for r in range(2, 19)]
        assert overheads == sorted(overheads)


class TestEndToEndCampaign:
    def test_scheme_campaign_detects_most_faults_quickly(self):
        org = MemoryOrganization(64, 8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9)
        )
        row_faults = sample_faults(
            decoder_fault_list(memory.row), 16, seed=21
        )
        addresses = Workload.uniform(1 << org.n, 500, seed=22)
        result = scheme_campaign(memory, addresses, row_faults=row_faults)
        assert result.coverage == 1.0
        # most detections happen within tens of cycles
        assert result.mean_detection_cycle() < 100
