"""`repro.analytics.report` / `html` — the combined analytics
artifact: JSON shape, text render, and the self-contained HTML page."""

import pytest

from repro.analytics.history import append_entry
from repro.analytics.html import render_html, sparkline
from repro.analytics.model import Regression, TrendGroup
from repro.analytics.report import build_report, run_regress


def write_history(tmp_path, values, metric="vector_speedup"):
    path = tmp_path / "BENCH_campaigns.history.jsonl"
    for index, value in enumerate(values):
        append_entry(
            str(path),
            {
                "bench": "campaign_engines",
                "version": f"1.{index}.0",
                "benches": [{"name": "decoder_n6_c512", metric: value}],
            },
            timestamp=float(index),
            sha=f"sha{index}",
        )
    return str(path)


class TestRunRegress:
    def test_missing_glob_is_a_one_line_error(self, tmp_path):
        with pytest.raises(ValueError, match="no history file matches"):
            run_regress(str(tmp_path / "BENCH_*.history.jsonl"))

    def test_clean_run_over_real_files(self, tmp_path):
        path = write_history(tmp_path, [100.0, 101.0, 99.0])
        report = run_regress(path)
        assert report.ok and report.files == [path]
        assert report.checked == 1

    def test_selection_flows_through(self, tmp_path):
        path = write_history(tmp_path, [100.0, 101.0, 99.0])
        assert run_regress(path, only=["decoder_n6_c512"]).checked == 1
        assert run_regress(path, skip=["decoder_n6_c512"]).checked == 0
        with pytest.raises(ValueError, match="unknown bench"):
            run_regress(path, only=["nope"])


class TestBuildReport:
    def test_empty_glob_yields_an_empty_valid_report(self, tmp_path):
        report = build_report(str(tmp_path / "BENCH_*.jsonl"))
        assert report.series == []
        assert report.files == []
        assert report.regress.ok
        assert report.repro_version
        assert report.generated_at > 0
        data = report.to_dict()
        assert data["sources"] == {
            "history_files": [],
            "store": None,
            "service": None,
        }
        assert "trend analytics — 0 history file(s)" in report.render()
        html = report.to_html()
        assert "No history series loaded" in html
        assert "No result store queried" in html

    def test_report_over_history_and_store_path(self, tmp_path):
        path = write_history(tmp_path, [100.0, 101.0, 40.0])
        store = tmp_path / "store"
        store.mkdir()
        report = build_report(path, store=str(store))
        assert report.store_root == str(store)
        assert [s.name for s in report.series] == [
            "decoder_n6_c512.vector_speedup"
        ]
        assert not report.regress.ok
        data = report.to_dict()
        assert data["regress"]["hard"] == 1
        assert data["series"][0]["points"][0]["git_sha"] == "sha0"
        assert data["store_trends"] == []

    def test_render_mentions_store_groups(self, tmp_path):
        report = build_report(str(tmp_path / "none_*.jsonl"))
        report.store_groups = [
            TrendGroup(
                key={"campaign": "m"},
                points=[{"key": "k", "coverage": 1.0}],
            ),
            TrendGroup(key={"campaign": "n"}, points=[{"key": "k2"}]),
        ]
        text = report.render()
        assert "store m: 1 artifact(s), coverage 1 -> 1" in text
        assert "store n: 1 artifact(s), no coverage points" in text


class TestHtml:
    def test_page_is_self_contained(self, tmp_path):
        path = write_history(tmp_path, [100.0, 101.0, 40.0])
        html = build_report(path).to_html()
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html and "svg" in html
        assert "decoder_n6_c512" in html
        assert 'class="hard"' in html
        # no external fetches of any kind
        assert "src=" not in html and "href=" not in html
        assert "<script" not in html

    def test_sections_render_groups_and_warnings(self):
        warn = Regression(
            bench="b",
            metric="cold_s",
            severity="warn",
            polarity="lower",
            baseline=1.0,
            observed=2.0,
            change_pct=100.0,
            tolerance_pct=50.0,
            window_used=2,
        )
        group = TrendGroup(
            key={"campaign": "march", "engine": "packed"},
            points=[
                {
                    "key": "k" * 20,
                    "coverage": 1.0,
                    "mean_detection_cycle": 2.0,
                    "created_at": 1.0,
                    "repro_version": "1.9.0",
                }
            ],
        )
        html = render_html([], [warn], [group], subtitle="sub")
        assert 'class="warn"' in html
        assert "march / packed" in html
        assert "mean_detection_cycle" in html
        assert "sub" in html
        assert "kkkkkkkkkkkk…" in html

    def test_sparkline_edge_cases(self):
        assert sparkline([]) == ""
        single = sparkline([1.0])
        assert "<svg" in single and "circle" in single
        flat = sparkline([2.0, 2.0, 2.0])
        assert "polyline" in flat  # zero range must not divide by 0
        assert sparkline([1.0, 2.0, 3.0]).count(",") >= 3
