import pytest

from repro.circuits.faults import NetStuckAt
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.memory.faults import CellStuckAt, DataLineStuckAt
from repro.memory.organization import MemoryOrganization


@pytest.fixture(scope="module")
def memory():
    org = MemoryOrganization(words=64, bits=8, column_mux=4)
    return SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))


class TestConstruction:
    def test_from_requirements(self):
        org = MemoryOrganization(words=64, bits=8, column_mux=4)
        memory = SelfCheckingMemory.from_requirements(org, c=10, pndc=1e-9)
        assert memory.row.mapping.code.name == "3-out-of-5"
        assert memory.row.n == org.p
        assert memory.column.n == org.s

    def test_mapping_width_mismatch_rejected(self):
        org = MemoryOrganization(words=64, bits=8, column_mux=4)
        wrong = mapping_for_code(MOutOfNCode(3, 5), org.p + 1)
        good = mapping_for_code(MOutOfNCode(3, 5), org.s)
        with pytest.raises(ValueError):
            SelfCheckingMemory(org, wrong, good)

    def test_area_overhead_positive(self, memory):
        assert 0 < memory.area_overhead_percent() < 100


class TestFaultFreeOperation:
    def test_write_read_round_trip(self, memory):
        memory.clear_faults()
        memory.write(17, (1, 1, 0, 1, 0, 0, 1, 0))
        result = memory.read(17)
        assert result.data == (1, 1, 0, 1, 0, 0, 1, 0)
        assert not result.error_detected

    def test_no_false_alarms_over_full_sweep(self, memory):
        memory.clear_faults()
        for address in range(64):
            memory.write(address, tuple((address >> b) & 1 for b in range(8)))
        for address in range(64):
            result = memory.read(address)
            assert not result.error_detected, address
            assert result.data == tuple(
                (address >> b) & 1 for b in range(8)
            )


class TestDetection:
    def test_cell_fault_flagged_by_parity(self, memory):
        memory.clear_faults()
        memory.write(9, (0,) * 8)
        memory.inject_memory_fault(CellStuckAt(9, 4, 1))
        result = memory.read(9)
        assert not result.parity_ok
        assert result.error_detected
        memory.clear_faults()

    def test_data_line_fault_flagged(self, memory):
        memory.clear_faults()
        memory.write(0, (0,) * 8)
        memory.inject_memory_fault(DataLineStuckAt(2, 1))
        assert memory.read(0).error_detected
        memory.clear_faults()

    def test_row_decoder_sa0_detected_when_excited(self, memory):
        memory.clear_faults()
        line = memory.row.tree.root.output_nets[5]
        memory.inject_row_fault(NetStuckAt(line, 0))
        address = memory.organization.join_address(5, 0)
        result = memory.read(address)
        assert not result.row_ok          # all-1s out of the ROM
        assert result.error_detected
        memory.clear_faults()

    def test_row_decoder_sa0_silent_when_unexcited(self, memory):
        memory.clear_faults()
        line = memory.row.tree.root.output_nets[5]
        memory.inject_row_fault(NetStuckAt(line, 0))
        address = memory.organization.join_address(6, 0)
        assert not memory.read(address).error_detected
        memory.clear_faults()

    def test_row_decoder_sa1_detected_iff_words_differ(self, memory):
        memory.clear_faults()
        org = memory.organization
        stuck_row = 3
        line = memory.row.tree.root.output_nets[stuck_row]
        memory.inject_row_fault(NetStuckAt(line, 1))
        mapping = memory.row.mapping
        for row in range(org.rows):
            result = memory.read(org.join_address(row, 0))
            expect_detect = (
                row != stuck_row
                and mapping.index(row) != mapping.index(stuck_row)
            )
            assert result.row_ok != expect_detect, row
        memory.clear_faults()

    def test_column_decoder_fault_detected(self, memory):
        memory.clear_faults()
        line = memory.column.tree.root.output_nets[0]
        memory.inject_column_fault(NetStuckAt(line, 0))
        address = memory.organization.join_address(0, 0)
        assert not memory.read(address).column_ok
        memory.clear_faults()

    def test_merged_read_data_is_and_of_words(self, memory):
        memory.clear_faults()
        org = memory.organization
        memory.write(org.join_address(1, 0), (1, 1, 1, 1, 0, 0, 0, 0))
        memory.write(org.join_address(2, 0), (1, 0, 1, 0, 1, 0, 1, 0))
        line = memory.row.tree.root.output_nets[1]
        memory.inject_row_fault(NetStuckAt(line, 1))
        result = memory.read(org.join_address(2, 0))
        assert result.data == (1, 0, 1, 0, 0, 0, 0, 0)
        memory.clear_faults()

    def test_nothing_selected_reads_all_ones_and_flags_parity(self, memory):
        memory.clear_faults()
        # kill the whole root block: no word line can rise
        for net in memory.row.tree.root.output_nets:
            memory.inject_row_fault(NetStuckAt(net, 0))
        result = memory.read(0)
        assert result.data == (1,) * 8
        assert result.error_detected
        memory.clear_faults()


class TestReadResult:
    def test_indication_properties(self, memory):
        memory.clear_faults()
        memory.write(2, (0,) * 8)
        result = memory.read(2)
        assert result.row_ok and result.column_ok and result.parity_ok
        assert result.address == 2
