import itertools

import pytest

from repro.circuits.builders import (
    and_tree,
    literal_pair,
    or_tree,
    reduce_tree,
    xor_tree,
)
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit


def check_tree(builder, python_op, width):
    c = Circuit()
    nets = c.add_inputs([f"x{i}" for i in range(width)])
    root = builder(c, nets)
    c.mark_output(root)
    for bits in itertools.product((0, 1), repeat=width):
        expected = bits[0]
        for b in bits[1:]:
            expected = python_op(expected, b)
        assert c.evaluate(bits) == (expected,), bits


class TestReduceTrees:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 7, 8])
    def test_and_tree(self, width):
        check_tree(and_tree, lambda a, b: a & b, width)

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_or_tree(self, width):
        check_tree(or_tree, lambda a, b: a | b, width)

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_xor_tree(self, width):
        check_tree(xor_tree, lambda a, b: a ^ b, width)

    def test_single_input_passthrough_adds_no_gate(self):
        c = Circuit()
        (net,) = c.add_inputs(["x"])
        assert and_tree(c, [net]) == net
        assert c.num_gates == 0

    def test_gate_count_is_width_minus_one(self):
        c = Circuit()
        nets = c.add_inputs([f"x{i}" for i in range(9)])
        xor_tree(c, nets)
        assert c.num_gates == 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            and_tree(Circuit(), [])

    def test_non_associative_gate_rejected(self):
        c = Circuit()
        nets = c.add_inputs(["a", "b"])
        with pytest.raises(ValueError):
            reduce_tree(c, GateType.NOR, nets)


class TestLiteralPair:
    def test_complement(self):
        c = Circuit()
        a = c.add_input("a")
        direct, comp = literal_pair(c, a)
        c.mark_output(direct)
        c.mark_output(comp)
        assert c.evaluate((0,)) == (0, 1)
        assert c.evaluate((1,)) == (1, 0)
