"""The 1.5 campaign-suite orchestrator: declarative SuiteSpec matrices,
store-backed resume, fail-soft scheduling, aggregate SuiteReport."""

import dataclasses
import json

import pytest

from repro.results import ResultStore
from repro.suite import (
    CampaignCell,
    CellOutcome,
    MatrixBlock,
    SuiteReport,
    SuiteRunner,
    SuiteSpec,
    builtin_names,
    builtin_suite,
    execute_cell,
    load_suite,
)


def tiny_suite(cycles=64):
    """Two transient cells + one march cell — fast but multi-family."""
    transient = MatrixBlock(
        family="transient",
        label="t",
        targets=({"words": 16, "bits": 8, "column_mux": 4},),
        workloads=(
            {"family": "uniform", "cycles": cycles, "seed": 1},
            {"family": "scrubbed", "cycles": cycles, "seed": 1},
        ),
        scenarios={"population": "upset-stride", "stride": 4, "cycle": 4},
    )
    march = MatrixBlock(
        family="march",
        label="m",
        targets=({"words": 16, "bits": 8, "column_mux": 4},),
        workloads=({"test": "MATS+"},),
        scenarios={"population": "march-classes"},
    )
    return SuiteSpec(name="tiny", blocks=(transient, march))


class TestSuiteSpec:
    def test_json_round_trip(self):
        suite = tiny_suite()
        assert SuiteSpec.from_json(suite.to_json()) == suite

    def test_expansion_is_the_axis_product(self):
        suite = tiny_suite()
        cells = suite.cells()
        assert len(cells) == 3
        assert [cell.family for cell in cells] == [
            "transient", "transient", "march"
        ]

    def test_cell_ids_are_unique_even_for_duplicate_coordinates(self):
        block = tiny_suite().blocks[0]
        suite = SuiteSpec(name="dup", blocks=(block, block))
        ids = [cell.cell_id for cell in suite.cells()]
        assert len(set(ids)) == len(ids)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign family"):
            MatrixBlock(family="quantum", targets=({"words": 16},))

    def test_unknown_population_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown scenario population"):
            MatrixBlock(
                family="march",
                targets=({"words": 16, "bits": 8},),
                workloads=({"test": "MATS+"},),
                scenarios={"population": "nope"},
            )

    def test_unknown_policy_key_rejected(self):
        with pytest.raises(ValueError, match="unknown policy keys"):
            CampaignCell(
                cell_id="x",
                family="design",
                target={"words": 256, "bits": 8},
                policy={"colapse": False},
            )

    def test_malformed_spec_text(self):
        with pytest.raises(ValueError, match="malformed suite spec"):
            SuiteSpec.from_json("{not json")
        with pytest.raises(ValueError, match="'blocks'"):
            SuiteSpec.from_json('{"name": "x"}')


class TestBuiltins:
    def test_builtin_names(self):
        assert "paper_grid" in builtin_names()
        assert "smoke" in builtin_names()

    def test_paper_grid_shape(self):
        grid = builtin_suite("paper_grid")
        cells = grid.cells()
        # 18 Table-1 + 15 Table-2 design cells (the shared (10, 1e-9)
        # requirement is not duplicated), 3 empirical decoder
        # campaigns, 5 + 1 transient cells, 4 march cells
        assert len(cells) == 46
        by_family = {}
        for cell in cells:
            by_family[cell.family] = by_family.get(cell.family, 0) + 1
        assert by_family == {
            "design": 33, "decoder": 3, "transient": 6, "march": 4
        }
        assert len({cell.cell_id for cell in cells}) == 46

    def test_builtins_round_trip_as_spec_files(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(builtin_suite("paper_grid").to_json())
        assert load_suite(str(path)) == builtin_suite("paper_grid")

    def test_unknown_builtin(self):
        with pytest.raises(ValueError, match="unknown suite"):
            load_suite("definitely-not-a-suite")


class TestRunner:
    def test_storeless_run_simulates_everything(self):
        report = SuiteRunner().run(tiny_suite())
        assert report.simulated == 3
        assert report.hits == report.errors == 0
        assert all(cell.store_key is None for cell in report.cells)

    def test_store_run_then_resume_all_verified_hits(self, tmp_path):
        store = str(tmp_path / "store")
        first = SuiteRunner(store=store).run(tiny_suite())
        assert first.simulated == 3 and first.hits == 0
        assert all(cell.store_key for cell in first.cells)
        second = SuiteRunner(store=store).run(tiny_suite())
        assert second.hits == 3
        assert second.simulated == 0
        assert second.verified_hits == 3
        assert all(cell.status == "hit" for cell in second.cells)

    def test_resumed_payload_is_stable_modulo_execution(self, tmp_path):
        store = str(tmp_path / "store")
        first = SuiteRunner(store=store).run(tiny_suite())
        second = SuiteRunner(store=store).run(tiny_suite())
        stable_first = first.to_dict(stable_only=True)
        stable_second = second.to_dict(stable_only=True)
        assert stable_first == stable_second
        # ...while the full payloads differ exactly in execution state
        assert first.to_dict() != second.to_dict()
        assert "execution" not in stable_first
        assert all("execution" not in c for c in stable_first["cells"])

    def test_no_cache_reruns_but_refreshes(self, tmp_path):
        store = str(tmp_path / "store")
        SuiteRunner(store=store).run(tiny_suite())
        again = SuiteRunner(store=store, cache=False).run(tiny_suite())
        assert again.hits == 0 and again.simulated == 3

    def test_partial_store_resumes_only_completed_cells(self, tmp_path):
        store = str(tmp_path / "store")
        SuiteRunner(store=store).run(tiny_suite())
        # drop one artifact: exactly that cell re-simulates
        opened = ResultStore(store)
        victim = SuiteRunner(store=store).run(tiny_suite()).cells[0]
        opened.delete(victim.store_key)
        resumed = SuiteRunner(store=store).run(tiny_suite())
        assert resumed.hits == 2 and resumed.simulated == 1

    def test_fail_soft_one_bad_cell_never_kills_the_suite(self):
        bad = MatrixBlock(
            family="transient",
            label="bad",
            # parity disabled: the transient campaign refuses this RAM
            targets=({"words": 16, "bits": 8, "column_mux": 4,
                      "parity": False},),
            workloads=({"family": "uniform", "cycles": 32, "seed": 1},),
            scenarios={"population": "upset-stride", "stride": 8},
        )
        suite = SuiteSpec(
            name="mixed", blocks=(bad,) + tiny_suite().blocks
        )
        report = SuiteRunner().run(suite)
        assert report.errors == 1
        assert report.simulated == 3
        failed = report.cells[0]
        assert failed.status == "error"
        assert "parity" in failed.error
        assert "\n" not in failed.error

    def test_progress_events_stream_per_cell(self):
        events = []
        SuiteRunner(progress=events.append).run(tiny_suite())
        done = [e for e in events if e["event"] == "done"]
        starts = [e for e in events if e["event"] == "start"]
        assert len(done) == len(starts) == 3
        assert done[0]["total"] == 3
        assert {e["status"] for e in done} == {"ran"}

    def test_raising_progress_callback_never_aborts_the_suite(self):
        # regression: a broken observer used to propagate out of _emit
        # and kill the whole run — observers must be fail-soft
        def explode(event):
            raise RuntimeError("observer bug")

        runner = SuiteRunner(progress=explode)
        report = runner.run(tiny_suite())
        assert report.simulated == 3 and report.errors == 0
        # one start + one done event per serial cell, all swallowed
        assert runner.progress_errors == 6

    def test_raising_progress_callback_fail_soft_in_pooled_runs(self):
        def explode(event):
            raise RuntimeError("observer bug")

        runner = SuiteRunner(workers=2, progress=explode)
        report = runner.run(tiny_suite())
        assert report.simulated == 3 and report.errors == 0
        assert runner.progress_errors == 3  # pooled: done events only

    def test_should_stop_halts_between_cells(self):
        seen = []

        def stop_after_first():
            return len(seen) >= 1

        def observe(event):
            if event["event"] == "done":
                seen.append(event)

        runner = SuiteRunner(
            progress=observe, should_stop=stop_after_first
        )
        report = runner.run(tiny_suite())
        assert len(report.cells) == 1  # cell 0 finished, 1 and 2 never ran

    def test_should_stop_true_up_front_runs_nothing(self):
        report = SuiteRunner(should_stop=lambda: True).run(tiny_suite())
        assert report.cells == []
        pooled = SuiteRunner(workers=2, should_stop=lambda: True)
        assert pooled.run(tiny_suite()).cells == []

    def test_process_pool_matches_serial(self, tmp_path):
        serial = SuiteRunner().run(tiny_suite())
        pooled = SuiteRunner(workers=2).run(tiny_suite())
        assert pooled.to_dict(stable_only=True) == serial.to_dict(
            stable_only=True
        )

    def test_pool_resumes_from_serial_store(self, tmp_path):
        store = str(tmp_path / "store")
        SuiteRunner(store=store).run(tiny_suite())
        pooled = SuiteRunner(store=store, workers=2).run(tiny_suite())
        assert pooled.hits == 3 and pooled.simulated == 0

    def test_only_filter_and_engine_override(self, tmp_path):
        report = SuiteRunner().run(tiny_suite(), only="march")
        assert len(report.cells) == 1
        assert report.cells[0].family == "march"
        with pytest.raises(ValueError, match="no 'design' cells"):
            SuiteRunner().run(tiny_suite(), only="design")
        serial = SuiteRunner().run(tiny_suite(), engine="serial")
        assert all(
            cell.summary["engine"] == "serial" for cell in serial.cells
        )
        # the serial oracle agrees with the packed default, cell by cell
        packed = SuiteRunner().run(tiny_suite())
        for left, right in zip(serial.cells, packed.cells):
            assert left.summary["detected"] == right.summary["detected"]

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SuiteRunner(workers=0)


class TestDesignCells:
    def suite(self):
        return SuiteSpec(
            name="design-only",
            blocks=(
                MatrixBlock(
                    family="design",
                    targets=(
                        {"words": 256, "bits": 8, "c": 10, "pndc": 1e-9},
                    ),
                ),
            ),
        )

    def test_design_cell_reports_the_sized_code(self):
        report = SuiteRunner().run(self.suite())
        cell = report.cells[0]
        assert cell.summary["code"] == "3-out-of-5"
        assert cell.provenance["campaign"] == "design"

    def test_design_cells_hit_the_report_side_table(self, tmp_path):
        store = str(tmp_path / "store")
        SuiteRunner(store=store).run(self.suite())
        second = SuiteRunner(store=store).run(self.suite())
        assert second.hits == 1 and second.verified_hits == 1

    def test_empirical_design_cell_carries_campaign_artifact(
        self, tmp_path
    ):
        store = str(tmp_path / "store")
        suite = SuiteSpec(
            name="empirical",
            blocks=(
                MatrixBlock(
                    family="design",
                    targets=(
                        {"words": 256, "bits": 8, "c": 10, "pndc": 1e-9},
                    ),
                    policies=(
                        {"empirical": True, "empirical_cycles": 64},
                    ),
                ),
            ),
        )
        first = SuiteRunner(store=store).run(suite)
        empirical = first.cells[0].summary["empirical"]
        assert empirical["faults"] > 0
        # the referenced record-level artifact is openable
        artifact = ResultStore(store).get(empirical["result_key"])
        assert artifact.total == empirical["faults"]
        second = SuiteRunner(store=store).run(suite)
        assert second.hits == 1 and second.simulated == 0


class TestExecuteCell:
    def test_outcome_dict_round_trips(self, tmp_path):
        cell = tiny_suite().cells()[0]
        outcome = execute_cell(cell.to_dict(), str(tmp_path / "s"))
        parsed = CellOutcome.from_dict(outcome)
        assert parsed.cell_id == cell.cell_id
        assert parsed.status == "ran"
        assert parsed.store["puts"] == 1
        assert CellOutcome.from_dict(parsed.to_dict()) == parsed

    def test_march_cell_with_unknown_test_fails_soft(self):
        cell = dataclasses.replace(
            tiny_suite().cells()[2], workload={"test": "March Q"}
        )
        outcome = execute_cell(cell.to_dict(), None)
        assert outcome["execution"]["status"] == "error"
        assert "unknown march test" in outcome["error"]


class TestSuiteReport:
    def run_tiny(self, tmp_path):
        return SuiteRunner(store=str(tmp_path / "s")).run(tiny_suite())

    def test_totals_aggregate_coverage(self, tmp_path):
        report = self.run_tiny(tmp_path)
        totals = report.totals()
        assert totals["faults"] == sum(
            cell.summary["faults"] for cell in report.cells
        )
        assert totals["detected"] <= totals["faults"]
        assert 0 < totals["coverage"] <= 1
        assert set(totals["by_family"]) == {"transient", "march"}

    def test_json_round_trip(self, tmp_path):
        report = self.run_tiny(tmp_path)
        parsed = SuiteReport.from_dict(json.loads(report.to_json()))
        assert parsed.suite == report.suite
        assert parsed.hits == report.hits
        assert [c.cell_id for c in parsed.cells] == [
            c.cell_id for c in report.cells
        ]

    def test_render_mentions_cells_and_counters(self, tmp_path):
        report = self.run_tiny(tmp_path)
        text = report.render()
        assert "3 cells" in text
        for cell in report.cells:
            assert cell.cell_id in text
        assert "simulated" in text


class TestPaperGridResume:
    """The acceptance criterion, API-level: paper_grid twice against
    one store — the second run is all verified hits, the simulator is
    never invoked, and the stable payloads are identical."""

    def test_paper_grid_double_run(self, tmp_path, monkeypatch):
        store = str(tmp_path / "store")
        grid = builtin_suite("paper_grid")
        first = SuiteRunner(store=store).run(grid)
        assert first.errors == 0
        # a cold run against a fresh store is a clean all-miss run
        assert first.hits == 0
        assert first.simulated == len(grid.cells())

        # prove "simulator never invoked" mechanically, not just by
        # counters: a resumed run must survive broken engines
        import repro.faultsim.fastsim as fastsim
        import repro.scenarios.engine as scenarios_engine

        def boom(*args, **kwargs):
            raise AssertionError("simulator invoked on a resumed run")

        monkeypatch.setattr(fastsim, "decoder_campaign_packed", boom)
        monkeypatch.setattr(fastsim, "_map_jobs", boom)
        monkeypatch.setattr(scenarios_engine, "_map_jobs", boom)
        monkeypatch.setattr(
            scenarios_engine.CampaignEngine, "_run_sharded", boom
        )
        second = SuiteRunner(store=store).run(grid)
        assert second.errors == 0
        assert second.simulated == 0
        assert second.hits == len(grid.cells()) == 46
        assert second.verified_hits == 46
        assert first.to_dict(stable_only=True) == second.to_dict(
            stable_only=True
        )
