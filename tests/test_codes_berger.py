import pytest

from repro.codes.berger import BergerCode, berger_check_width
from repro.utils.bitops import all_bit_vectors, bits_to_int


class TestCheckWidth:
    def test_known_widths(self):
        assert berger_check_width(1) == 1
        assert berger_check_width(3) == 2
        assert berger_check_width(4) == 3
        assert berger_check_width(7) == 3
        assert berger_check_width(8) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            berger_check_width(0)


class TestEncoding:
    def test_check_counts_zeros(self):
        code = BergerCode(4)
        word = code.encode((0, 0, 0, 0))
        assert bits_to_int(word[4:]) == 4
        word = code.encode((1, 1, 1, 1))
        assert bits_to_int(word[4:]) == 0

    def test_every_encoding_is_codeword(self):
        code = BergerCode(3)
        for info in all_bit_vectors(3):
            assert code.is_codeword(code.encode(info))

    def test_cardinality(self):
        assert BergerCode(4).cardinality() == 16

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            BergerCode(3).encode((1, 0))


class TestUnorderedness:
    @pytest.mark.parametrize("info_bits", [1, 2, 3, 4, 5])
    def test_berger_codes_are_unordered(self, info_bits):
        # The property §III relies on for the [NIC 94] variant.
        assert BergerCode(info_bits).is_unordered()

    def test_unidirectional_error_detected(self):
        # All-0->1 (or all-1->0) multi-bit errors leave the code.
        code = BergerCode(4)
        for info in all_bit_vectors(4):
            word = list(code.encode(info))
            zero_positions = [i for i, b in enumerate(word) if b == 0]
            if not zero_positions:
                continue
            for position in zero_positions:
                word[position] = 1  # cumulative 0 -> 1 flips
                assert not code.is_codeword(word)


class TestMembership:
    def test_corrupted_check_rejected(self):
        code = BergerCode(3)
        word = list(code.encode((0, 1, 0)))
        word[-1] ^= 1
        assert not code.is_codeword(word)

    def test_wrong_length_rejected(self):
        assert not BergerCode(3).is_codeword((0, 1, 0))
