"""Second batch of property-based tests: new substrates and invariants."""

import itertools

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.equivalence import collapse_faults
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.codes.m_out_of_n import MOutOfNCode
from repro.codes.unordered import bitwise_and
from repro.core.deterministic import worst_case_latency_for_site
from repro.core.mapping import ModAMapping
from repro.memory.march import (
    MARCH_C_MINUS,
    MATS_PLUS,
    march_address_stream,
    run_march,
)
from repro.memory.faults import CellStuckAt
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import NORMatrix


def _random_circuit(rng_choices, inputs=3):
    circuit = Circuit("prop")
    nets = list(circuit.add_inputs([f"x{i}" for i in range(inputs)]))
    pool = list(nets)
    gate_types = [
        GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
        GateType.XOR, GateType.NOT,
    ]
    for choice in rng_choices:
        gate_type = gate_types[choice[0] % len(gate_types)]
        if gate_type is GateType.NOT:
            ins = (pool[choice[1] % len(pool)],)
        else:
            ins = (
                pool[choice[1] % len(pool)],
                pool[choice[2] % len(pool)],
            )
        pool.append(circuit.add_gate(gate_type, ins))
    circuit.mark_output(pool[-1])
    return circuit


class TestCollapseSoundness:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 30), st.integers(0, 30)
            ),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=4000)
    def test_classes_are_functionally_equivalent(self, choices):
        circuit = _random_circuit(choices)
        classes = collapse_faults(circuit)
        vectors = list(itertools.product((0, 1), repeat=3))
        for cls in classes.classes:
            signatures = {
                tuple(circuit.evaluate(v, faults=(f,)) for v in vectors)
                for f in cls
            }
            assert len(signatures) == 1


class TestNorMatrixProperties:
    @given(st.data())
    @settings(max_examples=50)
    def test_multi_select_is_and_of_singles(self, data):
        code = MOutOfNCode(3, 5)
        num_lines = data.draw(st.integers(min_value=2, max_value=8))
        rows = [
            code.word_at(data.draw(st.integers(0, 9)))
            for _ in range(num_lines)
        ]
        matrix = NORMatrix(rows)
        active = data.draw(
            st.lists(
                st.integers(0, num_lines - 1),
                min_size=1,
                max_size=num_lines,
                unique=True,
            )
        )
        merged = matrix.output_for_lines(active)
        expected = rows[active[0]]
        for line in active[1:]:
            expected = bitwise_and(expected, rows[line])
        assert merged == expected

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=20)
    def test_empty_selection_is_all_ones(self, num_lines):
        code = MOutOfNCode(2, 4)
        rows = [code.word_at(i % 6) for i in range(num_lines)]
        assert NORMatrix(rows).output_for_lines(()) == (1, 1, 1, 1)


class TestDeterministicBoundProperties:
    @given(
        st.integers(min_value=3, max_value=6),
        st.data(),
    )
    @settings(max_examples=40, deadline=4000)
    def test_bound_positive_and_within_period(self, n_bits, data):
        mapping = ModAMapping(MOutOfNCode(3, 5), n_bits, complete=False)
        width = data.draw(st.integers(1, n_bits))
        lo = data.draw(st.integers(0, n_bits - width))
        m1 = data.draw(st.integers(0, (1 << width) - 1))
        stuck = data.draw(st.sampled_from([0, 1]))
        latency = worst_case_latency_for_site(
            mapping, lo, width, m1, stuck
        )
        period = 1 << n_bits
        if latency is not None:
            assert 1 <= latency <= period

    @given(st.integers(min_value=3, max_value=6), st.data())
    @settings(max_examples=30, deadline=4000)
    def test_sa0_bound_is_exactly_the_excitation_period(self, n_bits, data):
        mapping = ModAMapping(MOutOfNCode(3, 5), n_bits, complete=False)
        width = data.draw(st.integers(1, n_bits))
        lo = data.draw(st.integers(0, n_bits - width))
        m1 = data.draw(st.integers(0, (1 << width) - 1))
        latency = worst_case_latency_for_site(mapping, lo, width, m1, 0)
        # excitations (bits[lo, lo+width) == m1) come in runs of 2^lo
        # consecutive addresses repeating every 2^(lo+width): the worst
        # gap between consecutive excitations is the span between the end
        # of one run and the start of the next, plus one.
        assert latency == (1 << (lo + width)) - (1 << lo) + 1


class TestMarchProperties:
    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=3),
        st.sampled_from([0, 1]),
    )
    @settings(max_examples=40, deadline=4000)
    def test_march_c_minus_detects_any_cell_stuck_at(self, address, bit, value):
        ram = BehavioralRAM(MemoryOrganization(32, 4, column_mux=2))
        ram.inject(CellStuckAt(address, bit, value))
        assert run_march(ram, MARCH_C_MINUS)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    @given(st.sampled_from([MATS_PLUS, MARCH_C_MINUS]))
    @settings(max_examples=10)
    def test_stream_length_is_complexity_times_words(self, test):
        words = 16
        stream = march_address_stream(test, words)
        assert len(stream) == test.complexity * words
        assert all(0 <= a < words for a in stream)
