import pytest

from repro.faultsim.transient import (
    TransientUpset,
    scrubbed_stream,
    transient_campaign,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM


#: this module exercises the pre-1.3 shim layer on purpose — the 1.4
#: DeprecationWarnings are expected here, asserted once below
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_scrubbed_stream_warns_deprecation():
    with pytest.warns(DeprecationWarning, match="Workload.scrubbed"):
        scrubbed_stream(8, 10, scrub_period=2)


def make_ram(words=32):
    return BehavioralRAM(MemoryOrganization(words, 8, column_mux=4))


class TestScrubbedStream:
    def test_length_and_range(self):
        stream = scrubbed_stream(16, 100, scrub_period=5)
        assert len(stream) == 100
        assert all(0 <= a < 16 for a in stream)

    def test_scrubber_visits_round_robin(self):
        stream = scrubbed_stream(16, 80, scrub_period=4, seed=1)
        scrub_visits = stream[::4]
        assert scrub_visits[:4] == [0, 1, 2, 3]

    def test_no_scrubbing(self):
        stream = scrubbed_stream(16, 50, scrub_period=0, seed=1)
        assert len(stream) == 50

    def test_deterministic(self):
        assert scrubbed_stream(8, 30, 3, seed=9) == scrubbed_stream(
            8, 30, 3, seed=9
        )


class TestTransientCampaign:
    def test_upset_detected_on_next_victim_read(self):
        ram = make_ram()
        upset = TransientUpset(address=5, bit=2, cycle=3)
        # stream reads 5 at cycles 1 (before upset) and 8 (after)
        addresses = [0, 5, 1, 2, 3, 4, 6, 7, 5, 5]
        results = transient_campaign(ram, [upset], addresses)
        assert len(results) == 1
        assert results[0].detected_at == 8
        assert results[0].latency == 5

    def test_upset_never_read_is_never_detected(self):
        ram = make_ram()
        upset = TransientUpset(address=5, bit=0, cycle=0)
        addresses = [0, 1, 2, 3]
        results = transient_campaign(ram, [upset], addresses)
        assert results[0].detected_at is None
        assert results[0].latency is None

    def test_parity_bit_upset_also_detected(self):
        ram = make_ram()
        upset = TransientUpset(address=2, bit=8, cycle=0)  # the check bit
        results = transient_campaign(ram, [upset], [2])
        assert results[0].detected_at == 0

    def test_scrubbing_bounds_latency(self):
        ram = make_ram(words=16)
        upsets = [
            TransientUpset(address=a, bit=1, cycle=0) for a in range(16)
        ]
        period = 2
        cycles = 16 * period * 2 + 10
        stream = scrubbed_stream(16, cycles, scrub_period=period, seed=4)
        results = transient_campaign(ram, upsets, stream)
        latencies = [r.latency for r in results]
        assert all(lat is not None for lat in latencies)
        # the scrubber guarantees a visit within words * period cycles
        assert max(latencies) <= 16 * period + period

    def test_requires_parity(self):
        ram = BehavioralRAM(
            MemoryOrganization(16, 4, column_mux=2), with_parity=False
        )
        with pytest.raises(ValueError):
            transient_campaign(
                ram, [TransientUpset(0, 0, 0)], [0]
            )

    def test_address_validation(self):
        ram = make_ram()
        with pytest.raises(ValueError):
            transient_campaign(
                ram, [TransientUpset(999, 0, 0)], [0]
            )

    def test_flip_stored_bit_validation(self):
        ram = make_ram()
        with pytest.raises(ValueError):
            ram.flip_stored_bit(0, 99)

    def test_double_upset_same_word_escapes_parity(self):
        # two flips in one word restore even parity: the known limit of
        # the single-parity-bit data path (SEC-DED exists for this).
        ram = make_ram()
        zero = (0,) * 8
        for address in range(ram.organization.words):
            ram.write(address, zero)
        ram.flip_stored_bit(3, 0)
        ram.flip_stored_bit(3, 1)
        assert ram.parity_ok(3)
