"""`repro analytics` — the CLI surface of the trend-analytics layer:
the regress exit-code contract (0 clean / 2 on hard regression), the
injected-regression acceptance path, bench selection diagnostics, and
the report renderers (text, JSON, self-contained HTML)."""

import json

import pytest

from repro.analytics.history import append_entry
from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def write_history(path, rows_per_entry):
    """One file, one entry per dict of {bench_name: {metric: value}}."""
    for index, rows in enumerate(rows_per_entry):
        append_entry(
            str(path),
            {
                "bench": "campaign_engines",
                "version": f"1.{index}.0",
                "benches": [
                    dict(metrics, name=name)
                    for name, metrics in rows.items()
                ],
            },
            timestamp=float(index),
            sha=f"sha{index}",
        )


def healthy(tmp_path):
    path = tmp_path / "BENCH_campaigns.history.jsonl"
    write_history(
        path,
        [
            {"decoder_n6_c512": {"vector_speedup": v, "serial_s": 0.5}}
            for v in (120.0, 123.0, 126.0)
        ],
    )
    return path


class TestRegress:
    def test_clean_history_exits_zero(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, out, _ = run_cli(capsys, "analytics", "regress")
        assert code == 0
        assert "ok — no hard regression" in out
        assert "1 history file(s)" in out

    def test_injected_drop_exits_two_naming_the_evidence(
        self, capsys, tmp_path, monkeypatch
    ):
        # the acceptance scenario: append one entry whose speedup sits
        # 30% below the median of the prior points (123 -> 86.1)
        monkeypatch.chdir(tmp_path)
        path = healthy(tmp_path)
        write_history(
            path, [{"decoder_n6_c512": {"vector_speedup": 86.1}}]
        )
        code, out, _ = run_cli(capsys, "analytics", "regress")
        assert code == 2
        assert "FAIL — 1 hard regression(s)" in out
        line = next(ln for ln in out.splitlines() if "HARD" in ln)
        for token in (
            "decoder_n6_c512",
            "vector_speedup",
            "dropped 30.0%",
            "baseline 123",
            "observed 86.1",
        ):
            assert token in line

    def test_injected_drop_json_carries_the_same_fields(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        path = healthy(tmp_path)
        write_history(
            path, [{"decoder_n6_c512": {"vector_speedup": 86.1}}]
        )
        code, out, _ = run_cli(capsys, "analytics", "regress", "--json")
        assert code == 2
        data = json.loads(out)
        assert data["ok"] is False and data["hard"] == 1
        (finding,) = [
            r for r in data["regressions"] if r["severity"] == "hard"
        ]
        assert finding["bench"] == "decoder_n6_c512"
        assert finding["metric"] == "vector_speedup"
        assert finding["baseline"] == 123.0
        assert finding["observed"] == 86.1
        assert finding["change_pct"] == 30.0
        assert finding["after"] == "1.0.0 @sha0"

    def test_wall_seconds_only_warn(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = healthy(tmp_path)
        write_history(
            path,
            [
                {
                    "decoder_n6_c512": {
                        "vector_speedup": 124.0,
                        "serial_s": 5.0,
                    }
                }
            ],
        )
        code, out, _ = run_cli(capsys, "analytics", "regress")
        assert code == 0
        assert "warn decoder_n6_c512 serial_s rose" in out

    def test_unknown_only_name_fails_fast_one_line(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, out, err = run_cli(
            capsys, "analytics", "regress", "--only", "nope"
        )
        assert code == 1
        assert err.startswith("error: unknown bench name(s) ['nope']")
        assert "decoder_n6_c512" in err
        assert "Traceback" not in err

    def test_only_and_skip_select_benches(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        path = healthy(tmp_path)
        write_history(
            path,
            [
                {
                    "decoder_n6_c512": {"vector_speedup": 10.0},
                    "other": {"speedup": 2.0},
                }
            ],
        )
        code, _, _ = run_cli(
            capsys, "analytics", "regress", "--only", "other"
        )
        assert code == 0  # the eroded bench was deselected
        code, _, _ = run_cli(
            capsys, "analytics", "regress", "--skip", "other"
        )
        assert code == 2

    def test_tolerance_and_window_flags(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        path = healthy(tmp_path)
        write_history(
            path, [{"decoder_n6_c512": {"vector_speedup": 100.0}}]
        )
        code, _, _ = run_cli(
            capsys, "analytics", "regress", "--tolerance", "10"
        )
        assert code == 2  # ~19% drop vs 10% band
        code, _, _ = run_cli(
            capsys, "analytics", "regress", "--tolerance", "30"
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys, "analytics", "regress", "--window", "1"
        )
        assert code == 0  # vs the 126.0 point alone: -20.6% < 25%

    def test_invalid_flags_are_one_line_errors(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, _, err = run_cli(
            capsys, "analytics", "regress", "--window", "0"
        )
        assert code == 1 and "--window must be >= 1" in err
        code, _, err = run_cli(
            capsys, "analytics", "regress", "--tolerance", "-3"
        )
        assert code == 1 and "--tolerance must be >= 0" in err

    def test_missing_history_glob_is_an_error(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, _, err = run_cli(capsys, "analytics", "regress")
        assert code == 1
        assert "no history file matches" in err

    def test_verbose_lists_skipped_series(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        write_history(
            tmp_path / "BENCH_one.history.jsonl",
            [{"b": {"speedup": 1.0}}],
        )
        code, out, _ = run_cli(
            capsys, "analytics", "regress", "--verbose"
        )
        assert code == 0
        assert "skip b speedup: 1 point(s), no baseline" in out

    def test_json_out_writes_the_file(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, out, _ = run_cli(
            capsys,
            "analytics",
            "regress",
            "--json",
            "--out",
            "regress.json",
        )
        assert code == 0
        assert "wrote regress.json" in out
        data = json.loads((tmp_path / "regress.json").read_text())
        assert data["ok"] is True


class TestReport:
    def test_text_render(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, out, _ = run_cli(capsys, "analytics", "report")
        assert code == 0
        assert "trend analytics — 1 history file(s), 2 series" in out

    def test_out_writes_self_contained_html(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, out, _ = run_cli(
            capsys, "analytics", "report", "--out", "report.html"
        )
        assert code == 0
        assert "wrote report.html" in out
        html = (tmp_path / "report.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "decoder_n6_c512" in html
        assert "<script" not in html

    def test_json_report_shape(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, out, _ = run_cli(capsys, "analytics", "report", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["regress"]["ok"] is True
        assert len(data["series"]) == 2
        assert data["sources"]["history_files"]

    def test_empty_sources_still_report(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, out, _ = run_cli(capsys, "analytics", "report")
        assert code == 0
        assert "0 history file(s), 0 series" in out

    def test_missing_store_is_a_one_line_error(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, _, err = run_cli(
            capsys, "analytics", "report", "--store", "missing-store"
        )
        assert code == 1
        assert "no result store at 'missing-store'" in err

    def test_report_over_a_real_store(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        healthy(tmp_path)
        code, _, _ = run_cli(
            capsys,
            "march",
            "--store",
            "store",
            "--json",
            "--out",
            "march.json",
        )
        assert code == 0
        code, out, _ = run_cli(
            capsys, "analytics", "report", "--store", "store"
        )
        assert code == 0
        assert "store group(s)" in out
        assert "store march / BehavioralRAM[8x64]" in out

    def test_epilog_documents_the_commands(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--help"])
        assert exit_info.value.code == 0
        out = capsys.readouterr().out
        assert "repro analytics regress" in out
        assert "repro analytics report --store S" in out
