"""Packed campaign engine vs the serial oracle: record-level bit-identity,
plus the incremental packed evaluator against evaluate_packed."""

import itertools
import random

import pytest

from repro.checkers.base import Checker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.circuits.faults import (
    NetStuckAt,
    PinStuckAt,
    enumerate_stuck_at_faults,
)
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.parallel import evaluate_packed, pack_stimuli
from repro.circuits.simulator import (
    coverage,
    detects,
    fault_free_responses,
    first_difference,
)
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.faultsim.campaign import decoder_campaign, scheme_campaign
from repro.faultsim.fastsim import PackedStream, _PackedCircuit
from repro.faultsim.injector import (
    burst_addresses,
    decoder_fault_list,
    rom_fault_list,
    sample_faults,
    sequential_addresses,
)
from repro.memory.faults import (
    CellStuckAt,
    CouplingFault,
    DataLineStuckAt,
    MuxLineStuckAt,
)
from repro.memory.organization import MemoryOrganization
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import Workload


def _uniform_addresses(n_bits, cycles, seed=0):
    """Uniform stimulus via the canonical Workload (the pre-1.4
    random_addresses shim now warns)."""
    return Workload.uniform(1 << n_bits, cycles, seed=seed).address_list()


def record_key(result):
    return [
        (
            str(r.fault),
            r.kind,
            r.first_detection,
            r.first_error,
            r.analytic_escape,
        )
        for r in result.records
    ]


@pytest.fixture(scope="module")
def checked4():
    return CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 4))


@pytest.fixture(scope="module")
def checker35():
    return MOutOfNChecker(3, 5, structural=False)


class TestPackedCircuit:
    """The incremental cone evaluator is lane-exact vs evaluate_packed."""

    @staticmethod
    def random_circuit(seed, inputs=4, gates=14):
        rng = random.Random(seed)
        c = Circuit(f"random{seed}")
        nets = c.add_inputs([f"x{i}" for i in range(inputs)])
        pool = list(nets)
        choices = [
            GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
            GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
        ]
        for _ in range(gates):
            gate_type = rng.choice(choices)
            if gate_type in (GateType.NOT, GateType.BUF):
                ins = (rng.choice(pool),)
            else:
                ins = tuple(
                    rng.choice(pool) for _ in range(rng.randint(2, 3))
                )
            pool.append(c.add_gate(gate_type, ins))
        c.add_gate(GateType.CONST1, ())
        pool.append(c.add_gate(GateType.CONST0, ()))
        for net in pool[-4:]:
            c.mark_output(net)
        return c

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_evaluate_packed_for_every_fault(self, seed):
        circuit = self.random_circuit(seed)
        rng = random.Random(100 + seed)
        stimuli = [
            tuple(rng.randint(0, 1) for _ in range(len(circuit.input_nets)))
            for _ in range(33)
        ]
        packed, lanes = pack_stimuli(stimuli)
        sim = _PackedCircuit(circuit, packed, lanes)
        faults = enumerate_stuck_at_faults(
            circuit, include_inputs=True, include_pins=True
        )
        for fault in faults:
            expected = evaluate_packed(
                circuit, packed, lanes, faults=(fault,)
            )
            values = sim.values_with_fault(fault)
            got = [values[net] for net in circuit.output_nets]
            assert got == expected, fault

    def test_golden_pass_matches_evaluate_packed(self, checked4):
        addresses = _uniform_addresses(4, 40, seed=9)
        stream = PackedStream(checked4, addresses)
        expected = evaluate_packed(
            checked4.circuit, stream.packed_inputs, stream.num_lanes
        )
        got = [
            stream.sim.golden_values[net]
            for net in checked4.circuit.output_nets
        ]
        assert got == expected


class TestDecoderCampaignEquivalence:
    @pytest.mark.parametrize("collapse", [True, False])
    def test_net_rom_pin_and_input_faults(
        self, checked4, checker35, collapse
    ):
        faults = (
            decoder_fault_list(checked4)
            + rom_fault_list(checked4)
            + enumerate_stuck_at_faults(
                checked4.circuit, include_inputs=True, include_pins=True
            )
        )
        addresses = _uniform_addresses(4, 220, seed=5)
        serial = decoder_campaign(
            checked4, checker35, faults, addresses, engine="serial"
        )
        packed = decoder_campaign(
            checked4, checker35, faults, addresses, collapse=collapse
        )
        assert record_key(serial) == record_key(packed)
        assert serial.engine == "serial" and packed.engine == "packed"

    @pytest.mark.parametrize(
        "stream_factory",
        [
            lambda: sequential_addresses(4, 48),
            lambda: burst_addresses(4, 64, locality=4, seed=2),
            lambda: [3] * 32,  # pathological: one address repeated
        ],
    )
    def test_stream_shapes(self, checked4, checker35, stream_factory):
        faults = decoder_fault_list(checked4)
        addresses = stream_factory()
        serial = decoder_campaign(
            checked4, checker35, faults, addresses, engine="serial",
            attach_analytic=False,
        )
        packed = decoder_campaign(
            checked4, checker35, faults, addresses, attach_analytic=False
        )
        assert record_key(serial) == record_key(packed)

    def test_empty_stream_and_empty_fault_list(self, checked4, checker35):
        faults = decoder_fault_list(checked4)[:4]
        packed = decoder_campaign(
            checked4, checker35, faults, [], attach_analytic=False
        )
        serial = decoder_campaign(
            checked4, checker35, faults, [], engine="serial",
            attach_analytic=False,
        )
        assert record_key(serial) == record_key(packed)
        assert all(r.first_detection is None for r in packed.records)
        empty = decoder_campaign(
            checked4, checker35, [], _uniform_addresses(4, 16),
            attach_analytic=False,
        )
        assert empty.total == 0

    def test_workers_shard_matches_serial(self, checked4, checker35):
        faults = decoder_fault_list(checked4)
        addresses = _uniform_addresses(4, 120, seed=8)
        sharded = decoder_campaign(
            checked4, checker35, faults, addresses, workers=2,
            attach_analytic=False,
        )
        serial = decoder_campaign(
            checked4, checker35, faults, addresses, engine="serial",
            attach_analytic=False,
        )
        assert record_key(serial) == record_key(sharded)

    def test_duplicate_faults_in_list(self, checked4, checker35):
        fault = decoder_fault_list(checked4)[3]
        faults = [fault, fault, fault]
        addresses = _uniform_addresses(4, 60, seed=1)
        serial = decoder_campaign(
            checked4, checker35, faults, addresses, engine="serial",
            attach_analytic=False,
        )
        packed = decoder_campaign(
            checked4, checker35, faults, addresses, attach_analytic=False
        )
        assert record_key(serial) == record_key(packed)
        assert packed.total == 3

    def test_unknown_engine_rejected(self, checked4, checker35):
        with pytest.raises(ValueError):
            decoder_campaign(
                checked4, checker35, [], [], engine="quantum"
            )


class _MembershipChecker(Checker):
    """Plugin-style checker (no packed override): generic fallback path."""

    def __init__(self, mapping):
        self.input_width = mapping.rom_width
        self._words = {
            mapping.codeword(a) for a in range(1 << mapping.n_bits)
        }

    def indication(self, word):
        return (1, 0) if tuple(word) in self._words else (1, 1)


def test_plugin_checker_campaign_matches_serial(checked4):
    checker = _MembershipChecker(checked4.mapping)
    faults = decoder_fault_list(checked4)
    addresses = _uniform_addresses(4, 150, seed=13)
    serial = decoder_campaign(
        checked4, checker, faults, addresses, engine="serial",
        attach_analytic=False,
    )
    packed = decoder_campaign(
        checked4, checker, faults, addresses, attach_analytic=False
    )
    assert record_key(serial) == record_key(packed)


class TestSchemeCampaignEquivalence:
    def build_memory(self, structural=False):
        org = MemoryOrganization(64, 8, column_mux=4)
        return SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9), structural_checkers=structural
        )

    MEMORY_FAULTS = [
        CellStuckAt(5, 1, 1),
        CellStuckAt(9, 0, 0),
        DataLineStuckAt(3, 1),
        MuxLineStuckAt(2, 0, 0),
        CouplingFault(3, 0, 40, 1),
    ]

    @pytest.mark.parametrize("structural", [False, True])
    def test_all_fault_kinds_match_serial(self, structural):
        serial_memory = self.build_memory(structural)
        packed_memory = self.build_memory(structural)
        row_faults = decoder_fault_list(serial_memory.row) + [
            PinStuckAt(gate.index, pin, value)
            for gate in serial_memory.row.tree.circuit.gates[:10]
            for pin in range(len(gate.inputs))
            for value in (0, 1)
        ]
        column_faults = sample_faults(
            decoder_fault_list(serial_memory.column), 10, seed=4
        )
        addresses = _uniform_addresses(
            serial_memory.organization.n, 250, seed=3
        )
        serial = scheme_campaign(
            serial_memory, addresses, row_faults=row_faults,
            column_faults=column_faults, memory_faults=self.MEMORY_FAULTS,
            engine="serial",
        )
        packed = scheme_campaign(
            packed_memory, addresses, row_faults=row_faults,
            column_faults=column_faults, memory_faults=self.MEMORY_FAULTS,
        )
        key = lambda res: [
            (str(r.fault), r.kind, r.first_detection) for r in res.records
        ]
        assert key(serial) == key(packed)

    def test_adversarial_writer_with_corrupt_contents(self):
        """A writer that leaves non-code words in the array: the packed
        engine's fault-free rejection words must mirror serial."""

        def corrupting_writer(memory):
            for address in range(memory.organization.words):
                memory.write(address, (address & 1,) * 8)
            # leave a few stored words off the parity code
            for address in (0, 17, 33):
                memory.ram.flip_stored_bit(address, 2)

        serial_memory = self.build_memory()
        packed_memory = self.build_memory()
        row_faults = sample_faults(
            decoder_fault_list(serial_memory.row), 14, seed=6
        )
        addresses = _uniform_addresses(
            serial_memory.organization.n, 200, seed=11
        )
        serial = scheme_campaign(
            serial_memory, addresses, row_faults=row_faults,
            memory_faults=self.MEMORY_FAULTS[:2],
            writer=corrupting_writer, engine="serial",
        )
        packed = scheme_campaign(
            packed_memory, addresses, row_faults=row_faults,
            memory_faults=self.MEMORY_FAULTS[:2],
            writer=corrupting_writer,
        )
        key = lambda res: [
            (str(r.fault), r.kind, r.first_detection) for r in res.records
        ]
        assert key(serial) == key(packed)

    def test_workers_shard_matches_serial(self):
        serial_memory = self.build_memory()
        packed_memory = self.build_memory()
        row_faults = sample_faults(
            decoder_fault_list(serial_memory.row), 12, seed=2
        )
        addresses = _uniform_addresses(
            serial_memory.organization.n, 150, seed=5
        )
        serial = scheme_campaign(
            serial_memory, addresses, row_faults=row_faults,
            memory_faults=self.MEMORY_FAULTS, engine="serial",
        )
        sharded = scheme_campaign(
            packed_memory, addresses, row_faults=row_faults,
            memory_faults=self.MEMORY_FAULTS, workers=2,
        )
        key = lambda res: [
            (str(r.fault), r.kind, r.first_detection) for r in res.records
        ]
        assert key(serial) == key(sharded)


class TestSimulatorEngines:
    def build_circuit(self):
        c = Circuit("sim")
        a, b, d = c.add_inputs(["a", "b", "d"])
        x = c.add_gate(GateType.XOR, (a, b))
        y = c.add_gate(GateType.AND, (x, d))
        z = c.add_gate(GateType.NOR, (a, y))
        c.mark_output(y)
        c.mark_output(z)
        return c

    def all_stimuli(self):
        return list(itertools.product((0, 1), repeat=3))

    def test_fault_free_responses_engines_agree(self):
        c = self.build_circuit()
        stimuli = self.all_stimuli()
        assert fault_free_responses(c, stimuli) == fault_free_responses(
            c, stimuli, engine="serial"
        )

    def test_first_difference_engines_agree(self):
        c = self.build_circuit()
        stimuli = self.all_stimuli()
        golden = fault_free_responses(c, stimuli)
        for fault in enumerate_stuck_at_faults(
            c, include_inputs=True, include_pins=True
        ):
            serial = first_difference(
                c, fault, stimuli, engine="serial"
            )
            assert first_difference(c, fault, stimuli) == serial
            assert (
                first_difference(c, fault, stimuli, golden=golden)
                == serial
            )

    def test_detects_and_coverage_engines_agree(self):
        c = self.build_circuit()
        stimuli = self.all_stimuli()
        checker = lambda response: response != (1, 0)
        faults = enumerate_stuck_at_faults(
            c, include_inputs=True, include_pins=True
        )
        for fault in faults:
            assert detects(c, fault, stimuli, checker) == detects(
                c, fault, stimuli, checker, engine="serial"
            )
        packed = coverage(c, faults, stimuli, checker)
        serial = coverage(c, faults, stimuli, checker, engine="serial")
        assert packed["coverage"] == serial["coverage"]
        assert packed["first_detection"] == serial["first_detection"]
        assert packed["undetected"] == serial["undetected"]

    def test_first_difference_rejects_mismatched_golden(self):
        c = self.build_circuit()
        stimuli = self.all_stimuli()
        golden = fault_free_responses(c, stimuli)
        fault = NetStuckAt(c.gates[0].output, 1)
        with pytest.raises(ValueError):
            first_difference(c, fault, stimuli, golden=golden[:-1])

    def test_empty_stimuli(self):
        c = self.build_circuit()
        fault = NetStuckAt(c.gates[0].output, 1)
        assert first_difference(c, fault, []) is None
        assert detects(c, fault, [], lambda r: True) is None
        report = coverage(c, [fault], [], lambda r: True)
        assert report["coverage"] == 0.0


class TestDesignEngineEmpirical:
    def test_evaluate_attaches_empirical_report(self):
        from repro.design import DesignEngine, DesignSpec
        from repro.design.report import DesignReport

        spec = DesignSpec(words=256, bits=8, c=10, pndc=1e-9)
        engine = DesignEngine()
        report = engine.evaluate(spec, empirical=True, empirical_cycles=128)
        emp = report.empirical
        assert emp is not None
        assert emp.engine == "packed"
        assert emp.faults > 0 and emp.cycles == 128
        assert 0.0 <= emp.coverage <= 1.0
        assert "empirical validation" in report.render()
        # round-trips through dict/json with the empirical section
        clone = DesignReport.from_dict(report.to_dict())
        assert clone.empirical == emp
        # evaluate without the hook stays lean
        assert engine.evaluate(spec).empirical is None

    def test_empirical_engines_agree(self):
        from repro.design import DesignEngine, DesignSpec

        spec = DesignSpec(words=256, bits=8, c=10, pndc=1e-9)
        engine = DesignEngine()
        packed = engine.empirical(spec, cycles=128)
        serial = engine.empirical(spec, cycles=128, engine="serial")
        for field in (
            "faults", "detected", "coverage", "mean_detection_cycle",
            "max_detection_cycle", "escape_fraction_at_c",
            "zero_latency_sa0",
        ):
            assert getattr(packed, field) == getattr(serial, field), field


class TestCampaignCLI:
    def test_latency_json_reports_throughput(self, capsys):
        from repro.cli import main

        assert main(["latency", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "packed"
        assert payload["wall_time_s"] > 0
        assert payload["campaign"]["faults"] > 0
        assert payload["campaign"]["faults_per_sec"] > 0

    def test_report_empirical_json(self, capsys):
        from repro.cli import main

        assert main([
            "report", "--words", "256", "--bits", "8", "-c", "10",
            "-p", "1e-9", "--empirical", "--empirical-cycles", "64",
            "--json",
        ]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["empirical"]["cycles"] == 64
        assert payload["empirical"]["engine"] == "packed"

    def test_serial_flag_round_trip(self, capsys):
        from repro.cli import main

        assert main(["latency", "--serial", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "serial"
        assert payload["campaign"]["engine"] == "serial"

    def test_workers_with_serial_engine_rejected(self, capsys):
        from repro.cli import main

        assert main(["latency", "--serial", "--workers", "2"]) == 1
        assert "--workers requires the packed or vector engine" in (
            capsys.readouterr().err
        )
