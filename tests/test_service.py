"""CampaignService — async suite jobs over one shared store, tested
through :class:`InProcessClient` (the real client API routed through
the real Router, no sockets).

Acceptance properties from the 1.6 service layer:

* a submitted suite runs to ``done`` with live ``[i/N]`` progress and
  per-cell result keys, every one fetchable and hash-verified;
* re-submitting an identical suite is served as verified store hits —
  the simulator is never invoked;
* cancellation is immediate for queued jobs and cooperative (next cell
  boundary) for running ones;
* the job table survives a service restart, and ``running`` jobs
  interrupted by a crash are recovered back to ``queued``.
"""

import json
import threading

import pytest

import repro.suite.runner as runner_module
from repro.service import (
    CampaignService,
    InProcessClient,
    JobQueue,
    JobStateError,
    ServiceError,
)

from test_suite import tiny_suite


def make_service(tmp_path, **kwargs):
    return CampaignService(str(tmp_path / "store"), **kwargs)


class Gate:
    """Block execute_cell until released — deterministic cancel tests."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self._real = runner_module.execute_cell

    def __call__(self, cell_dict, store_root, cache=True):
        self.started.set()
        assert self.release.wait(timeout=30), "gate never released"
        return self._real(cell_dict, store_root, cache)


class TestSubmitAndRun:
    def test_submit_runs_to_done_with_progress_and_keys(self, tmp_path):
        with make_service(tmp_path) as service:
            client = InProcessClient(service)
            snapshots = []
            job = client.submit(tiny_suite())
            assert job["state"] == "queued"
            job = client.wait(
                job["job_id"],
                progress=lambda j: snapshots.append(dict(j["progress"])),
            )
            assert job["state"] == "done"
            assert job["progress"]["completed"] == 3
            assert job["progress"]["total"] == 3
            assert job["report"]["execution"]["errors"] == 0
            assert len(job["result_keys"]) == 3
            # the snapshot advanced monotonically as cells completed
            completed = [s["completed"] for s in snapshots if s]
            assert completed == sorted(completed)

            for key in job["result_keys"]:
                meta = client.result(key)
                assert meta["kind"] == "campaign"
                assert meta["sha256"]
                records = client.records(key)
                assert all(
                    json.loads(line)
                    for line in records.splitlines()
                    if line
                )

    def test_identical_resubmit_is_served_from_the_store(self, tmp_path):
        with make_service(tmp_path) as service:
            client = InProcessClient(service)
            suite = tiny_suite()
            first = client.wait(client.submit(suite)["job_id"])
            assert first["report"]["execution"]["simulated"] == 3

            again = client.wait(client.submit(suite)["job_id"])
            execution = again["report"]["execution"]
            assert execution["simulated"] == 0
            assert execution["hits"] == 3
            assert execution["verified_hits"] == 3
            assert again["result_keys"] == first["result_keys"]

    def test_two_clients_submitting_concurrently_both_complete(
        self, tmp_path
    ):
        # the ISSUE acceptance scenario: one service, one store, two
        # clients racing distinct suites — both must land `done` with
        # verified artifacts
        with make_service(tmp_path, workers=2) as service:
            clients = [InProcessClient(service) for _ in range(2)]
            suites = [tiny_suite(cycles=64), tiny_suite(cycles=96)]
            done, errors = {}, []

            def run(client, suite, tag):
                try:
                    job = client.submit(suite)
                    done[tag] = client.wait(job["job_id"], timeout=120)
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(c, s, i))
                for i, (c, s) in enumerate(zip(clients, suites))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert {job["state"] for job in done.values()} == {"done"}
            for job in done.values():
                for key in job["result_keys"]:
                    assert clients[0].result(key)["sha256"]

    def test_job_that_raises_lands_in_error(self, tmp_path):
        with make_service(tmp_path) as service:
            client = InProcessClient(service)
            # `only` filtering to a family the suite lacks raises inside
            # SuiteRunner.run — the job must capture it, not vanish
            job = client.submit(tiny_suite(), only="design")
            job = client.wait(job["job_id"])
            assert job["state"] == "error"
            assert "design" in job["error"]

    def test_health_counts_jobs(self, tmp_path):
        with make_service(tmp_path) as service:
            client = InProcessClient(service)
            job = client.wait(client.submit(tiny_suite())["job_id"])
            health = client.health()
            assert health["status"] == "ok"
            assert health["jobs"]["done"] == 1
            assert health["store"] == service.store_root
            assert job["state"] == "done"


class TestValidation:
    def test_unknown_option_rejected(self, tmp_path):
        with make_service(tmp_path) as service:
            with pytest.raises(ValueError, match="unknown job options"):
                service.submit(tiny_suite(), options={"retries": 3})

    @pytest.mark.parametrize(
        "options, match",
        [
            ({"workers": 0}, "workers"),
            ({"engine": "quantum"}, "engine"),
            ({"only": "nope"}, "only"),
            ({"cache": "yes"}, "cache"),
        ],
    )
    def test_bad_option_values_rejected(self, tmp_path, options, match):
        with make_service(tmp_path) as service:
            with pytest.raises(ValueError, match=match):
                service.submit(tiny_suite(), options=options)

    def test_bad_suite_type_rejected(self, tmp_path):
        with make_service(tmp_path) as service:
            with pytest.raises(ValueError, match="suite must be"):
                service.submit(42)

    def test_submit_after_close_rejected(self, tmp_path):
        service = make_service(tmp_path)
        service.close()
        with pytest.raises(RuntimeError, match="shut down"):
            service.submit(tiny_suite())


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, tmp_path, monkeypatch):
        gate = Gate()
        monkeypatch.setattr(runner_module, "execute_cell", gate)
        with make_service(tmp_path, workers=1) as service:
            client = InProcessClient(service)
            blocker = client.submit(tiny_suite())
            queued = client.submit(tiny_suite(cycles=96))
            assert gate.started.wait(timeout=30)

            cancelled = client.cancel(queued["job_id"])
            assert cancelled["state"] == "cancelled"
            assert cancelled["error"] == "cancelled before start"

            gate.release.set()
            assert client.wait(blocker["job_id"])["state"] == "done"
            # the pool skips the cancelled job instead of reviving it
            assert client.job(queued["job_id"])["state"] == "cancelled"

    def test_cancel_running_job_stops_at_the_cell_boundary(
        self, tmp_path, monkeypatch
    ):
        gate = Gate()
        monkeypatch.setattr(runner_module, "execute_cell", gate)
        with make_service(tmp_path, workers=1) as service:
            client = InProcessClient(service)
            job = client.submit(tiny_suite())
            assert gate.started.wait(timeout=30)

            requested = client.cancel(job["job_id"])
            assert requested["state"] == "running"
            assert requested["progress"]["cancel_requested"]

            gate.release.set()
            job = client.wait(job["job_id"])
            assert job["state"] == "cancelled"
            # the in-flight cell finished; the remaining two never ran
            assert job["report"]["execution"]["cells"] == 1

    def test_cancel_terminal_job_conflicts(self, tmp_path):
        with make_service(tmp_path) as service:
            client = InProcessClient(service)
            job = client.wait(client.submit(tiny_suite())["job_id"])
            with pytest.raises(ServiceError) as err:
                client.cancel(job["job_id"])
            assert err.value.status == 409
            with pytest.raises(JobStateError):
                service.cancel(job["job_id"])


class TestRestart:
    def test_job_table_survives_a_service_restart(self, tmp_path):
        root = str(tmp_path / "store")
        with CampaignService(root) as service:
            client = InProcessClient(service)
            job = client.wait(client.submit(tiny_suite())["job_id"])
            assert job["state"] == "done"

        with CampaignService(root) as reborn:
            client = InProcessClient(reborn)
            survivor = client.job(job["job_id"])
            assert survivor["state"] == "done"
            assert survivor["result_keys"] == job["result_keys"]
            # and its artifacts are still fetchable
            assert client.records(job["result_keys"][0])

    def test_interrupted_running_job_is_recovered(self, tmp_path):
        root = str(tmp_path / "store")
        # simulate a server death mid-job: a `running` record on disk
        queue = JobQueue(root)
        spec = tiny_suite().to_dict()
        record = queue.create(suite="tiny", spec=spec)
        queue.transition(record.job_id, "running")

        with CampaignService(root) as service:  # resume=False: inspect
            assert service.recovered == [record.job_id]
            survivor = service.job(record.job_id)
            assert survivor.state == "queued"
            assert survivor.recovered

        with CampaignService(root, resume=True) as service:
            client = InProcessClient(service)
            job = client.wait(record.job_id)
            assert job["state"] == "done"
            assert job["recovered"]
            assert len(job["result_keys"]) == 3
