import pytest

from repro.utils.bitops import (
    all_bit_vectors,
    bit_slice,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    parity_of,
    popcount,
)


class TestPopcountParity:
    def test_popcount_known(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 30) - 1) == 30

    def test_popcount_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_parity_alternates_on_bitflip(self):
        for value in range(64):
            for bit in range(6):
                assert parity_of(value) != parity_of(value ^ (1 << bit))


class TestIntBitsRoundTrip:
    def test_round_trip(self):
        for width in range(1, 10):
            for value in range(1 << width):
                assert bits_to_int(int_to_bits(value, width)) == value

    def test_msb_first(self):
        assert int_to_bits(4, 3) == (1, 0, 0)
        assert bits_to_int((1, 0, 0)) == 4

    def test_width_overflow_rejected(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError):
            bits_to_int((0, 2, 1))


class TestBitSlice:
    def test_full_slice_identity(self):
        assert bit_slice(0b101101, 6, 0, 6) == 0b101101

    def test_lsb_slice(self):
        assert bit_slice(0b101101, 6, 0, 3) == 0b101

    def test_mid_slice(self):
        assert bit_slice(0b110101, 6, 1, 4) == 0b010

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bit_slice(5, 4, 3, 2)
        with pytest.raises(ValueError):
            bit_slice(5, 4, 0, 5)


class TestEnumerationAndDistance:
    def test_all_bit_vectors_count_and_order(self):
        vectors = list(all_bit_vectors(3))
        assert len(vectors) == 8
        assert vectors[0] == (0, 0, 0)
        assert vectors[5] == (1, 0, 1)

    def test_hamming_distance(self):
        assert hamming_distance((0, 1, 1), (1, 1, 0)) == 2
        assert hamming_distance((1, 1), (1, 1)) == 0

    def test_hamming_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance((1,), (1, 0))
