from fractions import Fraction

import pytest

from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import (
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
)
from repro.decoder.analysis import (
    analyze_decoder,
    classify_fault_sites,
    sa1_escape_closed_form,
    sa1_escape_exhaustive,
)
from repro.decoder.tree import DecoderTree


@pytest.fixture(scope="module")
def tree6():
    return DecoderTree(6)


@pytest.fixture(scope="module")
def mapping6():
    return ModAMapping(MOutOfNCode(3, 5), n_bits=6)


class TestClassification:
    def test_every_gate_yields_two_sites(self, tree6):
        sites = classify_fault_sites(tree6, include_inputs=False)
        assert len(sites) == 2 * tree6.circuit.num_gates
        kinds = {s.kind for s in sites}
        assert kinds == {"sa0", "sa1"}

    def test_address_sites_flagged(self, tree6):
        sites = classify_fault_sites(tree6, include_inputs=True)
        address = [s for s in sites if s.kind == "address"]
        assert len(address) == 2 * 6
        assert all(s.escape_per_cycle is None for s in address)

    def test_site_geometry(self, tree6):
        sites = classify_fault_sites(tree6, include_inputs=False)
        for site in sites:
            assert 0 <= site.block_lo < 6
            assert 1 <= site.block_width <= 6
            assert 0 <= site.sub_value < (1 << site.block_width)


class TestClosedFormsAgainstExhaustive:
    @pytest.mark.parametrize("lo,width,m1", [
        (0, 1, 0), (0, 2, 3), (2, 2, 1), (0, 4, 5), (4, 2, 2), (0, 6, 37),
    ])
    def test_mod_a_mapping(self, mapping6, lo, width, m1):
        closed = sa1_escape_closed_form(mapping6, lo, width, m1)
        exact = sa1_escape_exhaustive(mapping6, lo, width, m1)
        # the completion remap (none here: 2^6 > C) may only reduce escape
        assert closed == exact

    @pytest.mark.parametrize("lo,width,m1", [(0, 3, 2), (3, 2, 1), (0, 6, 9)])
    def test_parity_mapping(self, lo, width, m1):
        mapping = ParityMapping(6)
        closed = sa1_escape_closed_form(mapping, lo, width, m1)
        exact = sa1_escape_exhaustive(mapping, lo, width, m1)
        assert closed == exact == Fraction(1, 2)

    def test_identity_mapping_only_self_collides(self):
        code = MOutOfNCode(5, 10)  # 252 >= 2^6
        mapping = IdentityMapping(code, 6)
        assert sa1_escape_closed_form(mapping, 0, 3, 2) == Fraction(1, 8)
        assert sa1_escape_exhaustive(mapping, 0, 3, 2) == Fraction(1, 8)

    @pytest.mark.parametrize("lo,width", [(0, 2), (2, 2), (4, 2), (3, 3)])
    def test_truncated_berger(self, lo, width):
        mapping = TruncatedBergerMapping(6, k=2)  # info bits 0..3
        closed = sa1_escape_closed_form(mapping, lo, width, m1=1)
        exact = sa1_escape_exhaustive(mapping, lo, width, m1=1)
        assert closed == exact

    def test_truncated_berger_high_block_is_blind(self):
        mapping = TruncatedBergerMapping(6, k=2)
        assert sa1_escape_closed_form(mapping, 4, 2, 1) == Fraction(1)

    def test_exhaustive_refuses_huge_spaces(self):
        mapping = ParityMapping(24)
        with pytest.raises(ValueError):
            sa1_escape_exhaustive(mapping, 0, 2, 1)


class TestAnalyzeDecoder:
    def test_sa0_sites_zero_latency(self, tree6, mapping6):
        analysis = analyze_decoder(tree6, mapping6)
        assert all(s.zero_latency for s in analysis.sa0_sites)
        for s in analysis.sa0_sites:
            total = 1 << s.block_width
            assert s.escape_per_cycle == Fraction(total - 1, total)

    def test_sa1_escape_bounded_by_paper_formula(self, tree6, mapping6):
        from repro.core.latency import worst_escape_probability

        analysis = analyze_decoder(tree6, mapping6)
        for s in analysis.sa1_sites:
            bound = worst_escape_probability(s.block_width, mapping6.a)
            assert s.escape_per_cycle <= bound

    def test_small_blocks_are_zero_latency(self, tree6, mapping6):
        # 2^i <= a: only m1 collides -> zero detection latency (§III.2).
        analysis = analyze_decoder(tree6, mapping6)
        for s in analysis.sa1_sites:
            if (1 << s.block_width) <= mapping6.a:
                assert s.zero_latency

    def test_worst_escape_with_identity_mapping_is_nonexcitation(self):
        tree = DecoderTree(4)
        code = MOutOfNCode(4, 8)  # 70 >= 16
        analysis = analyze_decoder(tree, IdentityMapping(code, 4))
        # every sa1 site collides only with itself
        assert all(s.zero_latency for s in analysis.sa1_sites)

    def test_pndc_of_site(self, tree6, mapping6):
        analysis = analyze_decoder(tree6, mapping6)
        site = max(analysis.sa1_sites, key=lambda s: s.escape_per_cycle)
        assert site.pndc(10) == float(site.escape_per_cycle) ** 10

    def test_exhaustive_mode_matches_closed_form_without_remap(self, tree6):
        mapping = ModAMapping(MOutOfNCode(3, 5), n_bits=6, complete=False)
        fast = analyze_decoder(tree6, mapping, exhaustive=False)
        slow = analyze_decoder(tree6, mapping, exhaustive=True)
        for a, b in zip(fast.sa1_sites, slow.sa1_sites):
            assert a.escape_per_cycle == b.escape_per_cycle

    def test_completion_remap_only_reduces_escape(self, tree6):
        # The remap reassigns one address to a fresh word: collisions can
        # only disappear, so the closed form is a safe upper bound.
        mapping = ModAMapping(MOutOfNCode(3, 5), n_bits=6, complete=True)
        assert mapping._remap  # address 9 -> unused word index 9
        fast = analyze_decoder(tree6, mapping, exhaustive=False)
        slow = analyze_decoder(tree6, mapping, exhaustive=True)
        strictly_better = 0
        for a, b in zip(fast.sa1_sites, slow.sa1_sites):
            assert b.escape_per_cycle <= a.escape_per_cycle
            if b.escape_per_cycle < a.escape_per_cycle:
                strictly_better += 1
        assert strictly_better > 0

    def test_histogram_counts_all_sa1_sites(self, tree6, mapping6):
        analysis = analyze_decoder(tree6, mapping6)
        hist = analysis.escape_histogram()
        assert sum(hist.values()) == len(analysis.sa1_sites)

    def test_zero_latency_fraction_in_unit_interval(self, tree6, mapping6):
        analysis = analyze_decoder(tree6, mapping6)
        assert 0.0 < analysis.zero_latency_fraction() <= 1.0
