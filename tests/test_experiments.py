import pytest

from repro.experiments.ablations import (
    run_odd_a_ablation,
    run_unordered_ablation,
)
from repro.experiments.area_example import generate_area_example
from repro.experiments.common import format_table, parse_code_name
from repro.experiments.latency_empirical import run_latency_experiment
from repro.experiments.safety_example import generate_safety_example
from repro.experiments.structure import (
    build_figure3_instance,
    verify_structure,
)
from repro.experiments.table1 import generate_table1, render_table1
from repro.experiments.table2 import generate_table2, render_table2


class TestCommon:
    def test_parse_code_name(self):
        code = parse_code_name("5-out-of-9")
        assert (code.m, code.n) == (5, 9)
        with pytest.raises(ValueError):
            parse_code_name("garbage")

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return generate_table1()

    def test_six_rows(self, rows):
        assert [r.c for r in rows] == [2, 5, 10, 20, 30, 40]

    def test_paper_matching_rows(self, rows):
        matching = {r.c for r in rows if r.matches_paper}
        assert matching == {2, 10, 20, 40}

    def test_mismatched_rows_are_cheaper_and_meet_spec(self, rows):
        for row in rows:
            assert row.our_pndc <= 1e-9
            if not row.matches_paper:
                paper_r = parse_code_name(row.paper_code).n
                ours_r = parse_code_name(row.our_code).n
                assert ours_r < paper_r

    def test_overheads_monotone_down_the_table(self, rows):
        for col in range(3):
            values = [r.our_overheads[col] for r in rows]
            assert values == sorted(values, reverse=True)

    def test_model_tracks_reported_numbers(self, rows):
        for row in rows:
            for model, reported in zip(
                row.paper_overheads_model, row.paper_overheads_reported
            ):
                assert model == pytest.approx(reported, rel=0.15)

    def test_render(self, rows):
        text = render_table1(rows)
        assert "9-out-of-18" in text and "16x2K" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return generate_table2()

    def test_all_rows_match_paper(self, rows):
        assert all(r.matches_paper for r in rows)

    def test_known_inconsistent_row_flagged(self, rows):
        flags = {r.pndc: r.our_meets_target for r in rows}
        assert flags[1e-20] is False
        assert all(flags[p] for p in flags if p != 1e-20)

    def test_overheads_monotone(self, rows):
        for col in range(3):
            values = [r.our_overheads[col] for r in rows]
            assert values == sorted(values)

    def test_render(self, rows):
        assert "7-out-of-13" in render_table2(rows)


class TestSafetyAndAreaExamples:
    def test_safety_example_numbers(self):
        ex = generate_safety_example()
        assert ex.rate_full_coverage_scheme == pytest.approx(1e-9)
        assert ex.rate_array_only == pytest.approx(1.0009e-6, rel=1e-3)
        assert ex.orders_of_magnitude_lost == pytest.approx(3.0, abs=0.01)

    def test_area_example_parity_terms_match_paper(self):
        ex = generate_area_example()
        assert ex.parity_bit_percent == pytest.approx(6.25)
        assert ex.parity_checker_percent == pytest.approx(0.15)
        # The ROM term from the formula as printed (documented gap vs 1.9)
        assert ex.rom_percent == pytest.approx(1.245, abs=0.01)


class TestStructure:
    def test_all_checks_pass(self):
        report = verify_structure()
        assert report.all_ok, report.checks

    def test_custom_instance(self):
        memory = build_figure3_instance(words=64, bits=4, column_mux=2)
        report = verify_structure(memory)
        assert report.all_ok


class TestLatencyEmpirical:
    @pytest.fixture(scope="class")
    def experiment(self):
        return run_latency_experiment(n_bits=5, cycles=300, seed=3)

    def test_measured_tracks_analytic(self, experiment):
        for c, (measured, analytic) in experiment.curve.items():
            if c <= 50:
                assert measured == pytest.approx(analytic, abs=0.12), c

    def test_sa0_zero_latency(self, experiment):
        assert experiment.zero_latency_sa0

    def test_high_coverage(self, experiment):
        assert experiment.coverage > 0.95


class TestAblations:
    def test_odd_a_ablation(self):
        result = run_odd_a_ablation(n_bits=5, k=2, cycles=200)
        assert result.blind_sites_mod_a == 0
        assert result.blind_sites_berger > 0
        assert result.coverage_mod_a > result.coverage_truncated_berger

    def test_unordered_ablation(self):
        result = run_unordered_ablation(n_bits=5, cycles=200)
        assert result.unordered_is_and_closed
        assert not result.ordered_is_and_closed
        assert result.coverage_unordered > result.coverage_ordered
