import pytest

from repro.experiments.ecc_baseline import (
    run_ecc_baseline,
    storage_overhead_rows,
)


class TestStorageOverheads:
    def test_rows(self):
        rows = storage_overhead_rows()
        assert [bits for bits, _, _ in rows] == [16, 32, 64]
        for bits, parity_pct, secded_pct in rows:
            assert parity_pct == pytest.approx(100.0 / bits)
            assert secded_pct > parity_pct

    def test_known_values(self):
        rows = dict(
            (bits, (parity, secded))
            for bits, parity, secded in storage_overhead_rows()
        )
        assert rows[16][0] == pytest.approx(6.25)
        assert rows[16][1] == pytest.approx(37.5)   # (5+1)/16
        assert rows[64][1] == pytest.approx(12.5)   # (7+1)/64


class TestMergeBehaviour:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ecc_baseline(data_bits=16, trials=1500, seed=5)

    def test_counts_partition_trials(self, result):
        merge = result.secded_merge
        assert merge.clean + merge.detected + merge.silent_wrong == (
            merge.trials
        )

    def test_secded_misses_a_large_fraction_of_merges(self, result):
        # the headline: ECC on the data path does not cover decoder
        # faults — a substantial share of merges silently corrupt data
        assert result.secded_merge.silent_wrong_fraction > 0.15

    def test_secded_detects_some_but_not_all(self, result):
        assert 0.0 < result.secded_merge.detected_fraction < 1.0

    def test_parity_detects_about_half_of_visible_merges(self, result):
        # AND-merge flips a ~binomial number of 1s to 0: odd-weight
        # changes are detected, about half
        assert result.parity_merge_detected_fraction == pytest.approx(
            0.5, abs=0.1
        )

    def test_deterministic(self):
        a = run_ecc_baseline(data_bits=8, trials=200, seed=3)
        b = run_ecc_baseline(data_bits=8, trials=200, seed=3)
        assert (
            a.secded_merge.silent_wrong
            == b.secded_merge.silent_wrong
        )
