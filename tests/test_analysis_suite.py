"""Suite/spec lint rules plus the eager-validation regression: a
malformed spec exits non-zero with a one-line diagnostic, never a
traceback, and the lint rules catch what eager validation cannot —
cross-cell collisions, provenance gaps, registries mutated after load.
"""

import json

import pytest

from repro.analysis import AnalysisError, analyze
from repro.cli import main
from repro.suite import builtin_suite
from repro.suite.populations import POPULATIONS
from repro.suite.runner import SuiteRunner
from repro.suite.spec import MatrixBlock, SuiteSpec, _validate_workload

ORG = {"words": 64, "bits": 8, "column_mux": 4}
UPSETS = {"population": "upset-stride", "stride": 16}
PINNED = {"family": "uniform", "cycles": 64, "seed": 1}


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def transient_block(**overrides):
    kwargs = dict(
        family="transient",
        targets=(ORG,),
        workloads=(PINNED,),
        scenarios=UPSETS,
    )
    kwargs.update(overrides)
    return MatrixBlock(**kwargs)


class TestSuiteRules:
    def test_builtin_suites_lint_clean(self):
        for name in ("paper_grid", "smoke"):
            report = analyze(builtin_suite(name))
            assert report.kind == "suite"
            assert report.clean, report.render()

    def test_matrix_block_is_wrapped_into_a_suite(self):
        report = analyze(transient_block(label="solo"))
        assert report.kind == "suite"
        assert report.target == "solo"
        assert report.clean, report.render()

    def test_duplicate_cells_collide_on_one_store_key(self):
        block = transient_block(targets=(ORG, dict(ORG)))
        report = analyze(SuiteSpec(name="dupes", blocks=(block,)))
        assert report.errors == 0
        assert report.warnings == 1
        finding = report.findings[0]
        assert finding.rule == "suite-duplicate"
        assert len(finding.counterexample["cells"]) == 2
        # warnings only gate in strict mode
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_unpinned_workload_is_a_provenance_warning(self):
        block = transient_block(workloads=({"family": "uniform"},))
        report = analyze(SuiteSpec(name="loose", blocks=(block,)))
        warnings = [
            f for f in report.findings if f.rule == "suite-provenance"
        ]
        assert len(warnings) == 1
        assert "cycles" in warnings[0].message
        assert "seed" in warnings[0].message

    def test_march_workloads_need_no_cycle_pin(self):
        block = transient_block(workloads=({"family": "march"},))
        report = analyze(SuiteSpec(name="march", blocks=(block,)))
        assert all(
            f.rule != "suite-provenance" for f in report.findings
        )

    def test_unknown_engine_policy_can_never_run(self):
        block = transient_block(policies=({"engine": "warp"},))
        report = analyze(SuiteSpec(name="engines", blocks=(block,)))
        errors = [f for f in report.findings if f.rule == "suite-engine"]
        assert len(errors) == 1
        assert "never run" in errors[0].message

    def test_population_unregistered_after_load_is_caught(self):
        POPULATIONS.register("test-tmp-pop", lambda target, params: [])
        try:
            block = transient_block(
                scenarios={"population": "test-tmp-pop"}
            )
        finally:
            POPULATIONS.unregister("test-tmp-pop")
        report = analyze(SuiteSpec(name="stale", blocks=(block,)))
        errors = [
            f for f in report.findings if f.rule == "suite-population"
        ]
        assert len(errors) == 1
        assert "test-tmp-pop" in errors[0].message

    def test_workload_mutated_after_load_is_caught(self):
        block = transient_block()
        block.workloads[0]["family"] = "bogus"  # in-place mutation
        report = analyze(SuiteSpec(name="mutated", blocks=(block,)))
        errors = [
            f for f in report.findings if f.rule == "suite-workload"
        ]
        assert len(errors) == 1
        assert "bogus" in errors[0].message

    def test_unbuildable_target_is_caught(self):
        block = transient_block(targets=({"words": 64},))
        report = analyze(SuiteSpec(name="targets", blocks=(block,)))
        errors = [f for f in report.findings if f.rule == "suite-target"]
        assert len(errors) == 1
        assert "does not build" in errors[0].message


class TestEagerSpecValidation:
    def test_unknown_workload_family(self):
        with pytest.raises(ValueError, match="unknown workload family"):
            _validate_workload({"family": "warp"}, "b")

    def test_unknown_workload_kind(self):
        with pytest.raises(ValueError, match="unknown workload kind"):
            _validate_workload({"kind": "warp"}, "b")

    def test_unknown_march_test(self):
        with pytest.raises(ValueError, match="unknown march test"):
            _validate_workload({"test": "March Z"}, "b")

    def test_workload_without_a_recognised_key(self):
        with pytest.raises(ValueError, match="'family', 'kind' or 'test'"):
            _validate_workload({"cycles": 64}, "b")

    def test_block_construction_validates_workloads_eagerly(self):
        with pytest.raises(ValueError, match="unknown workload family"):
            transient_block(workloads=({"family": "warp"},))

    def test_malformed_spec_file_exits_one_line_no_traceback(
        self, capsys, tmp_path
    ):
        spec = builtin_suite("smoke").to_dict()
        spec["blocks"][0]["workloads"] = [{"family": "warp"}]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(spec))
        code, out, err = run_cli(capsys, "suite", "show", str(path))
        assert code == 1
        assert err.startswith("error:")
        assert "unknown workload family" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


class TestRunnerLintHook:
    def test_lint_true_runs_a_clean_suite(self, tmp_path):
        suite = SuiteSpec(
            name="ok",
            blocks=(
                MatrixBlock(family="design", targets=(dict(ORG),)),
            ),
        )
        result = SuiteRunner(store=str(tmp_path / "store")).run(
            suite, lint=True
        )
        assert result is not None

    def test_lint_true_refuses_a_suite_that_can_never_run(self, tmp_path):
        POPULATIONS.register("test-doomed-pop", lambda target, params: [])
        try:
            block = transient_block(
                scenarios={"population": "test-doomed-pop"}
            )
        finally:
            POPULATIONS.unregister("test-doomed-pop")
        suite = SuiteSpec(name="doomed", blocks=(block,))
        runner = SuiteRunner(store=str(tmp_path / "store"))
        with pytest.raises(AnalysisError) as excinfo:
            runner.run(suite, lint=True)
        assert "suite-population" in str(excinfo.value)
        assert excinfo.value.report.errors == 1
