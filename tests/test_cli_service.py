"""The 1.6 CLI surface: `repro store stats|verify` and the service
client commands (`repro submit|jobs|fetch`) driven against a live
in-thread server.  Every failure mode exits non-zero with a one-line
diagnostic; `store verify` exits 2 on corruption so CI can gate on
it."""

import json

import pytest

from repro.cli import main
from repro.results import ResultStore, campaign_key
from repro.service import CampaignService, serving
from repro.suite import SuiteRunner

from test_results_store import sample_set
from test_suite import tiny_suite


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def seeded_store(tmp_path):
    """A store with one suite's artifacts plus a loose campaign entry."""
    root = str(tmp_path / "store")
    SuiteRunner(store=root).run(tiny_suite())
    ResultStore(root).put(
        campaign_key({"campaign": "loose"}), sample_set(), {"x": 1}
    )
    return root


class TestStoreStats:
    def test_stats_text(self, capsys, seeded_store):
        code, out, _ = run_cli(
            capsys, "store", "stats", "--store", seeded_store
        )
        assert code == 0
        assert seeded_store in out
        assert "campaigns" in out and "total_bytes" in out

    def test_stats_json(self, capsys, seeded_store):
        code, out, _ = run_cli(
            capsys, "store", "stats", "--store", seeded_store, "--json"
        )
        assert code == 0
        usage = json.loads(out)
        assert usage["campaigns"] == 4  # 3 suite cells + the loose entry
        assert usage["payload_bytes"] > 0


class TestStoreVerify:
    def test_clean_store_exits_zero(self, capsys, seeded_store):
        code, out, _ = run_cli(
            capsys, "store", "verify", "--store", seeded_store
        )
        assert code == 0
        assert "store ok" in out

    def test_corrupt_store_exits_two(self, capsys, seeded_store):
        store = ResultStore(seeded_store)
        victim = store.keys()[0]
        with open(store._payload_path(victim), "a") as handle:
            handle.write('{"f":"evil","k":"sa1"}\n')
        code, out, _ = run_cli(
            capsys, "store", "verify", "--store", seeded_store
        )
        assert code == 2
        assert "FAIL" in out and "sha256 mismatch" in out

    def test_corrupt_store_exits_two_in_json_mode(
        self, capsys, seeded_store
    ):
        store = ResultStore(seeded_store)
        with open(store._payload_path(store.keys()[0]), "a") as handle:
            handle.write("garbage\n")
        code, out, _ = run_cli(
            capsys, "store", "verify", "--store", seeded_store, "--json"
        )
        assert code == 2
        assert json.loads(out)["ok"] is False


@pytest.fixture
def live_service(tmp_path):
    """A real server on an ephemeral port, torn down after the test."""
    with CampaignService(str(tmp_path / "store"), workers=1) as service:
        with serving(service) as url:
            yield url, service


class TestClientCommands:
    def test_submit_wait_jobs_fetch_round_trip(
        self, capsys, tmp_path, live_service
    ):
        url, _service = live_service
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(tiny_suite().to_json())

        code, out, err = run_cli(
            capsys, "submit", str(spec_path), "--url", url, "--wait",
            "--json"
        )
        assert code == 0
        job = json.loads(out)
        assert job["state"] == "done"
        # progress streamed to stderr (polling may skip snapshots on a
        # fast suite, but the final [3/3] always lands), stdout stayed
        # machine-readable JSON
        assert "[3/3]" in err

        code, out, _ = run_cli(capsys, "jobs", "--url", url)
        assert code == 0
        assert job["job_id"] in out and "done" in out

        code, out, _ = run_cli(
            capsys, "jobs", job["job_id"], "--url", url
        )
        assert code == 0
        assert "3/3" in out

        key = job["result_keys"][0]
        code, out, _ = run_cli(capsys, "fetch", key, "--url", url)
        assert code == 0
        assert json.loads(out)["kind"] == "campaign"

        code, out, _ = run_cli(
            capsys, "fetch", key, "--records", "--url", url
        )
        assert code == 0
        lines = out.splitlines()
        assert lines and all(json.loads(line) for line in lines)

    def test_submit_without_wait_returns_queued_job(
        self, capsys, tmp_path, live_service
    ):
        url, service = live_service
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(tiny_suite().to_json())
        code, out, _ = run_cli(
            capsys, "submit", str(spec_path), "--url", url
        )
        assert code == 0
        assert "poll with" in out
        # drain the job so the fixture teardown isn't racing a run
        job_id = out.split()[1]
        from repro.service import InProcessClient

        InProcessClient(service).wait(job_id, timeout=120)

    def test_submit_builtin_with_bad_option_fails_cleanly(
        self, capsys, live_service
    ):
        url, _service = live_service
        code, _, err = run_cli(
            capsys, "submit", "smoke", "--url", url, "--workers", "0"
        )
        assert code == 1
        assert "error:" in err and "workers" in err

    def test_malformed_spec_file_fails_cleanly(
        self, capsys, tmp_path, live_service
    ):
        url, _service = live_service
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, _, err = run_cli(
            capsys, "submit", str(bad), "--url", url
        )
        assert code == 1
        assert "malformed suite spec" in err

    def test_unknown_job_fails_cleanly(self, capsys, live_service):
        url, _service = live_service
        code, _, err = run_cli(capsys, "jobs", "nope", "--url", url)
        assert code == 1
        assert "error:" in err

    def test_unreachable_server_fails_cleanly(self, capsys):
        code, _, err = run_cli(
            capsys, "jobs", "--url", "http://127.0.0.1:9"
        )
        assert code == 1
        assert "cannot reach" in err


class TestServeCommand:
    """`repro serve` in-process: bind, banner, clean shutdown (the CI
    service-smoke job drives the real subprocess + SIGINT path)."""

    @pytest.fixture
    def interrupted_server(self, monkeypatch):
        """Make serve_forever raise immediately, as ctrl-C would."""
        from http.server import ThreadingHTTPServer

        def fake_serve_forever(self, poll_interval=0.5):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            ThreadingHTTPServer, "serve_forever", fake_serve_forever
        )

    def test_serve_banner_and_clean_shutdown(
        self, capsys, tmp_path, interrupted_server
    ):
        code, _, err = run_cli(
            capsys, "serve", "--store", str(tmp_path / "store"),
            "--port", "0"
        )
        assert code == 0
        assert "repro service on http://127.0.0.1:" in err
        assert "2 job worker(s)" in err
        assert "repro service stopped" in err

    def test_serve_reports_recovered_jobs(
        self, capsys, tmp_path, interrupted_server
    ):
        from repro.service import JobQueue

        root = str(tmp_path / "store")
        queue = JobQueue(root)
        record = queue.create(
            suite="tiny", spec=tiny_suite().to_dict()
        )
        queue.transition(record.job_id, "running")

        code, _, err = run_cli(capsys, "serve", "--store", root)
        assert code == 0
        assert f"recovered 1 interrupted job(s): {record.job_id}" in err

    def test_serve_rejects_bad_workers(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "serve", "--store", str(tmp_path / "store"),
            "--workers", "0"
        )
        assert code == 1
        assert "--workers" in err
