"""CLI surface of the suite orchestrator (`repro suite run|ls|show`)
plus the hardened error paths: every failure mode exits non-zero with a
one-line diagnostic and never a traceback."""

import json

import pytest

from repro.cli import main
from repro.suite import builtin_suite


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSuiteLsShow:
    def test_ls_lists_builtins(self, capsys):
        code, out, _ = run_cli(capsys, "suite", "ls", "--json")
        assert code == 0
        names = {entry["name"] for entry in json.loads(out)}
        assert {"paper_grid", "smoke"} <= names

    def test_ls_text_table(self, capsys):
        code, out, _ = run_cli(capsys, "suite", "ls")
        assert code == 0
        assert "paper_grid" in out

    def test_show_expands_cells(self, capsys):
        code, out, _ = run_cli(capsys, "suite", "show", "paper_grid",
                               "--json")
        assert code == 0
        data = json.loads(out)
        assert len(data["cells"]) == 46
        assert data["name"] == "paper_grid"

    def test_show_accepts_a_spec_file(self, capsys, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(builtin_suite("smoke").to_json())
        code, out, _ = run_cli(capsys, "suite", "show", str(path))
        assert code == 0
        assert "smoke" in out


class TestSuiteRun:
    def test_run_then_resume_via_cli(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        code, out, err = run_cli(
            capsys, "suite", "run", "smoke", "--store", store, "--json"
        )
        assert code == 0
        first = json.loads(out)
        assert first["execution"]["simulated"] == first["execution"]["cells"]
        # progress streamed per cell on stderr, stdout stayed JSON
        assert err.count("]") >= first["execution"]["cells"]

        code, out, _ = run_cli(
            capsys, "suite", "run", "smoke", "--store", store, "--json",
            "--quiet",
        )
        assert code == 0
        second = json.loads(out)
        assert second["execution"]["hits"] == second["execution"]["cells"]
        assert second["execution"]["simulated"] == 0
        assert (
            second["execution"]["verified_hits"]
            == second["execution"]["cells"]
        )

        def stable(payload):
            payload = dict(payload)
            payload.pop("execution")
            payload["cells"] = [
                {k: v for k, v in cell.items() if k != "execution"}
                for cell in payload["cells"]
            ]
            return payload

        assert stable(first) == stable(second)

    def test_only_filter(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "suite", "run", "smoke",
            "--store", str(tmp_path / "s"),
            "--only", "march", "--json", "--quiet",
        )
        assert code == 0
        data = json.loads(out)
        assert all(cell["family"] == "march" for cell in data["cells"])

    def test_errors_surface_in_exit_code(self, capsys, tmp_path):
        # a spec whose only cell fails (parity-less transient RAM):
        # fail-soft still renders the report but exits non-zero
        from repro.suite import MatrixBlock, SuiteSpec

        spec = SuiteSpec(
            name="broken",
            blocks=(
                MatrixBlock(
                    family="transient",
                    targets=({"words": 16, "bits": 8, "column_mux": 4,
                              "parity": False},),
                    workloads=(
                        {"family": "uniform", "cycles": 16, "seed": 1},
                    ),
                    scenarios={"population": "upset-stride"},
                ),
            ),
        )
        path = tmp_path / "broken.json"
        path.write_text(spec.to_json())
        code, out, _ = run_cli(
            capsys, "suite", "run", str(path),
            "--store", str(tmp_path / "s"), "--quiet",
        )
        assert code == 1
        assert "error" in out


class TestHardenedErrorPaths:
    """Unknown suite, malformed spec, conflicting engine flags and a
    missing store directory: non-zero exit, one-line diagnostic, no
    traceback."""

    def test_unknown_suite_name(self, capsys):
        code, out, err = run_cli(capsys, "suite", "run", "nope")
        assert code == 1
        assert err.startswith("error: unknown suite 'nope'")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_malformed_spec_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{this is not json")
        code, out, err = run_cli(capsys, "suite", "run", str(path))
        assert code == 1
        assert "malformed suite spec" in err
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err
        # valid JSON that is not a suite is diagnosed, not dumped
        path.write_text('{"name": "x"}')
        code, _, err = run_cli(capsys, "suite", "show", str(path))
        assert code == 1
        assert "'blocks'" in err

    def test_conflicting_packed_serial(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["suite", "run", "smoke", "--packed", "--serial"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "not allowed with" in err
        assert "Traceback" not in err

    def test_missing_store_directory(self, capsys, tmp_path):
        missing = str(tmp_path / "does-not-exist")
        code, _, err = run_cli(
            capsys, "results", "ls", "--store", missing
        )
        assert code == 1
        assert err.startswith("error: no result store at")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err


class TestHelpEpilog:
    def test_help_documents_suite_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro suite run paper_grid --store S" in out
        assert "verified hit" in out
