import pytest

from repro.circuits.faults import NetStuckAt
from repro.decoder.tree import DecoderTree, build_decoder


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_one_hot_decode(self, n):
        tree = DecoderTree(n)
        for address in range(1 << n):
            outs = tree.decode(address)
            assert sum(outs) == 1
            assert outs[address] == 1

    def test_non_power_of_two_widths(self):
        # n = 3, 5, 6, 7 exercise the carried-block path of the paper.
        for n in (3, 5, 7):
            tree = DecoderTree(n)
            assert tree.selected_lines(0) == (0,)
            assert tree.selected_lines((1 << n) - 1) == ((1 << n) - 1,)

    def test_invalid_address(self):
        with pytest.raises(ValueError):
            DecoderTree(3).decode(8)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            DecoderTree(0)

    def test_build_decoder_helper(self):
        assert build_decoder(4).num_outputs == 16


class TestStructure:
    def test_level0_blocks(self):
        tree = DecoderTree(4)
        level0 = [b for b in tree.blocks if b.level == 0]
        assert len(level0) == 4
        assert all(b.width == 1 and b.num_outputs == 2 for b in level0)

    def test_root_spans_all_bits(self):
        tree = DecoderTree(5)
        assert (tree.root.lo, tree.root.hi) == (0, 5)
        assert tree.root.num_outputs == 32

    def test_gate_count_power_of_two(self):
        # n=4: 4 inverters + 2 blocks of 4 + 1 block of 16 = 4 + 8 + 16.
        assert DecoderTree(4).circuit.num_gates == 28

    def test_every_gate_belongs_to_a_block(self):
        tree = DecoderTree(5)
        for gate in tree.circuit.gates:
            site = tree.site_of_net(gate.output)
            assert site is not None
            block, value = site
            assert block.output_nets[value] == gate.output

    def test_block_output_values(self):
        tree = DecoderTree(4)
        # the root block's output v must decode address v
        for value in range(16):
            outs = tree.decode(value)
            assert outs.index(1) == value

    def test_adjacency_enforced(self):
        tree = DecoderTree(2)
        level0 = [b for b in tree.blocks if b.level == 0]
        with pytest.raises(ValueError):
            tree._combine(level0[0], level0[0], 1)


class TestPaperProperties:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_property_a_exactly_one_active_output_per_block(self, n):
        tree = DecoderTree(n)
        for address in range(1 << n):
            assert tree.check_property_a(address)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_property_b_block_all_zero_forces_decoder_all_zero(self, n):
        tree = DecoderTree(n)
        for block in tree.blocks:
            assert tree.check_property_b(block, address=0)
            assert tree.check_property_b(block, address=(1 << n) - 1)


class TestFaultBehaviour:
    def test_sa0_on_selected_line_deselects_everything(self):
        tree = DecoderTree(3)
        line5 = tree.root.output_nets[5]
        outs = tree.decode(5, faults=(NetStuckAt(line5, 0),))
        assert sum(outs) == 0

    def test_sa1_selects_exactly_two_lines(self):
        tree = DecoderTree(4)
        line3 = tree.root.output_nets[3]
        fault = NetStuckAt(line3, 1)
        for address in range(16):
            selected = tree.selected_lines(address, faults=(fault,))
            if address == 3:
                assert selected == (3,)
            else:
                assert set(selected) == {3, address}

    def test_internal_sa1_merges_two_lines_differing_on_block_bits(self):
        tree = DecoderTree(4)
        # pick an internal (non-root) block output
        internal = [b for b in tree.blocks if 0 < b.level and b is not tree.root]
        block = internal[0]
        m1 = 2 % block.num_outputs
        fault = NetStuckAt(block.output_nets[m1], 1)
        mask = ((1 << block.width) - 1) << block.lo
        for address in range(16):
            selected = tree.selected_lines(address, faults=(fault,))
            if (address & mask) >> block.lo == m1:
                assert selected == (address,)
            else:
                assert len(selected) == 2
                other = [x for x in selected if x != address][0]
                # merged line differs from the address only inside the block
                assert (other & ~mask) == (address & ~mask)
                assert (other & mask) >> block.lo == m1

    def test_inverter_sa1_behaves_like_width1_merge(self):
        tree = DecoderTree(3)
        level0 = [b for b in tree.blocks if b.level == 0][0]
        comp_net = level0.output_nets[0]  # complement literal
        fault = NetStuckAt(comp_net, 1)
        # when a0=1, both the complement and direct are high -> two lines
        selected = tree.selected_lines(0b001, faults=(fault,))
        assert set(selected) == {0b000, 0b001}
