import pytest

from repro.memory.organization import (
    PAPER_ORGS,
    MemoryOrganization,
    paper_org,
)


class TestDerivedGeometry:
    def test_paper_example_1k16(self):
        org = MemoryOrganization(1024, 16, column_mux=8)
        assert (org.n, org.p, org.s) == (10, 7, 3)
        assert org.rows == 128
        assert org.array_columns == 128
        assert org.capacity_bits == 16384

    def test_paper_orgs_table_sizes(self):
        assert [o.label() for o in PAPER_ORGS] == ["16x2K", "32x4K", "64x8K"]
        assert [o.p for o in PAPER_ORGS] == [8, 9, 10]
        assert all(o.s == 3 for o in PAPER_ORGS)

    def test_paper_org_lookup(self):
        assert paper_org("32x4K").words == 4096
        with pytest.raises(KeyError):
            paper_org("8x1K")

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryOrganization(1000, 16)  # not a power of two
        with pytest.raises(ValueError):
            MemoryOrganization(16, 8, column_mux=3)
        with pytest.raises(ValueError):
            MemoryOrganization(8, 8, column_mux=8)  # mux eats all bits
        with pytest.raises(ValueError):
            MemoryOrganization(16, 0)


class TestAddressSplitting:
    def test_split_join_round_trip(self):
        org = MemoryOrganization(256, 8, column_mux=4)
        for address in range(256):
            row, col = org.split_address(address)
            assert org.join_address(row, col) == address

    def test_low_bits_select_column(self):
        org = MemoryOrganization(64, 4, column_mux=8)
        assert org.split_address(0b101_011) == (0b101, 0b011)

    def test_range_validation(self):
        org = MemoryOrganization(64, 4, column_mux=8)
        with pytest.raises(ValueError):
            org.split_address(64)
        with pytest.raises(ValueError):
            org.join_address(8, 0)
        with pytest.raises(ValueError):
            org.join_address(0, 8)

    def test_label_non_k(self):
        assert MemoryOrganization(512, 8, column_mux=4).label() == "8x512"
