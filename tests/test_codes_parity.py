import pytest

from repro.codes.parity import ParityCode
from repro.utils.bitops import all_bit_vectors


class TestEncoding:
    def test_even_parity_examples(self):
        code = ParityCode(3)
        assert code.encode((0, 0, 0)) == (0, 0, 0, 0)
        assert code.encode((1, 0, 0)) == (1, 0, 0, 1)
        assert code.encode((1, 1, 0)) == (1, 1, 0, 0)

    def test_odd_parity_examples(self):
        code = ParityCode(3, even=False)
        assert code.encode((0, 0, 0)) == (0, 0, 0, 1)
        assert code.encode((1, 1, 1)) == (1, 1, 1, 0)

    def test_every_encoding_is_codeword(self):
        for even in (True, False):
            code = ParityCode(4, even=even)
            for data in all_bit_vectors(4):
                assert code.is_codeword(code.encode(data))

    def test_wrong_data_width_rejected(self):
        with pytest.raises(ValueError):
            ParityCode(3).encode((1, 0))

    def test_zero_data_bits_rejected(self):
        with pytest.raises(ValueError):
            ParityCode(0)


class TestCodeSpace:
    def test_cardinality(self):
        assert ParityCode(5).cardinality() == 32
        assert len(list(ParityCode(5).words())) == 32

    def test_exactly_half_the_space_is_code(self):
        code = ParityCode(4)
        members = [v for v in all_bit_vectors(5) if code.is_codeword(v)]
        assert len(members) == 16

    def test_wrong_length_never_codeword(self):
        assert not ParityCode(4).is_codeword((0, 0, 0, 0))

    def test_minimum_distance_is_two(self):
        assert ParityCode(3).minimum_distance() == 2


class TestDetection:
    def test_single_bit_flip_always_detected(self):
        code = ParityCode(4)
        for data in all_bit_vectors(4):
            word = list(code.encode(data))
            for position in range(5):
                word[position] ^= 1
                assert not code.is_codeword(word)
                word[position] ^= 1

    def test_detects_odd_error_patterns_only(self):
        code = ParityCode(6)
        assert code.detects([2])
        assert code.detects([0, 3, 5])
        assert not code.detects([1, 4])
        assert not code.detects([])

    def test_detects_position_validation(self):
        with pytest.raises(ValueError):
            ParityCode(3).detects([7])

    def test_double_flip_escapes(self):
        # The §II premise: parity covers single faults only.
        code = ParityCode(4)
        word = list(code.encode((1, 0, 1, 0)))
        word[0] ^= 1
        word[2] ^= 1
        assert code.is_codeword(word)
