import pytest

from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.selection import (
    SelectionPolicy,
    evaluate_code,
    select_code,
    select_zero_latency_code,
)


class TestWorkedExample:
    def test_section_3_2_example(self):
        # c=10, Pndc=1e-9 -> 3-out-of-5, final mapping modulus 9.
        sel = select_code(10, 1e-9)
        assert sel.code_name == "3-out-of-5"
        assert sel.a_final == 9
        assert sel.mapping_kind == "mod"
        assert sel.meets_target
        assert sel.achieved_pndc == pytest.approx(2.0 ** -30)

    def test_describe_is_informative(self):
        text = select_code(10, 1e-9).describe()
        assert "3-out-of-5" in text and "meets" in text


class TestTable1ExactPolicy:
    # our exact reproduction: 4 of 6 rows match; c=5 and c=30 are rows
    # where the paper over-provisions (see DESIGN.md / EXPERIMENTS.md)
    EXPECTED = {
        2: "9-out-of-18",
        5: "4-out-of-8",
        10: "3-out-of-5",
        20: "2-out-of-4",
        30: "1-out-of-2",
        40: "1-out-of-2",
    }

    @pytest.mark.parametrize("c", sorted(EXPECTED))
    def test_selection(self, c):
        sel = select_code(c, 1e-9, policy=SelectionPolicy.EXACT)
        assert sel.code_name == self.EXPECTED[c]
        assert sel.meets_target

    @pytest.mark.parametrize("c", sorted(EXPECTED))
    def test_exact_policy_always_meets_spec(self, c):
        sel = select_code(c, 1e-9, policy=SelectionPolicy.EXACT)
        assert sel.achieved_pndc <= 1e-9


class TestTable2ApproximatePolicy:
    # the paper's own sizing: all six rows reproduce
    EXPECTED = {
        1e-2: "1-out-of-2",
        1e-5: "2-out-of-4",
        1e-9: "3-out-of-5",
        1e-15: "4-out-of-7",
        1e-20: "5-out-of-9",
        1e-30: "7-out-of-13",
    }

    @pytest.mark.parametrize("pndc", sorted(EXPECTED))
    def test_selection(self, pndc):
        sel = select_code(10, pndc, policy=SelectionPolicy.APPROXIMATE)
        assert sel.code_name == self.EXPECTED[pndc]

    def test_1e20_row_misses_exact_bound(self):
        # the known inconsistency: 5-out-of-9 (a=125) achieves 8.7e-19,
        # not 1e-20, under the exact ceil bound
        sel = select_code(10, 1e-20, policy=SelectionPolicy.APPROXIMATE)
        assert sel.code_name == "5-out-of-9"
        assert not sel.meets_target

    def test_exact_policy_widens_1e20_row(self):
        sel = select_code(10, 1e-20, policy=SelectionPolicy.EXACT)
        assert sel.code.n == 10
        assert sel.meets_target


class TestGeneralBehaviour:
    def test_monotone_in_c(self):
        # more allowed latency never requires a wider ROM
        widths = [
            select_code(c, 1e-9).rom_width for c in (1, 2, 5, 10, 20, 40)
        ]
        assert widths == sorted(widths, reverse=True)

    def test_monotone_in_pndc(self):
        widths = [
            select_code(10, p).rom_width
            for p in (1e-2, 1e-5, 1e-9, 1e-15, 1e-20, 1e-30)
        ]
        assert widths == sorted(widths)

    def test_parity_endpoint_has_half_escape(self):
        sel = select_code(40, 1e-9)
        assert sel.mapping_kind == "parity"
        assert float(sel.achieved_escape) == 0.5

    def test_final_a_is_odd_or_parity(self):
        for c in (1, 3, 7, 10, 25):
            for pndc in (1e-3, 1e-9, 1e-14):
                sel = select_code(c, pndc)
                assert sel.a_final % 2 == 1 or sel.mapping_kind == "parity"

    def test_validation(self):
        with pytest.raises(ValueError):
            select_code(0, 1e-9)
        with pytest.raises(ValueError):
            select_code(10, 0.0)
        with pytest.raises(ValueError):
            select_code(10, 1.5)


class TestZeroLatencyEndpoint:
    def test_covers_all_outputs(self):
        sel = select_zero_latency_code(8)
        assert sel.code.cardinality() >= 256
        assert sel.a_final == 256
        assert sel.mapping_kind == "identity"
        assert sel.achieved_pndc == 0.0

    def test_paper_scale(self):
        # a 2^15-line decoder fits in 9-out-of-18 (the widest table code)
        assert select_zero_latency_code(15).code_name == "9-out-of-18"

    def test_validation(self):
        with pytest.raises(ValueError):
            select_zero_latency_code(0)


class TestEvaluateCode:
    def test_paper_row_evaluation(self):
        result = evaluate_code(MOutOfNCode(5, 9), c=5, pndc_target=1e-9)
        assert result.a_final == 125
        assert result.meets_target

    def test_one_out_of_two(self):
        result = evaluate_code(MOutOfNCode(1, 2), c=30, pndc_target=1e-9)
        assert result.mapping_kind == "parity"
        assert result.meets_target  # 0.5^30 = 9.3e-10

    def test_no_target_means_self_consistent(self):
        result = evaluate_code(MOutOfNCode(3, 5), c=10)
        assert result.meets_target
