
from repro.circuits.builders import xor_tree
from repro.circuits.faults import (
    NetStuckAt,
    PinStuckAt,
    enumerate_stuck_at_faults,
)
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.simulator import (
    coverage,
    detects,
    fault_free_responses,
    first_difference,
)


def parity_circuit(width):
    c = Circuit("parity")
    nets = c.add_inputs([f"x{i}" for i in range(width)])
    c.mark_output(xor_tree(c, nets), "p")
    return c


class TestFaultEnumeration:
    def test_counts(self):
        c = parity_circuit(4)  # 3 XOR gates
        faults = enumerate_stuck_at_faults(c)
        # (4 inputs + 3 gate outputs) * 2 polarities
        assert len(faults) == 14

    def test_without_inputs(self):
        c = parity_circuit(4)
        faults = enumerate_stuck_at_faults(c, include_inputs=False)
        assert len(faults) == 6
        assert all(isinstance(f, NetStuckAt) for f in faults)

    def test_with_pins(self):
        c = parity_circuit(4)
        faults = enumerate_stuck_at_faults(c, include_pins=True)
        # 14 net faults + 3 gates * 2 pins * 2 values
        assert len(faults) == 26
        assert any(isinstance(f, PinStuckAt) for f in faults)

    def test_single_polarity(self):
        c = parity_circuit(4)
        faults = enumerate_stuck_at_faults(c, values=(1,))
        assert all(f.value == 1 for f in faults)


class TestSimulator:
    def test_fault_free_responses(self):
        c = parity_circuit(3)
        stimuli = [(0, 0, 0), (1, 0, 0), (1, 1, 0), (1, 1, 1)]
        assert fault_free_responses(c, stimuli) == [(0,), (1,), (0,), (1,)]

    def test_first_difference_finds_excitation(self):
        c = parity_circuit(3)
        # Root XOR output stuck at 0: differs whenever true parity is 1.
        root = c.output_nets[0]
        stimuli = [(0, 0, 0), (1, 1, 0), (1, 0, 0)]
        assert first_difference(c, NetStuckAt(root, 0), stimuli) == 2

    def test_first_difference_none_when_never_excited(self):
        c = parity_circuit(3)
        root = c.output_nets[0]
        stimuli = [(0, 0, 0), (1, 1, 0)]  # parity always 0
        assert first_difference(c, NetStuckAt(root, 0), stimuli) is None

    def test_detects_with_concurrent_checker(self):
        # Observer knows only "output must equal XOR of inputs"? No — a
        # concurrent checker sees outputs alone.  Use a 2-output circuit
        # emitting a two-rail pair and check membership.
        c = Circuit()
        a = c.add_input("a")
        inv = c.add_gate(GateType.NOT, (a,))
        c.mark_output(a)
        c.mark_output(inv)
        checker = lambda out: out[0] != out[1]
        fault = NetStuckAt(inv, 1)
        # With a=1: (1, 1) -> invalid, detected at cycle 1 of the stream.
        assert detects(c, fault, [(0,), (1,)], checker) == 1

    def test_coverage_summary(self):
        c = Circuit()
        a = c.add_input("a")
        inv = c.add_gate(GateType.NOT, (a,))
        c.mark_output(a)
        c.mark_output(inv)
        checker = lambda out: out[0] != out[1]
        faults = enumerate_stuck_at_faults(c, include_inputs=False)
        report = coverage(c, faults, [(0,), (1,)], checker)
        assert report["total"] == 2
        assert report["detected"] == 2
        assert report["coverage"] == 1.0

    def test_input_stem_fault_undetectable_by_code_checker(self):
        # An address-line stuck-at keeps the pair complementary: the
        # checker can never see it (the scheme's out-of-model case).
        c = Circuit()
        a = c.add_input("a")
        inv = c.add_gate(GateType.NOT, (a,))
        c.mark_output(a)
        c.mark_output(inv)
        checker = lambda out: out[0] != out[1]
        fault = NetStuckAt(a, 0)
        assert detects(c, fault, [(0,), (1,)], checker) is None
