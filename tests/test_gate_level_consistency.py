"""Cross-representation consistency: behavioural vs gate-level models.

These tests pin the property that makes the campaigns trustworthy: the
behavioural fast paths (NOR matrix output rules, popcount checkers,
mapping code words) agree with the gate-level netlists bit for bit,
including under injected faults.
"""

import itertools

import pytest

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.circuits.faults import NetStuckAt
from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.core.mapping import ModAMapping, ParityMapping, mapping_for_code
from repro.decoder.flat import FlatDecoder
from repro.decoder.tree import DecoderTree
from repro.rom.nor_matrix import CheckedDecoder, NORMatrix


class TestNorMatrixGateLevel:
    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    def test_all_line_patterns_agree(self, r):
        code = maximal_code_for_width(r)
        rows = [code.word_at(i % code.cardinality()) for i in range(6)]
        matrix = NORMatrix(rows)
        from repro.circuits.netlist import Circuit

        circuit = Circuit()
        lines = circuit.add_inputs([f"l{i}" for i in range(6)])
        for net in matrix.append_to_circuit(circuit, lines):
            circuit.mark_output(net)
        for pattern in itertools.product((0, 1), repeat=6):
            assert circuit.evaluate(pattern) == matrix.output(pattern)


class TestCheckedDecoderConsistency:
    @pytest.mark.parametrize("decoder_cls", [DecoderTree, FlatDecoder])
    def test_rom_word_equals_behavioural_composition(self, decoder_cls):
        n = 4
        mapping = mapping_for_code(MOutOfNCode(3, 5), n)
        checked = CheckedDecoder(mapping, decoder=decoder_cls(n))
        matrix = NORMatrix.from_mapping(mapping)
        for address in range(1 << n):
            lines, rom_word = checked.evaluate(address)
            assert rom_word == matrix.output(lines)

    @pytest.mark.parametrize("decoder_cls", [DecoderTree, FlatDecoder])
    def test_faulty_rom_word_still_equals_behavioural_composition(
        self, decoder_cls
    ):
        n = 4
        mapping = ParityMapping(n)
        checked = CheckedDecoder(mapping, decoder=decoder_cls(n))
        matrix = NORMatrix.from_mapping(mapping)
        # stuck-at-1 on a word line: the gate-level ROM must produce the
        # AND exactly as the behavioural rule says
        line = checked.tree.root.output_nets[3]
        for address in range(1 << n):
            lines, rom_word = checked.evaluate(
                address, faults=(NetStuckAt(line, 1),)
            )
            assert rom_word == matrix.output(lines)


class TestCheckerConsistencyWide:
    @pytest.mark.parametrize("m,n", [(2, 5), (3, 6), (4, 7)])
    def test_structural_equals_behavioural_everywhere(self, m, n):
        structural = MOutOfNChecker(m, n, structural=True)
        behavioural = MOutOfNChecker(m, n, structural=False)
        for word in itertools.product((0, 1), repeat=n):
            assert structural.indication(word) == behavioural.indication(
                word
            ), word


class TestMappingRomAgreement:
    def test_mod_a_mapping_table_is_what_the_rom_is_programmed_with(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 5)
        matrix = NORMatrix.from_mapping(mapping)
        assert list(matrix.rows) == mapping.table()

    def test_emitted_words_match_words_emitted_helper(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 5)
        checked = CheckedDecoder(mapping)
        emitted = {checked.rom_word(a) for a in range(32)}
        assert emitted == set(mapping.words_emitted())
