"""Tests for deterministic latency bounds and per-decoder code plans."""


from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.deterministic import (
    deterministic_bounds,
    scan_guarantee,
    worst_case_latency_for_site,
)
from repro.core.mapping import (
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
    mapping_for_code,
)
from repro.core.plan import plan_memory_codes
from repro.core.report import design_report
from repro.core.selection import SelectionPolicy
from repro.decoder.tree import DecoderTree
from repro.memory.organization import MemoryOrganization, paper_org


class TestWorstCaseLatency:
    def test_sa0_latency_is_excitation_period(self):
        # on a full sweep the faulty line is addressed once per period
        mapping = mapping_for_code(MOutOfNCode(3, 5), 4)
        latency = worst_case_latency_for_site(
            mapping, lo=0, width=4, m1=5, stuck_value=0
        )
        assert latency == 16

    def test_sa1_full_width_block(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4, complete=False)
        latency = worst_case_latency_for_site(
            mapping, lo=0, width=4, m1=0, stuck_value=1
        )
        # detecting cycles: X with X % 9 != 0 and X != 0 -> gaps around
        # X=0 and X=9; the worst run of non-detecting cycles is short
        assert 1 <= latency <= 3

    def test_brute_force_cross_check(self):
        mapping = ModAMapping(MOutOfNCode(3, 5), 4, complete=False)
        lo, width, m1 = 1, 2, 2
        stream = list(range(16))
        latency = worst_case_latency_for_site(
            mapping, lo, width, m1, stuck_value=1, stream=stream
        )
        # direct simulation: longest run without detection
        mask = 0b11 << lo
        flags = []
        for address in stream:
            faulty = (address & ~mask) | (m1 << lo)
            flags.append(
                faulty != address
                and mapping.index(faulty) != mapping.index(address)
            )
        positions = [i for i, f in enumerate(flags) if f]
        gaps = [
            b - a
            for a, b in zip(positions, positions[1:] + [positions[0] + 16])
        ]
        assert latency == max(gaps)

    def test_blind_fault_returns_none(self):
        mapping = TruncatedBergerMapping(6, k=2)
        latency = worst_case_latency_for_site(
            mapping, lo=4, width=2, m1=1, stuck_value=1
        )
        assert latency is None


class TestScanGuarantee:
    def test_mod_a_mapping_has_finite_guarantee(self):
        tree = DecoderTree(4)
        mapping = mapping_for_code(MOutOfNCode(3, 5), 4)
        guarantee = scan_guarantee(tree, mapping)
        assert guarantee is not None
        # the slowest site is a stuck-at-0 excited once per 16-sweep
        assert guarantee == 16

    def test_truncated_berger_has_no_guarantee(self):
        tree = DecoderTree(5)
        mapping = TruncatedBergerMapping(5, k=2)
        assert scan_guarantee(tree, mapping) is None

    def test_parity_mapping_guarantee(self):
        tree = DecoderTree(4)
        guarantee = scan_guarantee(tree, ParityMapping(4))
        assert guarantee is not None

    def test_bounds_cover_every_site(self):
        tree = DecoderTree(3)
        mapping = mapping_for_code(MOutOfNCode(3, 5), 3)
        bounds = deterministic_bounds(tree, mapping)
        assert len(bounds) == 2 * tree.circuit.num_gates

    def test_empirical_agreement(self):
        # the bound must dominate a measured sweep campaign
        from repro.checkers.m_out_of_n_checker import MOutOfNChecker
        from repro.faultsim.campaign import decoder_campaign
        from repro.faultsim.injector import (
            decoder_fault_list,
            sequential_addresses,
        )
        from repro.rom.nor_matrix import CheckedDecoder

        mapping = mapping_for_code(MOutOfNCode(3, 5), 4)
        checked = CheckedDecoder(mapping)
        guarantee = scan_guarantee(checked.tree, mapping)
        stream = sequential_addresses(4, 2 * 16)
        result = decoder_campaign(
            checked,
            MOutOfNChecker(3, 5, structural=False),
            decoder_fault_list(checked),
            stream,
            attach_analytic=False,
        )
        assert result.coverage == 1.0
        assert max(result.detection_cycles()) <= guarantee


class TestMemoryCodePlan:
    def test_default_plan_zero_latency_column(self):
        plan = plan_memory_codes(paper_org("16x2K"), c=10, pndc=1e-9)
        assert plan.row.code_name == "3-out-of-5"
        assert plan.column.mapping_kind == "identity"
        assert plan.column.achieved_pndc == 0.0

    def test_shared_code_plan(self):
        plan = plan_memory_codes(
            paper_org("16x2K"), c=10, pndc=1e-9, column_zero_latency=False
        )
        assert plan.column.code_name == plan.row.code_name

    def test_zero_latency_column_costs_little(self):
        org = paper_org("16x2K")
        free = plan_memory_codes(org, 10, 1e-9).overhead_percent()
        shared = plan_memory_codes(
            org, 10, 1e-9, column_zero_latency=False
        ).overhead_percent()
        # the column ROM is r*2^s cells either way: the delta is tiny
        assert abs(free - shared) < 0.2

    def test_mappings_constructible(self):
        plan = plan_memory_codes(paper_org("16x2K"), c=10, pndc=1e-9)
        row_mapping = plan.row_mapping()
        column_mapping = plan.column_mapping()
        assert row_mapping.n_bits == 8
        assert column_mapping.n_bits == 3
        # identity: distinct words per column line
        words = {column_mapping.codeword(a) for a in range(8)}
        assert len(words) == 8

    def test_describe(self):
        plan = plan_memory_codes(paper_org("16x2K"), c=10, pndc=1e-9)
        assert "3-out-of-5" in plan.describe()


class TestDesignReport:
    def test_report_contains_key_sections(self):
        org = MemoryOrganization(2048, 16, column_mux=8)
        text = design_report(org, c=10, pndc=1e-9)
        for token in (
            "16x2K",
            "3-out-of-5",
            "row decoder check",
            "column decoder check",
            "area bill",
            "system safety",
            "meets 1e-09",
        ):
            assert token in text, token

    def test_report_with_shared_column(self):
        org = MemoryOrganization(2048, 16, column_mux=8)
        text = design_report(
            org, c=10, pndc=1e-9, column_zero_latency=False
        )
        assert "mapping 'mod'" in text

    def test_report_approximate_policy(self):
        org = MemoryOrganization(2048, 16, column_mux=8)
        text = design_report(
            org, c=10, pndc=1e-20, policy=SelectionPolicy.APPROXIMATE
        )
        assert "MISSES" in text  # the documented 1e-20 inconsistency
