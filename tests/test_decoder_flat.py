import pytest

from repro.circuits.faults import NetStuckAt, PinStuckAt
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import ParityMapping, mapping_for_code
from repro.decoder.flat import FlatDecoder
from repro.rom.nor_matrix import CheckedDecoder


class TestFunctional:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_one_hot(self, n):
        decoder = FlatDecoder(n)
        for address in range(1 << n):
            outs = decoder.decode(address)
            assert sum(outs) == 1 and outs[address] == 1

    def test_gate_count_single_level(self):
        decoder = FlatDecoder(4)
        # 4 inverters + 16 wide ANDs
        assert decoder.circuit.num_gates == 20

    def test_site_of_net_covers_all_gates(self):
        decoder = FlatDecoder(3)
        for gate in decoder.circuit.gates:
            assert decoder.site_of_net(gate.output) is not None

    def test_root_block_spans_all_bits(self):
        decoder = FlatDecoder(3)
        assert decoder.root.width == 3
        assert decoder.root.num_outputs == 8

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FlatDecoder(0)

    def test_invalid_address(self):
        with pytest.raises(ValueError):
            FlatDecoder(3).decode(8)


class TestFaultGeometry:
    def test_and_pin_sa1_merges_one_bit_neighbours(self):
        decoder = FlatDecoder(4)
        # pin `bit` of the AND for word line v reads literal of that bit;
        # stuck at 1 merges v with v ^ (1 << bit).
        value = 0b1010
        gate = decoder.circuit.driver_of(decoder.root.output_nets[value])
        pin = 2
        fault = PinStuckAt(gate.index, pin, 1)
        neighbour = value ^ (1 << pin)
        selected = decoder.selected_lines(neighbour, faults=(fault,))
        assert set(selected) == {value, neighbour}

    def test_output_sa0_deselects(self):
        decoder = FlatDecoder(3)
        net = decoder.root.output_nets[5]
        assert decoder.selected_lines(5, faults=(NetStuckAt(net, 0),)) == ()


class TestWithCheckedDecoder:
    def test_parity_rom_on_flat_decoder(self):
        checked = CheckedDecoder(
            ParityMapping(4), decoder=FlatDecoder(4)
        )
        for address in range(16):
            assert checked.rom_word(address) == checked.expected_word(
                address
            )

    def test_mod_a_rom_on_flat_decoder(self):
        mapping = mapping_for_code(MOutOfNCode(3, 5), 4)
        checked = CheckedDecoder(mapping, decoder=FlatDecoder(4))
        assert checked.rom_word(7) == mapping.codeword(7)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CheckedDecoder(ParityMapping(4), decoder=FlatDecoder(3))

    def test_pin_merge_always_parity_detected(self):
        # the §III claim: single-level branch merges differ in ONE bit,
        # so the (even, odd) parity word always leaves the code.
        decoder = FlatDecoder(4)
        checked = CheckedDecoder(ParityMapping(4), decoder=decoder)
        value = 0b0110
        gate = None
        for g in checked.tree.circuit.gates:
            if g.output == checked.tree.root.output_nets[value]:
                gate = g
        for pin in range(4):
            fault = PinStuckAt(gate.index, pin, 1)
            neighbour = value ^ (1 << pin)
            _, rom_word = checked.evaluate(neighbour, faults=(fault,))
            # merged word = AND of two complementary parity words = 00
            assert rom_word == (0, 0)


class TestStyleExperiment:
    def test_experiment_shape(self):
        from repro.experiments.decoder_style import (
            run_decoder_style_experiment,
        )

        flat_parity, tree_parity, tree_mod = run_decoder_style_experiment(
            n_bits=5, cycles=250, seed=3
        )
        # the paper's claim, as orderings:
        assert (
            flat_parity.zero_latency_fraction
            > tree_parity.zero_latency_fraction
        )
        assert (
            tree_mod.zero_latency_fraction
            > tree_parity.zero_latency_fraction
        )
        assert tree_mod.mean_latency < tree_parity.mean_latency
        assert flat_parity.mean_latency < tree_parity.mean_latency
