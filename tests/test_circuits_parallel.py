"""Lane-exact equivalence of the packed evaluator with the serial one."""

import itertools
import random

import pytest

from repro.circuits.faults import NetStuckAt, PinStuckAt
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.parallel import (
    evaluate_packed,
    pack_stimuli,
    packed_rom_words,
    unpack_outputs,
)


def build_mixed_circuit():
    c = Circuit("mixed")
    a, b, d = c.add_inputs(["a", "b", "d"])
    n1 = c.add_gate(GateType.AND, (a, b))
    n2 = c.add_gate(GateType.NOR, (b, d, n1))
    n3 = c.add_gate(GateType.XOR, (a, n2))
    n4 = c.add_gate(GateType.NAND, (n1, n3))
    n5 = c.add_gate(GateType.NOT, (n4,))
    n6 = c.add_gate(GateType.XNOR, (n5, d))
    n7 = c.add_gate(GateType.OR, (n6, n2))
    n8 = c.add_gate(GateType.BUF, (n7,))
    one = c.add_gate(GateType.CONST1, ())
    n9 = c.add_gate(GateType.AND, (n8, one))
    c.mark_output(n3)
    c.mark_output(n9)
    return c


class TestPacking:
    def test_pack_round_trip(self):
        stimuli = [(1, 0), (0, 0), (1, 1), (0, 1)]
        packed, lanes = pack_stimuli(stimuli)
        assert lanes == 4
        assert unpack_outputs(packed, lanes) == [tuple(s) for s in stimuli]

    def test_pack_validation(self):
        with pytest.raises(ValueError):
            pack_stimuli([])
        with pytest.raises(ValueError):
            pack_stimuli([(1, 0), (1,)])
        with pytest.raises(ValueError):
            pack_stimuli([(2, 0)])


class TestEquivalence:
    def test_fault_free_all_lanes(self):
        c = build_mixed_circuit()
        stimuli = list(itertools.product((0, 1), repeat=3))
        packed, lanes = pack_stimuli(stimuli)
        outs = unpack_outputs(evaluate_packed(c, packed, lanes), lanes)
        for stimulus, out in zip(stimuli, outs):
            assert out == c.evaluate(stimulus)

    @pytest.mark.parametrize("seed", range(4))
    def test_with_random_faults(self, seed):
        rng = random.Random(seed)
        c = build_mixed_circuit()
        stimuli = list(itertools.product((0, 1), repeat=3))
        packed, lanes = pack_stimuli(stimuli)
        for _ in range(10):
            if rng.random() < 0.5:
                gate = rng.choice(c.gates)
                fault = NetStuckAt(gate.output, rng.randint(0, 1))
            else:
                gate = rng.choice([g for g in c.gates if g.inputs])
                fault = PinStuckAt(
                    gate.index,
                    rng.randrange(len(gate.inputs)),
                    rng.randint(0, 1),
                )
            outs = unpack_outputs(
                evaluate_packed(c, packed, lanes, faults=(fault,)), lanes
            )
            for stimulus, out in zip(stimuli, outs):
                assert out == c.evaluate(stimulus, faults=(fault,)), fault

    def test_input_stuck_at(self):
        c = build_mixed_circuit()
        stimuli = [(0, 0, 0), (1, 1, 1)]
        packed, lanes = pack_stimuli(stimuli)
        fault = NetStuckAt(c.input_nets[0], 1)
        outs = unpack_outputs(
            evaluate_packed(c, packed, lanes, faults=(fault,)), lanes
        )
        for stimulus, out in zip(stimuli, outs):
            assert out == c.evaluate(stimulus, faults=(fault,))

    def test_validation(self):
        c = build_mixed_circuit()
        with pytest.raises(ValueError):
            evaluate_packed(c, [0, 0], 1)
        with pytest.raises(ValueError):
            evaluate_packed(c, [2, 0, 0], 1)  # exceeds 1-lane mask


class TestPackedRomWords:
    def test_matches_serial_checked_decoder(self):
        from repro.codes.m_out_of_n import MOutOfNCode
        from repro.core.mapping import mapping_for_code
        from repro.rom.nor_matrix import CheckedDecoder

        checked = CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 5))
        addresses = [3, 17, 0, 31, 8, 8, 25]
        fault = NetStuckAt(checked.tree.root.output_nets[6], 1)
        packed_words = packed_rom_words(checked, addresses, faults=(fault,))
        for address, word in zip(addresses, packed_words):
            assert word == checked.rom_word(address, faults=(fault,))

    def test_whole_stream_in_one_pass(self):
        from repro.codes.m_out_of_n import MOutOfNCode
        from repro.core.mapping import mapping_for_code
        from repro.rom.nor_matrix import CheckedDecoder

        checked = CheckedDecoder(mapping_for_code(MOutOfNCode(2, 4), 4))
        addresses = list(range(16)) * 4
        words = packed_rom_words(checked, addresses)
        assert len(words) == 64
        assert all(
            w == checked.expected_word(a) for a, w in zip(addresses, words)
        )
