import pytest

from repro.codes.two_rail import TwoRailCode


class TestEncoding:
    def test_pairwise_layout(self):
        assert TwoRailCode(2).encode((1, 0)) == (1, 0, 0, 1)
        assert TwoRailCode(1).encode((0,)) == (0, 1)

    def test_wrong_rail_count(self):
        with pytest.raises(ValueError):
            TwoRailCode(2).encode((1,))


class TestMembership:
    def test_valid_words(self):
        code = TwoRailCode(2)
        assert code.is_codeword((0, 1, 1, 0))
        assert code.is_codeword((1, 0, 1, 0))

    def test_invalid_words(self):
        code = TwoRailCode(2)
        assert not code.is_codeword((0, 0, 1, 0))
        assert not code.is_codeword((1, 1, 1, 1))

    def test_wrong_length(self):
        assert not TwoRailCode(2).is_codeword((0, 1))

    def test_cardinality(self):
        assert TwoRailCode(3).cardinality() == 8
        assert len(list(TwoRailCode(3).words())) == 8

    def test_is_unordered(self):
        # Two-rail codes are unordered (each word has weight = pairs).
        assert TwoRailCode(2).is_unordered()

    def test_invalid_pairs(self):
        with pytest.raises(ValueError):
            TwoRailCode(0)
