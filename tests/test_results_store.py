"""Content-addressed ResultStore: verified hits, resume, CLI surface.

The acceptance property: re-running any campaign with an unchanged
(target, scenarios, workload, engine-policy) key is a store hit that
returns the identical ResultSet **without invoking the simulator** —
proven here by making the simulation backends explode on the second
run.
"""

import json
import multiprocessing
import os

import pytest

from repro.memory.faults import CellStuckAt
from repro.memory.march import MATS_PLUS
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.results import (
    Provenance,
    ResultRecord,
    ResultSet,
    ResultStore,
    ResultStoreError,
    campaign_key,
    describe_target,
)
from repro.scenarios import (
    CampaignEngine,
    MemoryScenario,
    TransientScenario,
    Workload,
)

from test_results_api import (
    CAMPAIGNS,
    run_transient_campaign,
)


def sample_set(detections=(1, None)):
    return ResultSet(
        records=[
            ResultRecord(f"f{index}", "sa1", detection)
            for index, detection in enumerate(detections)
        ],
        provenances=(
            Provenance(
                campaign="decoder", engine="packed", repro_version="1.4.0"
            ),
        ),
        cycles_simulated=64,
    )


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        artifact = sample_set()
        key = campaign_key({"campaign": "decoder", "x": 1})
        store.put(key, artifact, {"campaign": "decoder", "x": 1})
        assert store.contains(key)
        assert store.get(key) == artifact
        assert store.stats.hits == 1 and store.stats.verified == 1

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("0" * 64) is None
        assert store.stats.misses == 1

    def test_key_is_deterministic_and_order_insensitive(self):
        assert campaign_key({"a": 1, "b": [2, 3]}) == campaign_key(
            {"b": [2, 3], "a": 1}
        )
        assert campaign_key({"a": 1}) != campaign_key({"a": 2})

    def test_corruption_is_detected_not_served(self, tmp_path):
        store = ResultStore(tmp_path)
        key = campaign_key({"c": 1})
        store.put(key, sample_set())
        payload = store._payload_path(key)
        with open(payload, "a") as handle:
            handle.write('{"f":"evil","k":"sa1"}\n')
        with pytest.raises(ResultStoreError, match="hash verification"):
            store.get(key)

    def test_payload_without_meta_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = campaign_key({"d": 1})
        store.put(key, sample_set())
        import os

        os.remove(store._meta_path(key))
        assert store.get(key) is None

    def test_interrupted_refresh_reads_as_miss_not_corruption(
        self, tmp_path
    ):
        """A refresh killed between payload and meta promotion must be
        a miss on the next run, never a stale-hash ResultStoreError."""
        import os

        store = ResultStore(tmp_path)
        key = campaign_key({"g": 1})
        store.put(key, sample_set())
        # replay the put protocol up to the crash point: meta retracted,
        # new payload in place, meta never promoted
        os.remove(store._meta_path(key))
        with open(store._payload_path(key), "w") as handle:
            handle.write(sample_set(detections=(7,)).to_jsonl())
        assert store.get(key) is None
        # recompute path works: a fresh put fully restores the entry
        store.put(key, sample_set(detections=(7,)))
        assert store.get(key).records[0].first_detection == 7

    def test_unreadable_meta_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = campaign_key({"h": 1})
        store.put(key, sample_set())
        with open(store._meta_path(key), "w") as handle:
            handle.write("{truncated")
        assert store.get(key) is None
        assert store.meta(key) is None

    def test_coerce(self, tmp_path):
        assert ResultStore.coerce(None) is None
        store = ResultStore(tmp_path)
        assert ResultStore.coerce(store) is store
        assert isinstance(ResultStore.coerce(str(tmp_path)), ResultStore)

    def test_entries_and_resolve(self, tmp_path):
        store = ResultStore(tmp_path)
        key = campaign_key({"e": 1})
        store.put(key, sample_set(), {"e": 1})
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0].key == key
        assert entries[0].campaign == "decoder"
        assert entries[0].faults == 2
        assert store.resolve(key[:8]) == key
        with pytest.raises(LookupError, match="no store entry"):
            store.resolve("zz")
        other = campaign_key({"e": 2})
        store.put(other, sample_set())
        with pytest.raises(LookupError, match="ambiguous"):
            store.resolve("")

    def test_delete(self, tmp_path):
        store = ResultStore(tmp_path)
        key = campaign_key({"f": 1})
        store.put(key, sample_set())
        assert store.delete(key)
        assert not store.contains(key)
        assert not store.delete(key)

    def test_load_or_run(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def runner():
            calls.append(1)
            return sample_set()

        material = {"campaign": "x"}
        first, hit, key = store.load_or_run(material, runner)
        second, hit2, key2 = store.load_or_run(material, runner)
        assert (hit, hit2, key) == (False, True, key2)
        assert first == second and len(calls) == 1


def _racing_put(root, key, barrier):
    """Module-level so a child process can run it: one racing writer."""
    store = ResultStore(root)
    barrier.wait(timeout=30)
    store.put(key, sample_set(), {"campaign": "race"})


class TestConcurrentWriters:
    def test_two_process_put_race_leaves_one_verified_artifact(
        self, tmp_path
    ):
        """Two processes racing `put` on one key: the meta-last
        protocol (retract, replace payload, promote meta — with the
        retraction tolerant of the other writer winning the remove)
        must leave exactly one complete, hash-verified artifact."""
        root = str(tmp_path / "store")
        key = campaign_key({"campaign": "race"})
        for round_no in range(3):
            barrier = multiprocessing.Barrier(2)
            workers = [
                multiprocessing.Process(
                    target=_racing_put, args=(root, key, barrier)
                )
                for _ in range(2)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
            assert [worker.exitcode for worker in workers] == [0, 0], (
                f"round {round_no}: a racing writer crashed"
            )
            store = ResultStore(root)
            assert store.keys() == [key]
            assert store.verify_entry(key) is None
            assert store.get(key) == sample_set()
            # both writers promoted complete files; no strays linger
            assert [n for n in os.listdir(root) if ".tmp" in n] == []


class TestStoreIntrospection:
    """The 1.6 sweep primitives behind `repro store stats|verify`."""

    def test_usage_counts_entries_and_bytes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(campaign_key({"u": 1}), sample_set(), {"u": 1})
        store.put_report("r" * 64, {"suite": "tiny"})
        usage = store.usage()
        assert usage["campaigns"] == 1
        assert usage["reports"] == 1
        assert usage["payload_bytes"] > 0
        assert usage["total_bytes"] >= usage["payload_bytes"]
        assert usage["root"] == store.root

    def test_verify_all_clean_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(campaign_key({"v": 1}), sample_set())
        store.put_report("a" * 64, {"suite": "tiny"})
        outcome = store.verify_all()
        assert outcome["ok"]
        assert outcome["entries"] == 1
        assert outcome["reports"] == 1
        assert outcome["failures"] == []

    def test_verify_all_flags_corruption(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = campaign_key({"v": 2})
        store.put(key, sample_set())
        with open(store._payload_path(key), "a") as handle:
            handle.write('{"f":"evil","k":"sa1"}\n')
        outcome = store.verify_all()
        assert not outcome["ok"]
        assert any(key[:12] in failure for failure in outcome["failures"])
        diagnostic = store.verify_entry(key)
        assert diagnostic is not None and "sha256" in diagnostic

    def test_verify_entry_missing_meta(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = campaign_key({"v": 3})
        store.put(key, sample_set())
        os.remove(store._meta_path(key))
        assert "metadata" in store.verify_entry(key)


def _break_simulators(monkeypatch):
    """Any attempt to actually simulate explodes."""
    import repro.faultsim.campaign as campaign_module
    import repro.scenarios.engine as engine_module

    def boom(*args, **kwargs):
        raise AssertionError("simulator invoked on a store hit")

    monkeypatch.setattr(campaign_module, "decoder_campaign", boom)
    monkeypatch.setattr(campaign_module, "scheme_campaign", boom)
    monkeypatch.setattr(engine_module, "_map_jobs", boom)


class TestEngineCaching:
    @pytest.mark.parametrize("family", sorted(CAMPAIGNS))
    def test_identical_rerun_is_hit_without_simulation(
        self, family, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        first = CAMPAIGNS[family](CampaignEngine(store=store))
        assert not first.from_store
        assert first.store_key is not None

        _break_simulators(monkeypatch)
        second = CAMPAIGNS[family](CampaignEngine(store=store))
        assert second.from_store
        assert second.to_result_set() == first.to_result_set()
        assert second.summary() == first.summary()

    def test_policy_change_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        run_transient_campaign(CampaignEngine(store=store))
        run_transient_campaign(CampaignEngine(engine="serial", store=store))
        # serial run keyed separately (engine is part of the policy)
        assert store.stats.hits == 0
        assert store.stats.puts == 2

    def test_workers_and_chunk_do_not_change_the_key(self, tmp_path):
        store = ResultStore(tmp_path)
        run_transient_campaign(CampaignEngine(store=store, chunk=64))
        hit = run_transient_campaign(CampaignEngine(store=store, chunk=7))
        assert hit.from_store

    def test_no_cache_reruns_but_refreshes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_transient_campaign(CampaignEngine(store=store))
        again = run_transient_campaign(
            CampaignEngine(store=store, cache=False)
        )
        assert not again.from_store
        assert store.stats.puts == 2

    def test_store_accepts_plain_path(self, tmp_path):
        engine = CampaignEngine(store=str(tmp_path / "by-path"))
        assert isinstance(engine.store, ResultStore)
        run_transient_campaign(engine)
        assert engine.store.stats.puts == 1

    def test_custom_scheme_writer_is_never_cached(self, tmp_path):
        from repro.core.scheme import SelfCheckingMemory
        from repro.core.selection import select_code

        store = ResultStore(tmp_path)
        org = MemoryOrganization(64, 8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9)
        )

        def writer(mem):
            for address in range(mem.organization.words):
                mem.write(address, (0,) * mem.organization.bits)

        engine = CampaignEngine(store=store)
        result = engine.scheme(
            memory,
            Workload.uniform(1 << org.n, 64, seed=1),
            [CellStuckAt(5, 1, 1)],
            writer=writer,
        )
        assert result.store_key is None
        assert store.stats.puts == 0
        # provenance is still stamped on uncached runs
        assert result.provenance.campaign == "scheme"


class TestShardResume:
    def scenarios(self):
        return [
            TransientScenario.single(a, bit=a % 9, cycle=a % 40)
            for a in range(0, 32, 2)
        ]

    def run(self, store, workers=4):
        org = MemoryOrganization(32, 8, column_mux=4)
        return CampaignEngine(store=store, workers=workers).transient(
            BehavioralRAM(org),
            self.scenarios(),
            Workload.scrubbed(32, 300, scrub_period=4, seed=2),
        )

    def test_workers_run_checkpoints_then_prunes_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        result = self.run(store)
        # one checkpoint per shard + the full entry were written...
        assert store.stats.puts == 5
        assert result.total == len(self.scenarios())
        # ...but a completed campaign leaves exactly one store entry:
        # the full key supersedes (and prunes) the shard checkpoints
        assert store.keys(include_shards=True) == [result.store_key]
        assert len(store.entries()) == 1
        assert store.resolve(result.store_key[:8]) == result.store_key

    def test_interrupted_run_resumes_from_completed_shards(
        self, tmp_path, monkeypatch
    ):
        import repro.scenarios.engine as engine_module

        store = ResultStore(tmp_path)
        real_map_jobs = engine_module._map_jobs
        calls = []

        def dies_after_first_shard(*args, **kwargs):
            if calls:
                raise RuntimeError("interrupted")
            calls.append(1)
            return real_map_jobs(*args, **kwargs)

        monkeypatch.setattr(
            engine_module, "_map_jobs", dies_after_first_shard
        )
        with pytest.raises(RuntimeError, match="interrupted"):
            self.run(store)
        # shard 0 checkpointed; full key never written
        assert len(store.keys(include_shards=True)) == 1
        assert store.keys() == []

        # resume: only the three missing shards are simulated
        resumed_calls = []

        def counting(*args, **kwargs):
            resumed_calls.append(1)
            return real_map_jobs(*args, **kwargs)

        monkeypatch.setattr(engine_module, "_map_jobs", counting)
        resumed = self.run(store)
        assert len(resumed_calls) == 3
        assert not resumed.from_store  # re-assembled, not full-key hit
        clean = self.run(ResultStore(tmp_path / "clean"))
        assert resumed.to_result_set().records == \
            clean.to_result_set().records

    def test_partially_resumed_records_have_uniform_identity(
        self, tmp_path, monkeypatch
    ):
        """Resumed and fresh shards must agree on fault identity type
        (the printable string), never mix strings with live objects."""
        import repro.scenarios.engine as engine_module

        store = ResultStore(tmp_path)
        real_map_jobs = engine_module._map_jobs
        calls = []

        def dies_after_first_shard(*args, **kwargs):
            if calls:
                raise RuntimeError("interrupted")
            calls.append(1)
            return real_map_jobs(*args, **kwargs)

        monkeypatch.setattr(
            engine_module, "_map_jobs", dies_after_first_shard
        )
        with pytest.raises(RuntimeError):
            self.run(store)
        monkeypatch.setattr(engine_module, "_map_jobs", real_map_jobs)
        resumed = self.run(store)
        assert all(
            isinstance(record.fault, str) for record in resumed.records
        )

    def test_shard_results_identical_to_unsharded(self, tmp_path):
        sharded = self.run(ResultStore(tmp_path / "a"), workers=3)
        plain = self.run(None, workers=None)
        assert [
            (r.kind, r.first_detection, r.first_error)
            for r in sharded.records
        ] == [
            (r.kind, r.first_detection, r.first_error)
            for r in plain.records
        ]


class TestDesignFlowCaching:
    def test_empirical_hits_and_references_the_artifact(self, tmp_path):
        from repro import DesignEngine, DesignSpec

        spec = DesignSpec(words=256, bits=8, c=10, pndc=1e-9)
        engine = DesignEngine(store=str(tmp_path))
        first = engine.empirical(spec, cycles=64)
        assert first.result_key is not None and not first.store_hit

        second = DesignEngine(store=str(tmp_path)).empirical(spec, cycles=64)
        assert second.store_hit
        assert second.result_key == first.result_key
        # the referenced artifact is openable and matches the report
        artifact = engine.store.get(first.result_key)
        assert artifact.total == first.faults
        assert artifact.provenance.spec["words"] == 256

    def test_evaluate_report_cache(self, tmp_path):
        from repro import DesignEngine, DesignSpec

        spec = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)
        first = DesignEngine(store=str(tmp_path)).evaluate(spec)
        second = DesignEngine(store=str(tmp_path)).evaluate(spec)
        assert second.to_dict() == first.to_dict()
        # context changes invalidate: different safety parameters
        third = DesignEngine(
            store=str(tmp_path), fault_rate_per_hour=2e-5
        ).evaluate(spec)
        assert third.safety.fault_rate_per_hour == 2e-5

    def test_explicit_plan_bypasses_the_report_cache(self, tmp_path):
        from repro import DesignEngine, DesignSpec

        spec = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)
        engine = DesignEngine(store=str(tmp_path))
        default = engine.evaluate(spec)
        # a pinned-code plan must not be served the default-plan report
        custom = engine.plan(spec.replace(row_code="5-out-of-9"))
        overridden = engine.evaluate(spec, plan=custom)
        assert overridden.row.code == "5-out-of-9"
        assert overridden.row.code != default.row.code
        # and it must not poison the cache for later plain evaluates
        assert engine.evaluate(spec).row.code == default.row.code

    def test_sweep_served_from_store_on_rerun(self, tmp_path):
        from repro import DesignEngine, DesignSpec
        from repro.memory.organization import PAPER_ORGS

        specs = DesignSpec.grid(PAPER_ORGS[:2], [(10, 1e-9), (2, 1e-9)])
        first = DesignEngine(store=str(tmp_path)).sweep(specs)
        second = DesignEngine(store=str(tmp_path)).sweep(specs)
        assert [r.to_dict() for r in first] == [
            r.to_dict() for r in second
        ]


class TestDescribeTarget:
    def test_decoder_identity_is_exact(self):
        from test_results_api import checked_decoder

        a = describe_target(checked_decoder())
        b = describe_target(checked_decoder())
        assert a == b
        assert describe_target(checked_decoder(n_bits=5)) != a

    def test_ram_identity(self):
        org = MemoryOrganization(32, 8, column_mux=4)
        with_parity = describe_target(BehavioralRAM(org))
        without = describe_target(BehavioralRAM(org, with_parity=False))
        assert with_parity != without

    def test_default_repr_objects_never_leak_addresses(self):
        class Anon:
            pass

        material = describe_target(Anon())
        assert "0x" not in json.dumps(material)

    def test_parameterized_custom_targets_key_differently(self):
        """A custom checker with no __repr__ must not collapse to its
        bare class name — distinct configurations need distinct keys."""

        class ThresholdChecker:
            input_width = 5

            def __init__(self, threshold):
                self.threshold = threshold

        assert describe_target(ThresholdChecker(1)) != describe_target(
            ThresholdChecker(2)
        )
        assert describe_target(ThresholdChecker(1)) == describe_target(
            ThresholdChecker(1)
        )

    def test_cache_material_hook(self):
        class Custom:
            def cache_material(self):
                return {"rows": 3}

        assert describe_target(Custom()) == {
            "type": "Custom",
            "material": {"rows": 3},
        }


class TestResultsCli:
    def populate(self, tmp_path):
        store_root = str(tmp_path / "store")
        store = ResultStore(store_root)
        engine = CampaignEngine(store=store)
        org = MemoryOrganization(16, 4, column_mux=4)
        detected = engine.march(
            BehavioralRAM(org),
            [MemoryScenario(faults=(CellStuckAt(3, 1, 1),))],
            MATS_PLUS,
        )
        # a never-detected population: upsets on words the workload
        # never reads back
        silent = engine.transient(
            BehavioralRAM(MemoryOrganization(32, 8, column_mux=4)),
            [TransientScenario.single(31, bit=0, cycle=0)],
            Workload.explicit([0, 1, 2]),
        )
        return store_root, detected.store_key, silent.store_key

    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_ls_show_export(self, tmp_path, capsys):
        store_root, detected_key, silent_key = self.populate(tmp_path)
        assert self.run_cli(["results", "ls", "--store", store_root]) == 0
        out = capsys.readouterr().out
        assert "2 campaign(s)" in out
        assert detected_key[:12] in out

        assert (
            self.run_cli(
                ["results", "show", detected_key[:10], "--store", store_root]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "provenance" in out and "march" in out

        out_path = str(tmp_path / "export.jsonl")
        assert (
            self.run_cli(
                ["results", "export", detected_key, "--store", store_root,
                 "--out", out_path]
            )
            == 0
        )
        capsys.readouterr()
        exported = ResultSet.read_jsonl(out_path)
        assert exported == ResultStore(store_root).get(detected_key)

    def test_show_json_is_strict_json_with_zero_detections(
        self, tmp_path, capsys
    ):
        """Satellite regression: NaN must never reach --json output."""
        store_root, _, silent_key = self.populate(tmp_path)
        assert (
            self.run_cli(
                ["results", "show", silent_key, "--store", store_root,
                 "--json"]
            )
            == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(
            out, parse_constant=lambda c: pytest.fail(f"non-JSON {c}")
        )
        assert payload["summary"]["detected"] == 0
        assert payload["summary"]["mean_detection_cycle"] is None

    def test_diff_exit_codes(self, tmp_path, capsys):
        store_root, detected_key, silent_key = self.populate(tmp_path)
        assert (
            self.run_cli(
                ["results", "diff", detected_key, detected_key,
                 "--store", store_root]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            self.run_cli(
                ["results", "diff", detected_key, silent_key,
                 "--store", store_root]
            )
            == 2
        )
        assert "only left" in capsys.readouterr().out

    def test_missing_store_is_a_clean_error(self, tmp_path, capsys):
        assert (
            self.run_cli(
                ["results", "ls", "--store", str(tmp_path / "absent")]
            )
            == 1
        )
        assert "no result store" in capsys.readouterr().err

    def test_campaign_command_store_round_trip(self, tmp_path, capsys):
        store_root = str(tmp_path / "cli-store")
        assert (
            self.run_cli(["march", "--store", store_root, "--json"]) == 0
        )
        first = json.loads(capsys.readouterr().out)["campaign"]["store"]
        assert first["misses"] > 0 and first["hits"] == 0
        assert (
            self.run_cli(["march", "--store", store_root, "--json"]) == 0
        )
        second = json.loads(capsys.readouterr().out)["campaign"]["store"]
        assert second["misses"] == 0
        assert second["hits"] == second["requests"] > 0
        assert second["verified"] == second["hits"]
        # --no-cache refreshes instead of serving
        assert (
            self.run_cli(
                ["march", "--store", store_root, "--no-cache", "--json"]
            )
            == 0
        )
        third = json.loads(capsys.readouterr().out)["campaign"]["store"]
        assert third["hits"] == 0 and third["puts"] > 0
