"""Vector (NumPy lane-array) campaign engine vs the packed and serial
oracles: record-level bit-identity across fault kinds, collapse modes
and window widths, lane-helper unit tests, checker-lane equivalence,
and the NumPy-free degradation contract."""

import random

import pytest

from repro.checkers.base import Checker
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.two_rail_checker import TwoRailChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.faultsim import vectorsim
from repro.faultsim.campaign import (
    decoder_campaign,
    default_scheme_writer,
    scheme_campaign,
)
from repro.faultsim.injector import decoder_fault_list, sample_faults
from repro.faultsim.vectorsim import (
    CAMPAIGN_ENGINES,
    numpy_available,
    resolve_engine,
)
from repro.memory.faults import (
    CellStuckAt,
    CompositeFault,
    CouplingFault,
    DataLineStuckAt,
    MuxLineStuckAt,
)
from repro.memory.organization import MemoryOrganization
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import Workload

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy (repro[vector]) not installed"
)

#: window widths the engine must be invariant in (1 = one cycle per
#: window, 7 = lanes straddle word boundaries, 64 = exactly one word,
#: None = DEFAULT_WINDOW, i.e. a single window for these streams)
CHUNKS = (1, 7, 64, None)


def record_key(result):
    return [
        (str(r.fault), r.kind, r.first_detection, r.first_error)
        for r in result.records
    ]


# -- engine policy / NumPy-free degradation ---------------------------------


class TestResolveEngine:
    def test_known_policies(self):
        assert set(CAMPAIGN_ENGINES) == {
            "packed", "serial", "vector", "auto",
        }
        assert resolve_engine("packed") == "packed"
        assert resolve_engine("serial") == "serial"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="engine must be one of"):
            resolve_engine("warp")

    @needs_numpy
    def test_auto_prefers_vector_when_numpy_present(self):
        assert resolve_engine("auto") == "vector"
        assert resolve_engine("vector") == "vector"

    def test_vector_without_numpy_raises_actionable(self, monkeypatch):
        monkeypatch.setattr(vectorsim, "np", None)
        assert not numpy_available()
        with pytest.raises(RuntimeError, match=r"repro\[vector\]"):
            resolve_engine("vector")

    def test_auto_without_numpy_falls_back_to_packed(self, monkeypatch):
        monkeypatch.setattr(vectorsim, "np", None)
        assert resolve_engine("auto") == "packed"

    def test_campaign_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(vectorsim, "np", None)
        checked = CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 3))
        checker = MOutOfNChecker(3, 5, structural=False)
        faults = decoder_fault_list(checked)[:2]
        with pytest.raises(RuntimeError, match=r"repro\[vector\]"):
            decoder_campaign(
                checked, checker, faults, [0, 1], engine="vector"
            )

    def test_packed_and_serial_untouched_without_numpy(self, monkeypatch):
        # the degradation contract: a NumPy-free environment still runs
        # the packed and serial engines bit-identically
        monkeypatch.setattr(vectorsim, "np", None)
        checked = CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 3))
        checker = MOutOfNChecker(3, 5, structural=False)
        faults = decoder_fault_list(checked)[:6]
        addresses = [0, 5, 2, 7, 1, 6, 3, 4] * 4
        packed = decoder_campaign(
            checked, checker, faults, addresses,
            attach_analytic=False, engine="packed",
        )
        serial = decoder_campaign(
            checked, checker, faults, addresses,
            attach_analytic=False, engine="serial",
        )
        assert record_key(packed) == record_key(serial)


# -- lane helpers ------------------------------------------------------------


@needs_numpy
class TestLaneHelpers:
    def test_pack_unpack_roundtrip(self):
        import numpy as np

        rng = random.Random(3)
        for lanes in (1, 7, 63, 64, 65, 130):
            bits = np.array(
                [rng.randrange(2) for _ in range(lanes)], dtype=bool
            )
            row = vectorsim._pack_bool(bits[None, :])[0]
            assert row.shape == ((lanes + 63) // 64,)
            back = vectorsim._unpack_lanes(row, lanes)
            assert back.tolist() == bits.tolist()

    def test_row_int_roundtrip(self):
        import numpy as np

        rng = random.Random(5)
        for words in (1, 2, 3):
            value = rng.getrandbits(64 * words - 7)
            row = vectorsim._int_to_row(value, words)
            assert row.dtype == np.uint64
            assert vectorsim._row_to_int(row) == value

    def test_lane_mask(self):
        assert vectorsim._row_to_int(vectorsim._lane_mask(64)) == (
            (1 << 64) - 1
        )
        assert vectorsim._row_to_int(vectorsim._lane_mask(70)) == (
            (1 << 70) - 1
        )

    def test_first_set_lanes_matches_bigint(self):
        import numpy as np

        from repro.circuits.parallel import first_set_lane

        rng = random.Random(11)
        rows = []
        for _ in range(40):
            value = rng.getrandbits(rng.randrange(1, 180))
            if rng.random() < 0.2:
                value = 0
            rows.append(value)
        words = np.stack(
            [vectorsim._int_to_row(v, 3) for v in rows]
        )
        firsts = vectorsim._first_set_lanes(words)
        for value, first in zip(rows, firsts.tolist()):
            expected = first_set_lane(value)
            assert first == (-1 if expected is None else expected)

    def test_mask_through_lane_truncates_after_detection(self):
        import numpy as np

        rng = random.Random(13)
        values = [rng.getrandbits(150) for _ in range(16)]
        lanes = np.array(
            [rng.randrange(-1, 150) for _ in values], dtype=np.int64
        )
        words = np.stack([vectorsim._int_to_row(v, 3) for v in values])
        kept = vectorsim._mask_through_lane(words, lanes)
        for value, lane, row in zip(values, lanes.tolist(), kept):
            if lane < 0:
                expected = value
            else:
                expected = value & ((1 << (lane + 1)) - 1)
            assert vectorsim._row_to_int(row) == expected


class _EveryOtherChecker(Checker):
    """Plugin checker (accepts words with an even popcount) without a
    packed override — exercises the bigint fallback in _accepts_lanes."""

    input_width = 5

    def indication(self, word):
        ones = sum(word) % 2
        return (ones, 1 - ones)


@needs_numpy
class TestAcceptsLanes:
    @pytest.mark.parametrize(
        "checker",
        [
            MOutOfNChecker(3, 5, structural=False),
            ParityChecker(5),
            ParityChecker(5, even=False),
            BergerChecker(3),
            TwoRailChecker(2),
            _EveryOtherChecker(),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_matches_accepts_packed(self, checker):
        import numpy as np

        rng = random.Random(17)
        lanes = 130  # straddles two words + a partial third
        width = checker.input_width
        mask = vectorsim._lane_mask(lanes)
        for _ in range(5):
            packed = [rng.getrandbits(lanes) for _ in range(width)]
            columns = [
                np.stack([vectorsim._int_to_row(c, 3)]) for c in packed
            ]
            got = vectorsim._accepts_lanes(checker, columns, mask, lanes)
            want = checker.accepts_packed(packed, lanes)
            assert vectorsim._row_to_int(got[0] & mask) == want


# -- decoder campaigns -------------------------------------------------------


@needs_numpy
class TestDecoderBitIdentity:
    @pytest.fixture(scope="class")
    def workload(self):
        checked = CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 4))
        checker = MOutOfNChecker(3, 5, structural=False)
        faults = decoder_fault_list(checked)
        addresses = Workload.uniform(16, 200, seed=23).address_list()
        serial = decoder_campaign(
            checked, checker, faults, addresses, engine="serial"
        )
        return checked, checker, faults, addresses, serial

    @pytest.mark.parametrize("collapse", [True, False])
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_vector_equals_serial(self, workload, collapse, chunk):
        checked, checker, faults, addresses, serial = workload
        vector = decoder_campaign(
            checked, checker, faults, addresses,
            collapse=collapse, engine="vector", chunk=chunk,
        )
        assert vector.engine == "vector"
        assert record_key(vector) == record_key(serial)

    def test_analytic_column_matches_packed(self, workload):
        checked, checker, faults, addresses, _ = workload
        packed = decoder_campaign(
            checked, checker, faults, addresses, engine="packed"
        )
        vector = decoder_campaign(
            checked, checker, faults, addresses, engine="vector"
        )
        assert [r.analytic_escape for r in vector.records] == [
            r.analytic_escape for r in packed.records
        ]

    def test_chunk_must_be_positive(self, workload):
        checked, checker, faults, addresses, _ = workload
        with pytest.raises(ValueError, match="chunk"):
            decoder_campaign(
                checked, checker, faults, addresses,
                engine="vector", chunk=0,
            )


# -- scheme campaigns --------------------------------------------------------


def _weird_writer(memory):
    """Non-code contents at a few addresses: forces the fault-free
    other-axis / parity reject paths that default contents never hit."""
    default_scheme_writer(memory)
    for address in (0, 3, 7):
        memory.ram.flip_stored_bit(address, 0)


@needs_numpy
class TestSchemeBitIdentity:
    @pytest.fixture(scope="class", params=[(64, 8, 4), (32, 4, 8)])
    def scheme_case(self, request):
        words, bits, mux = request.param
        org = MemoryOrganization(words, bits, column_mux=mux)

        def build():
            return SelfCheckingMemory.from_selection(
                org, select_code(10, 1e-9)
            )

        probe = build()
        row_faults = sample_faults(
            decoder_fault_list(probe.row), 8, seed=3
        )
        column_faults = sample_faults(
            decoder_fault_list(probe.column), 5, seed=4
        )
        memory_faults = [
            CellStuckAt(5 % words, 1, 1),
            DataLineStuckAt(1, 1),
            MuxLineStuckAt(1, 0, 1),
            CouplingFault(
                4 % words, 0, 9 % words, 1, trigger=1, forced=0
            ),
            CompositeFault(
                [CellStuckAt(2, 0, 1), DataLineStuckAt(0, 0)]
            ),
        ]
        addresses = Workload.uniform(words, 220, seed=9).address_list()
        return build, row_faults, column_faults, memory_faults, addresses

    def _run(self, scheme_case, engine, **kw):
        build, rf, cf, mf, addresses = scheme_case
        return scheme_campaign(
            build(), addresses, row_faults=rf, column_faults=cf,
            memory_faults=mf, engine=engine, **kw,
        )

    @pytest.mark.parametrize("collapse", [True, False])
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_vector_equals_serial_and_packed(
        self, scheme_case, collapse, chunk
    ):
        serial = self._run(scheme_case, "serial", collapse=collapse)
        packed = self._run(scheme_case, "packed", collapse=collapse)
        vector = self._run(
            scheme_case, "vector", collapse=collapse, chunk=chunk
        )
        assert record_key(serial) == record_key(packed)
        assert record_key(serial) == record_key(vector)

    def test_non_code_contents_stay_identical(self, scheme_case):
        build, rf, cf, mf, addresses = scheme_case
        runs = {
            engine: scheme_campaign(
                build(), addresses, row_faults=rf, column_faults=cf,
                memory_faults=mf, writer=_weird_writer, engine=engine,
            )
            for engine in ("serial", "vector")
        }
        assert record_key(runs["serial"]) == record_key(runs["vector"])

    def test_structural_checkers_stay_identical(self, scheme_case):
        build, rf, cf, mf, addresses = scheme_case
        org = build().organization
        structural = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9), structural_checkers=True
        )
        serial = scheme_campaign(
            structural, addresses, row_faults=rf, column_faults=cf,
            memory_faults=mf, engine="serial",
        )
        structural = SelfCheckingMemory.from_selection(
            org, select_code(10, 1e-9), structural_checkers=True
        )
        vector = scheme_campaign(
            structural, addresses, row_faults=rf, column_faults=cf,
            memory_faults=mf, engine="vector",
        )
        assert record_key(serial) == record_key(vector)

    def test_memory_faults_only(self, scheme_case):
        build, _rf, _cf, mf, addresses = scheme_case
        serial = scheme_campaign(
            build(), addresses, memory_faults=mf, engine="serial"
        )
        vector = scheme_campaign(
            build(), addresses, memory_faults=mf, engine="vector"
        )
        assert record_key(serial) == record_key(vector)

    def test_auto_resolves_to_vector(self, scheme_case):
        vector = self._run(scheme_case, "auto")
        assert vector.engine == "vector"
