import pytest

from repro.area.gatecount import (
    GATE_AREA_CELLS,
    circuit_area_cells,
    decoder_gate_count,
    m_out_of_n_checker_gates,
    parity_checker_gates,
    two_rail_tree_gates,
)
from repro.area.model import PaperAreaModel
from repro.area.stdcell import StdCellAreaModel
from repro.memory.organization import (
    PAPER_ORGS,
    MemoryOrganization,
    paper_org,
)

SECTION_IV_ORG = MemoryOrganization(1024, 16, column_mux=8)


class TestPaperAnalyticModel:
    def test_parity_bit_matches_paper(self):
        model = PaperAreaModel(k=0.3)
        assert model.parity_bit_overhead(SECTION_IV_ORG) == pytest.approx(
            0.0625
        )

    def test_parity_checker_matches_paper(self):
        model = PaperAreaModel(k=0.3)
        assert model.parity_checker_overhead(
            SECTION_IV_ORG
        ) == pytest.approx(0.0015)

    def test_rom_overhead_formula_as_printed(self):
        # k (r1 2^s + r2 2^p) / (m 2^n) = 0.3(5*8 + 5*128)/(16*1024)
        model = PaperAreaModel(k=0.3)
        value = model.rom_overhead(SECTION_IV_ORG, r_row=5)
        assert value == pytest.approx(0.3 * 680 / 16384)

    def test_rom_overhead_scales_linearly_with_r(self):
        model = PaperAreaModel(k=0.3)
        one = model.rom_overhead(SECTION_IV_ORG, r_row=1)
        assert model.rom_overhead(SECTION_IV_ORG, r_row=7) == pytest.approx(
            7 * one
        )

    def test_breakdown_totals(self):
        model = PaperAreaModel(k=0.3)
        bd = model.breakdown(SECTION_IV_ORG, r_row=5)
        assert bd.total == pytest.approx(
            bd.rom_row + bd.rom_column + bd.parity_bit + bd.parity_checker
        )
        assert bd.percent("parity_bit") == pytest.approx(6.25)

    def test_asymmetric_codes(self):
        model = PaperAreaModel(k=0.3)
        bd = model.breakdown(SECTION_IV_ORG, r_row=9, r_column=2)
        assert bd.rom_row > bd.rom_column

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PaperAreaModel(k=0)


class TestStdCellModel:
    """The calibrated model must reproduce all 36 table entries closely."""

    TABLE1 = {
        18: (88.7, 49.35, 26.28),
        9: (44.35, 24.6, 13.14),
        5: (24.8, 13.7, 7.3),
        4: (19.5, 9.67, 5.84),
        3: (15.0, 8.2, 4.38),
        2: (9.7, 5.48, 2.92),
    }
    TABLE2_EXTRA = {
        7: (34.2, 19.1, 10.2),
        13: (63.5, 35.6, 18.9),
    }

    @pytest.mark.parametrize("r", sorted(TABLE1))
    def test_table1_entries_within_tolerance(self, r):
        model = StdCellAreaModel()
        for org, reported in zip(PAPER_ORGS, self.TABLE1[r]):
            ours = model.overhead_percent(org, r_row=r)
            # The (2-out-of-4, 32x4K) entry 9.67 breaks the paper's own
            # linearity (every other row is ~2.74 %/unit-r for this RAM,
            # predicting 10.96); treat it as the outlier it is.
            tolerance = 0.15 if (r, org.label()) == (4, "32x4K") else 0.07
            assert ours == pytest.approx(reported, rel=tolerance), (
                r,
                org.label(),
            )

    @pytest.mark.parametrize("r", sorted(TABLE2_EXTRA))
    def test_table2_extra_codes_within_tolerance(self, r):
        model = StdCellAreaModel()
        for org, reported in zip(PAPER_ORGS, self.TABLE2_EXTRA[r]):
            ours = model.overhead_percent(org, r_row=r)
            assert ours == pytest.approx(reported, rel=0.07), (r, org.label())

    def test_overhead_linear_in_r(self):
        model = StdCellAreaModel()
        org = paper_org("16x2K")
        slope = model.slope_percent_per_r(org)
        assert model.overhead_percent(org, r_row=13) == pytest.approx(
            13 * slope
        )

    def test_overhead_falls_with_capacity(self):
        model = StdCellAreaModel()
        values = [model.overhead_percent(org, 5) for org in PAPER_ORGS]
        assert values[0] > values[1] > values[2]
        # each 4x capacity step cuts relative overhead by slightly less
        # than 2x (the periphery term), as in the paper's tables
        assert 1.7 < values[0] / values[1] < 2.0
        assert 1.7 < values[1] / values[2] < 2.0

    def test_checker_inclusion_adds_little(self):
        model_with = StdCellAreaModel(include_checkers=True)
        model_without = StdCellAreaModel()
        org = paper_org("16x2K")
        with_chk = model_with.overhead_percent(org, 5, m_row=3, m_column=3)
        without = model_without.overhead_percent(org, 5)
        assert with_chk > without
        assert (with_chk - without) / without < 0.05  # "insignificant"


class TestGateCounts:
    def test_decoder_gate_count_matches_tree(self):
        from repro.decoder.tree import DecoderTree

        for n in (2, 3, 4, 5):
            assert decoder_gate_count(n) == DecoderTree(n).circuit.num_gates

    def test_checker_gates_match_structural_circuit(self):
        from repro.checkers.m_out_of_n_checker import MOutOfNChecker

        for m, n in [(1, 2), (2, 4), (3, 5)]:
            assert (
                m_out_of_n_checker_gates(m, n)
                == MOutOfNChecker(m, n).circuit.num_gates
            )

    def test_parity_checker_gates_match(self):
        from repro.checkers.parity_checker import ParityChecker

        for width in (2, 4, 5, 9, 17):
            assert (
                parity_checker_gates(width)
                == ParityChecker(width).circuit.num_gates
            )

    def test_two_rail_tree_gates_match(self):
        from repro.checkers.two_rail_checker import TwoRailChecker

        for pairs in (1, 2, 3, 5):
            assert (
                two_rail_tree_gates(pairs)
                == TwoRailChecker(pairs).circuit.num_gates
            )

    def test_circuit_area_positive(self):
        from repro.checkers.parity_checker import ParityChecker

        assert circuit_area_cells(ParityChecker(8).circuit) > 0

    def test_all_gate_types_weighted(self):
        from repro.circuits.gates import GateType

        for gate_type in GateType:
            assert gate_type.value in GATE_AREA_CELLS
