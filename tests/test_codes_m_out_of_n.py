import pytest

from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.codes.unordered import (
    and_of_distinct_words_is_noncode,
    is_unordered_code,
)


class TestConstruction:
    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            MOutOfNCode(0, 4)
        with pytest.raises(ValueError):
            MOutOfNCode(4, 4)
        with pytest.raises(ValueError):
            MOutOfNCode(5, 4)

    def test_name(self):
        assert MOutOfNCode(3, 5).name == "3-out-of-5"

    def test_cardinality_paper_codes(self):
        for m, n, c in [(1, 2, 2), (2, 3, 3), (2, 4, 6), (3, 5, 10),
                        (4, 7, 35), (5, 9, 126), (7, 13, 1716),
                        (9, 18, 48620)]:
            assert MOutOfNCode(m, n).cardinality() == c


class TestMembership:
    def test_weight_rule(self):
        code = MOutOfNCode(2, 4)
        assert code.is_codeword((1, 0, 1, 0))
        assert not code.is_codeword((1, 1, 1, 0))
        assert not code.is_codeword((1, 0, 0, 0))
        assert not code.is_codeword((0, 0, 0, 0))

    def test_wrong_length(self):
        assert not MOutOfNCode(2, 4).is_codeword((1, 1, 0))

    def test_all_ones_never_codeword(self):
        # The stuck-at-0 detection guarantee of §III.
        for m, n in [(1, 2), (2, 3), (2, 4), (3, 5), (4, 7)]:
            assert not MOutOfNCode(m, n).is_codeword((1,) * n)


class TestIndexing:
    @pytest.mark.parametrize("m,n", [(1, 2), (2, 4), (3, 5), (2, 5), (4, 7)])
    def test_word_at_index_round_trip(self, m, n):
        code = MOutOfNCode(m, n)
        for index in range(code.cardinality()):
            assert code.index_of(code.word_at(index)) == index

    def test_words_are_distinct_and_complete(self):
        code = MOutOfNCode(3, 6)
        words = list(code.words())
        assert len(words) == len(set(words)) == 20
        assert set(words) == set(code.all_words_list())

    def test_word_at_out_of_range(self):
        with pytest.raises(ValueError):
            MOutOfNCode(2, 4).word_at(6)
        with pytest.raises(ValueError):
            MOutOfNCode(2, 4).word_at(-1)

    def test_index_of_noncode_rejected(self):
        with pytest.raises(ValueError):
            MOutOfNCode(2, 4).index_of((1, 1, 1, 0))

    def test_canonical_order_first_and_last(self):
        code = MOutOfNCode(2, 4)
        assert code.word_at(0) == (1, 1, 0, 0)
        assert code.word_at(5) == (0, 0, 1, 1)


class TestUnorderedProperties:
    @pytest.mark.parametrize("m,n", [(1, 2), (2, 3), (2, 4), (3, 5), (4, 7)])
    def test_constant_weight_codes_are_unordered(self, m, n):
        assert is_unordered_code(MOutOfNCode(m, n).words())

    @pytest.mark.parametrize("m,n", [(1, 2), (2, 3), (2, 4), (3, 5)])
    def test_and_of_distinct_words_is_noncode(self, m, n):
        assert and_of_distinct_words_is_noncode(MOutOfNCode(m, n).words())

    def test_minimum_distance_is_two(self):
        assert MOutOfNCode(3, 5).minimum_distance() == 2


class TestMaximalCodeForWidth:
    def test_paper_naming_convention(self):
        assert maximal_code_for_width(2).name == "1-out-of-2"
        assert maximal_code_for_width(3).name == "2-out-of-3"
        assert maximal_code_for_width(4).name == "2-out-of-4"
        assert maximal_code_for_width(5).name == "3-out-of-5"
        assert maximal_code_for_width(9).name == "5-out-of-9"
        assert maximal_code_for_width(13).name == "7-out-of-13"
        assert maximal_code_for_width(18).name == "9-out-of-18"

    def test_maximality(self):
        for r in range(2, 12):
            code = maximal_code_for_width(r)
            for m in range(1, r):
                assert MOutOfNCode(m, r).cardinality() <= code.cardinality()

    def test_too_small_width(self):
        with pytest.raises(ValueError):
            maximal_code_for_width(1)
