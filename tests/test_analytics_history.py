"""`repro.analytics.history` — the shared history-append helper and
the drift-tolerant JSONL loader: stamping (timestamp + git SHA),
malformed-line accounting, and mixed-version column handling."""

import json

from repro.analytics.history import (
    append_entry,
    expand_history,
    git_sha,
    load_entries,
    load_history,
)


def payload(**rows):
    benches = [dict(row, name=name) for name, row in rows.items()]
    return {"bench": "fam", "version": "1.9.0", "benches": benches}


class TestAppendEntry:
    def test_stamps_timestamp_and_returns_entry(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entry = append_entry(
            str(path), payload(b={"x": 1.0}), timestamp=12.345, sha="abc"
        )
        assert entry["timestamp"] == 12.3
        assert entry["git_sha"] == "abc"
        assert entry["version"] == "1.9.0"
        # the input payload is not mutated
        assert "timestamp" not in payload(b={"x": 1.0})

    def test_writes_one_compact_sorted_line_per_call(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_entry(str(path), payload(b={"x": 1.0}), sha="a1")
        append_entry(str(path), payload(b={"x": 2.0}), sha="a2")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert "\n" not in line and ": " not in line
            keys = list(json.loads(line))
            assert keys == sorted(keys)

    def test_sha_omitted_when_unavailable(self, tmp_path):
        path = tmp_path / "h.jsonl"
        entry = append_entry(str(path), payload(), sha="")
        assert "git_sha" not in entry
        assert "git_sha" not in json.loads(path.read_text())

    def test_default_sha_comes_from_git(self, tmp_path):
        # the test process runs inside the repo checkout, so the
        # default stamp is the real short SHA
        entry = append_entry(str(tmp_path / "h.jsonl"), payload())
        assert entry.get("git_sha") == git_sha()

    def test_git_sha_is_none_outside_a_checkout(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert git_sha() is None


class TestLoadEntries:
    def test_empty_file_loads_empty(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text("")
        assert load_entries(str(path)) == ([], 0)

    def test_malformed_lines_are_counted_and_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        good = json.dumps(payload(b={"x": 1.0}))
        path.write_text(
            "\n".join(
                [
                    "{not json",  # parse error
                    '"a string"',  # not an object
                    '{"bench": "fam"}',  # no bench rows
                    "",  # blank lines are not malformed
                    good,
                ]
            )
            + "\n"
        )
        entries, malformed = load_entries(str(path))
        assert malformed == 3
        assert len(entries) == 1
        assert entries[0].family == "fam"
        assert entries[0].index == 4

    def test_fields_parse_with_defaults(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps({"benches": [{"name": "b", "x": 1}, "junk"]})
            + "\n"
        )
        (entry,), _ = load_entries(str(path))
        assert entry.family == "?"
        assert entry.version == "?"
        assert entry.timestamp is None
        assert entry.git_sha is None
        assert entry.benches == [{"name": "b", "x": 1}]
        assert entry.label() == "?"

    def test_label_carries_the_sha(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_entry(str(path), payload(), sha="feedbee")
        (entry,), _ = load_entries(str(path))
        assert entry.label() == "1.9.0 @feedbee"


class TestLoadHistory:
    def test_series_keyed_by_bench_and_metric(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_entry(
            str(path),
            payload(b1={"wall_s": 0.5}, b2={"wall_s": 0.7}),
            sha="s1",
        )
        series, files, malformed = load_history(str(path))
        assert files == [str(path)]
        assert malformed == 0
        assert set(series) == {"b1.wall_s", "b2.wall_s"}
        entry = series["b1.wall_s"]
        assert entry.name == "b1.wall_s"
        assert entry.family == "fam"
        assert entry.source == str(path)
        assert entry.values() == [0.5]

    def test_mixed_versions_missing_columns_stay_loadable(
        self, tmp_path
    ):
        # pre-1.7 entries have no vector_* columns: the vector series
        # is simply shorter, never a crash or a None point
        path = tmp_path / "h.jsonl"
        old = {
            "bench": "campaign_engines",
            "version": "1.6.0",
            "benches": [{"name": "d", "speedup": 30.0}],
        }
        new = {
            "bench": "campaign_engines",
            "version": "1.7.0",
            "benches": [
                {"name": "d", "speedup": 31.0, "vector_speedup": 120.0}
            ],
        }
        append_entry(str(path), old, sha="")
        append_entry(str(path), new, sha="")
        series, _, _ = load_history(str(path))
        assert series["d.speedup"].values() == [30.0, 31.0]
        assert series["d.vector_speedup"].values() == [120.0]
        assert series["d.vector_speedup"].points[0].version == "1.7.0"

    def test_bools_and_identity_columns_are_not_metrics(
        self, tmp_path
    ):
        path = tmp_path / "h.jsonl"
        append_entry(
            str(path),
            payload(
                b={
                    "identical": True,
                    "kind": "design",
                    "label": "text",
                    "faults": 252,
                }
            ),
            sha="",
        )
        series, _, _ = load_history(str(path))
        assert set(series) == {"b.faults"}

    def test_multiple_globs_dedupe(self, tmp_path):
        path = tmp_path / "BENCH_a.history.jsonl"
        append_entry(str(path), payload(b={"x": 1.0}), sha="")
        pattern = str(tmp_path / "BENCH_*.history.jsonl")
        assert expand_history([pattern, str(path)]) == [str(path)]
        series, files, _ = load_history([pattern, str(path)])
        assert files == [str(path)]
        assert series["b.x"].values() == [1.0]

    def test_no_match_is_empty_not_an_error(self, tmp_path):
        series, files, malformed = load_history(
            str(tmp_path / "nope_*.jsonl")
        )
        assert (series, files, malformed) == ({}, [], 0)
