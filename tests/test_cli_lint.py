"""`repro lint` — the CLI surface of the static analyzer: target
resolution (labels, built-in suites, spec files), the exit-code
contract (0 clean, 1 findings, --strict promotes warnings), rule
selection, and the hardened one-line error paths."""

import json

from repro.cli import main
from repro.suite import builtin_suite
from repro.suite.spec import MatrixBlock, SuiteSpec


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestListRules:
    def test_table_lists_every_registered_rule(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--list-rules")
        assert code == 0
        for rule_id in (
            "net-undriven",
            "net-collapse-unsound",
            "tsc-code-disjoint",
            "tsc-self-testing",
            "tsc-fault-secure",
            "decoder-consistency",
            "design-placement",
            "suite-duplicate",
        ):
            assert rule_id in out

    def test_json_rows_carry_kind_and_severity(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "--list-rules", "--json")
        assert code == 0
        rules = json.loads(out)
        assert len(rules) >= 19
        by_id = {entry["id"]: entry for entry in rules}
        assert by_id["tsc-code-disjoint"]["kind"] == "checker"
        assert by_id["tsc-code-disjoint"]["severity"] == "error"
        assert by_id["net-dangling"]["severity"] == "warning"


class TestLintTargets:
    def test_paper_label_lints_clean(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "16x2K")
        assert code == 0
        assert "0 error(s)" in out
        assert "clean" in out

    def test_json_report_has_the_stable_shape(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "16x2K", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["kind"] == "design"
        assert data["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert data["findings"] == []
        assert data["rules_run"]
        assert data["skipped"]  # aliasing/silent-fault skips declared

    def test_builtin_suite_name(self, capsys):
        code, out, _ = run_cli(capsys, "lint", "smoke", "--json")
        assert code == 0
        data = json.loads(out)
        assert data["kind"] == "suite"
        assert data["counts"]["error"] == 0

    def test_design_spec_file(self, capsys, tmp_path):
        path = tmp_path / "design.json"
        path.write_text(
            json.dumps({"words": 64, "bits": 8, "column_mux": 4})
        )
        code, out, _ = run_cli(capsys, "lint", str(path))
        assert code == 0
        assert "clean" in out

    def test_suite_spec_file(self, capsys, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text(builtin_suite("smoke").to_json())
        code, _, _ = run_cli(capsys, "lint", str(path), "--strict")
        assert code == 0

    def test_out_flag_writes_the_report(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        code, _, _ = run_cli(
            capsys, "lint", "16x2K", "--json", "--out", str(target)
        )
        assert code == 0
        assert json.loads(target.read_text())["counts"]["error"] == 0


class TestExitCodeContract:
    def warning_suite(self, tmp_path):
        org = {"words": 64, "bits": 8, "column_mux": 4}
        suite = SuiteSpec(
            name="dupes",
            blocks=(
                MatrixBlock(family="design", targets=(org, dict(org))),
            ),
        )
        path = tmp_path / "dupes.json"
        path.write_text(suite.to_json())
        return str(path)

    def test_warnings_pass_by_default(self, capsys, tmp_path):
        code, out, _ = run_cli(capsys, "lint", self.warning_suite(tmp_path))
        assert code == 0
        assert "suite-duplicate" in out

    def test_strict_promotes_warnings_to_failures(self, capsys, tmp_path):
        code, _, _ = run_cli(
            capsys, "lint", self.warning_suite(tmp_path), "--strict"
        )
        assert code == 1

    def test_error_findings_fail_without_strict(self, capsys, tmp_path):
        spec = builtin_suite("smoke").to_dict()
        spec["blocks"][0]["policies"] = [{"engine": "warp"}]
        path = tmp_path / "doomed.json"
        path.write_text(json.dumps(spec))
        code, out, _ = run_cli(capsys, "lint", str(path), "--json")
        assert code == 1
        data = json.loads(out)
        assert data["counts"]["error"] >= 1
        assert any(
            f["rule"] == "suite-engine" for f in data["findings"]
        )


class TestRuleSelection:
    def test_rules_flag_restricts_the_run(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "lint",
            "16x2K",
            "--json",
            "--rules",
            "design-coverage,design-placement",
        )
        assert code == 0
        data = json.loads(out)
        assert sorted(data["rules_run"]) == [
            "design-coverage",
            "design-placement",
        ]

    def test_skip_flag_excludes_a_rule(self, capsys):
        code, out, _ = run_cli(
            capsys, "lint", "16x2K", "--json", "--skip", "tsc-self-testing"
        )
        assert code == 0
        assert "tsc-self-testing" not in json.loads(out)["rules_run"]

    def test_unknown_rule_id_is_rejected(self, capsys):
        code, _, err = run_cli(
            capsys, "lint", "16x2K", "--rules", "no-such-rule"
        )
        assert code == 1
        assert "unknown rule id" in err
        assert "--list-rules" in err


class TestHardenedErrorPaths:
    def test_missing_target(self, capsys):
        code, _, err = run_cli(capsys, "lint")
        assert code == 1
        assert err.startswith("error:")
        assert "target is required" in err

    def test_unresolvable_target_is_one_line(self, capsys):
        code, _, err = run_cli(capsys, "lint", "not-a-thing")
        assert code == 1
        assert err.startswith("error:")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_malformed_json_file(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code, _, err = run_cli(capsys, "lint", str(path))
        assert code == 1
        assert "malformed JSON" in err
        assert "Traceback" not in err
