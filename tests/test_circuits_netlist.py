import pytest

from repro.circuits.faults import NetStuckAt, PinStuckAt
from repro.circuits.gates import GateType, evaluate_gate
from repro.circuits.netlist import Circuit


def build_half_adder():
    c = Circuit("half_adder")
    a = c.add_input("a")
    b = c.add_input("b")
    s = c.add_gate(GateType.XOR, (a, b), name="sum")
    carry = c.add_gate(GateType.AND, (a, b), name="carry")
    c.mark_output(s, "s")
    c.mark_output(carry, "c")
    return c


class TestGatePrimitives:
    @pytest.mark.parametrize(
        "gate,inputs,expected",
        [
            (GateType.AND, (1, 1), 1),
            (GateType.AND, (1, 0), 0),
            (GateType.OR, (0, 0), 0),
            (GateType.OR, (0, 1), 1),
            (GateType.NOR, (0, 0, 0), 1),
            (GateType.NOR, (0, 1, 0), 0),
            (GateType.NAND, (1, 1), 0),
            (GateType.XOR, (1, 1, 1), 1),
            (GateType.XNOR, (1, 0), 0),
            (GateType.NOT, (1,), 0),
            (GateType.BUF, (0,), 0),
            (GateType.CONST1, (), 1),
            (GateType.CONST0, (), 0),
        ],
    )
    def test_truth_tables(self, gate, inputs, expected):
        assert evaluate_gate(gate, inputs) == expected

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.NOT, (1, 0))
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, (1,))


class TestCircuitConstruction:
    def test_half_adder_truth_table(self):
        c = build_half_adder()
        assert c.evaluate((0, 0)) == (0, 0)
        assert c.evaluate((0, 1)) == (1, 0)
        assert c.evaluate((1, 0)) == (1, 0)
        assert c.evaluate((1, 1)) == (0, 1)

    def test_evaluate_named(self):
        c = build_half_adder()
        assert c.evaluate_named((1, 1)) == {"s": 0, "c": 1}

    def test_reading_undeclared_net_rejected(self):
        c = Circuit()
        a = c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate(GateType.NOT, (a + 5,))

    def test_mark_undeclared_output_rejected(self):
        with pytest.raises(ValueError):
            Circuit().mark_output(0)

    def test_wrong_input_count_rejected(self):
        c = build_half_adder()
        with pytest.raises(ValueError):
            c.evaluate((1,))

    def test_nonbinary_input_rejected(self):
        c = build_half_adder()
        with pytest.raises(ValueError):
            c.evaluate((1, 2))

    def test_stats(self):
        stats = build_half_adder().stats()
        assert stats["gates"] == 2
        assert stats["xor"] == 1
        assert stats["and"] == 1
        assert stats["inputs"] == 2
        assert stats["outputs"] == 2

    def test_driver_and_fanout(self):
        c = Circuit()
        a = c.add_input("a")
        x = c.add_gate(GateType.NOT, (a,))
        y = c.add_gate(GateType.AND, (a, x))
        assert c.driver_of(a) is None
        assert c.driver_of(x).gate_type is GateType.NOT
        fanout = c.fanout_of(a)
        assert (0, 0) in fanout and (1, 0) in fanout
        assert c.fanout_of(y) == []


class TestFaultInjection:
    def test_net_stuck_at_gate_output(self):
        c = build_half_adder()
        sum_net = c.gates[0].output
        assert c.evaluate((0, 0), faults=(NetStuckAt(sum_net, 1),)) == (1, 0)
        assert c.evaluate((1, 0), faults=(NetStuckAt(sum_net, 0),)) == (0, 0)

    def test_net_stuck_at_primary_input_affects_all_readers(self):
        c = build_half_adder()
        a_net = c.input_nets[0]
        # a stuck at 1: s = ~b? no: s = 1 xor b, c = b
        assert c.evaluate((0, 0), faults=(NetStuckAt(a_net, 1),)) == (1, 0)
        assert c.evaluate((0, 1), faults=(NetStuckAt(a_net, 1),)) == (0, 1)

    def test_pin_stuck_at_affects_single_reader(self):
        c = build_half_adder()
        # pin 0 of gate 1 (the AND) stuck at 1: only carry changes.
        fault = PinStuckAt(1, 0, 1)
        assert c.evaluate((0, 1), faults=(fault,)) == (1, 1)
        # the XOR still sees the true a=0
        assert c.evaluate((0, 0), faults=(fault,)) == (0, 0)

    def test_multiple_faults_compose(self):
        c = build_half_adder()
        faults = (
            NetStuckAt(c.gates[0].output, 0),
            NetStuckAt(c.gates[1].output, 1),
        )
        assert c.evaluate((1, 0), faults=faults) == (0, 1)

    def test_invalid_stuck_value(self):
        with pytest.raises(ValueError):
            NetStuckAt(0, 2)
        with pytest.raises(ValueError):
            PinStuckAt(0, 0, -1)

    def test_fault_identity(self):
        assert NetStuckAt(3, 1) == NetStuckAt(3, 1)
        assert NetStuckAt(3, 1) != NetStuckAt(3, 0)
        assert len({NetStuckAt(3, 1), NetStuckAt(3, 1)}) == 1
