"""The unified scenario layer: Workload vocabulary, FaultScenario
hierarchy, CampaignEngine routing, packed/serial bit-identity for the
transient and march backends, chunked-lane invariance, and cross-process
reproducibility."""

import pickle
import random

import pytest

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.design.engine import DesignEngine
from repro.design.spec import DesignSpec
from repro.faultsim.campaign import decoder_campaign, scheme_campaign
from repro.faultsim.injector import (
    burst_addresses,
    decoder_fault_list,
    random_addresses,
    sequential_addresses,
)
from repro.faultsim.transient import (
    TransientUpset,
    scrubbed_stream,
    transient_campaign,
)
from repro.memory.faults import (
    CellStuckAt,
    CompositeFault,
    CouplingFault,
    DataLineStuckAt,
    MemoryFault,
    MuxLineStuckAt,
)
from repro.memory.march import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    march_address_stream,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import (
    CampaignEngine,
    MemoryScenario,
    StructuralScenario,
    TransientScenario,
    Workload,
    as_scenarios,
    as_workload,
    named_workload,
)


def records(result):
    return [
        (str(r.fault), r.kind, r.first_detection, r.first_error)
        for r in result.records
    ]


def make_ram(words=32, bits=8, mux=4):
    return BehavioralRAM(MemoryOrganization(words, bits, column_mux=mux))


@pytest.fixture(scope="module")
def checked5():
    return CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), 5))


@pytest.fixture(scope="module")
def checker35():
    return MOutOfNChecker(3, 5, structural=False)


# -- Workload vocabulary -----------------------------------------------------


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestWorkloadShims:
    """The pre-1.3 stream helpers are bit-identical views of workloads
    (and, since 1.4, warn that Workload is the canonical path)."""

    def test_1_2_shims_warn_deprecation(self):
        with pytest.warns(DeprecationWarning, match="Workload.uniform"):
            random_addresses(4, 5)
        with pytest.warns(DeprecationWarning, match="Workload.scrubbed"):
            scrubbed_stream(8, 10, scrub_period=2)
        with pytest.warns(DeprecationWarning, match="Workload.march"):
            march_address_stream(MARCH_C_MINUS, 4)

    def test_uniform_matches_random_addresses(self):
        assert (
            Workload.uniform(64, 100, seed=3).address_list()
            == random_addresses(6, 100, seed=3)
        )

    def test_sequential_matches_helper(self):
        assert (
            Workload.sequential(32, 50, start=7).address_list()
            == sequential_addresses(5, 50, start=7)
        )

    def test_bursty_matches_helper(self):
        assert (
            Workload.bursty(32, 77, locality=4, seed=9).address_list()
            == burst_addresses(5, 77, locality=4, seed=9)
        )

    def test_scrubbed_matches_helper(self):
        assert (
            Workload.scrubbed(16, 80, scrub_period=4, seed=1).address_list()
            == scrubbed_stream(16, 80, 4, seed=1)
        )

    def test_march_matches_helper(self):
        for reads_only in (False, True):
            assert (
                Workload.march(
                    MARCH_C_MINUS, 8, reads_only=reads_only
                ).address_list()
                == march_address_stream(
                    MARCH_C_MINUS, 8, reads_only=reads_only
                )
            )

    def test_uniform_reproduces_legacy_rng_sequence(self):
        rng = random.Random(11)
        expected = [rng.randint(0, 15) for _ in range(40)]
        assert Workload.uniform(16, 40, seed=11).address_list() == expected


class TestWorkloadSemantics:
    def test_seeded_iteration_is_repeatable(self):
        workload = Workload.uniform(64, 50, seed=5)
        assert workload.address_list() == workload.address_list()

    def test_len_matches_trace(self):
        for workload in (
            Workload.uniform(8, 33, seed=1),
            Workload.bursty(8, 33, seed=1),
            Workload.march(MATS_PLUS, 4),
            Workload.march(MATS_PLUS, 4, reads_only=True),
            Workload.mixed(8, 33, seed=2),
            Workload.explicit([1, 2, 3]),
            Workload.uniform(8, 10, seed=1) + Workload.sequential(8, 5),
            Workload.sequential(8, 9).interleave(
                Workload.uniform(8, 4, seed=3)
            ),
        ):
            assert len(workload) == len(list(workload))

    def test_concat_order(self):
        combined = Workload.explicit([1, 2]) + Workload.explicit([3, 4])
        assert combined.address_list() == [1, 2, 3, 4]

    def test_concat_flattens(self):
        a, b, c = (Workload.explicit([i]) for i in range(3))
        assert len((a + b + c).parts) == 3

    def test_interleave_round_robin(self):
        woven = Workload.explicit([0, 0, 0, 0]).interleave(
            Workload.explicit([9, 9])
        )
        assert woven.address_list() == [0, 9, 0, 9, 0, 0]

    def test_chunks_bound_batches(self):
        workload = Workload.sequential(16, 50)
        batches = list(workload.chunks(7))
        assert [len(batch) for batch in batches] == [7] * 7 + [1]
        flat = [a.address for batch in batches for a in batch]
        assert flat == workload.address_list()

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            list(Workload.sequential(8, 8).chunks(0))

    def test_march_workload_carries_ops_and_backgrounds(self):
        accesses = list(Workload.march(MATS_PLUS, 2))
        assert accesses[0].op == "w" and accesses[0].bit == 0
        reads = [a for a in accesses if a.is_read]
        assert {a.bit for a in reads} == {0, 1}

    def test_mixed_workload_has_writes(self):
        workload = Workload.mixed(8, 40, seed=1, write_ratio=0.5)
        ops = {a.op for a in workload}
        assert ops == {"r", "w"}
        assert workload.has_writes

    def test_workloads_pickle(self):
        for workload in (
            Workload.uniform(8, 5, seed=1),
            Workload.march(MARCH_C_MINUS, 4),
            Workload.uniform(8, 5, seed=1) + Workload.sequential(8, 2),
        ):
            clone = pickle.loads(pickle.dumps(workload))
            assert clone == workload
            assert clone.address_list() == workload.address_list()

    def test_dict_round_trip(self):
        for workload in (
            Workload.uniform(8, 5, seed=1),
            Workload.bursty(8, 5, locality=3, seed=2),
            Workload.scrubbed(8, 5, scrub_period=2, seed=3),
            Workload.march(MATS_PLUS, 4, reads_only=True),
            Workload.mixed(8, 5, seed=4, write_ratio=0.25),
            Workload.explicit([1, 2, 3]),
            Workload.uniform(8, 5, seed=1)
            + Workload.march(MARCH_X, 4),
            Workload.sequential(8, 4).interleave(
                Workload.uniform(8, 4, seed=5)
            ),
        ):
            assert Workload.from_dict(workload.to_dict()) == workload

    def test_march_from_dict_accepts_name(self):
        workload = Workload.from_dict(
            {"kind": "march", "test": "MATS+", "words": 4}
        )
        assert workload.test == MATS_PLUS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_dict({"kind": "nope"})

    def test_as_workload_wraps_lists(self):
        workload = as_workload([3, 1, 2])
        assert workload.address_list() == [3, 1, 2]
        assert as_workload(workload) is workload

    def test_named_workload_families(self):
        for name in ("uniform", "sequential", "bursty", "scrubbed"):
            assert len(named_workload(name, 16, 20, seed=1)) == 20
        march = named_workload("march", 16, 0)
        assert march.test == MARCH_C_MINUS
        with pytest.raises(ValueError):
            named_workload("fancy", 16, 20)

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload.uniform(0, 5)
        with pytest.raises(ValueError):
            Workload.uniform(4, -1)
        with pytest.raises(ValueError):
            Workload.mixed(4, 5, write_ratio=1.5)


# -- FaultScenario hierarchy -------------------------------------------------


class TestScenarios:
    def test_as_scenarios_routes_by_type(self):
        from repro.circuits.faults import NetStuckAt

        scenarios = as_scenarios(
            [
                NetStuckAt(3, 1),
                CellStuckAt(0, 0, 1),
                TransientUpset(1, 2, 3),
            ]
        )
        kinds = [s.kind for s in scenarios]
        assert kinds == ["structural", "memory", "transient"]

    def test_structural_axis_validated(self):
        from repro.circuits.faults import NetStuckAt

        with pytest.raises(ValueError):
            StructuralScenario(fault=NetStuckAt(0, 1), axis="diagonal")

    def test_memory_scenario_composes(self):
        single = MemoryScenario(faults=(CellStuckAt(0, 0, 1),))
        assert isinstance(single.fault, CellStuckAt)
        multi = MemoryScenario(
            faults=(CellStuckAt(0, 0, 1), DataLineStuckAt(1, 0))
        )
        assert isinstance(multi.fault, CompositeFault)

    def test_transient_scenario_properties(self):
        scenario = TransientScenario(
            upsets=(TransientUpset(4, 1, 9), TransientUpset(2, 0, 3))
        )
        assert scenario.cycle == 3
        assert scenario.addresses == (2, 4)
        assert TransientScenario.single(1, 2, 3).upsets == (
            TransientUpset(1, 2, 3),
        )

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError):
            MemoryScenario(faults=())
        with pytest.raises(ValueError):
            TransientScenario(upsets=())


# -- CampaignEngine routing --------------------------------------------------


class TestCampaignEngineFacade:
    def test_engine_validated(self):
        with pytest.raises(ValueError):
            CampaignEngine(engine="vectorised")
        with pytest.raises(ValueError):
            CampaignEngine(workers=0)
        with pytest.raises(ValueError):
            CampaignEngine(chunk=0)

    def test_decoder_matches_direct_call(self, checked5, checker35):
        faults = decoder_fault_list(checked5)
        workload = Workload.uniform(32, 60, seed=2)
        via_facade = CampaignEngine().decoder(
            checked5, checker35, faults, workload
        )
        direct = decoder_campaign(
            checked5, checker35, faults, workload.address_list()
        )
        assert records(via_facade) == records(direct)

    def test_scheme_routes_scenarios_by_kind(self):
        org = MemoryOrganization(64, 8, column_mux=4)
        selection = select_code(10, 1e-9)

        def build():
            return SelfCheckingMemory.from_selection(org, selection)

        memory = build()
        row = decoder_fault_list(memory.row)[:4]
        column = decoder_fault_list(memory.column)[:3]
        memory_faults = [CellStuckAt(5, 1, 1), DataLineStuckAt(3, 1)]
        scenarios = (
            [StructuralScenario(fault=f, axis="row") for f in row]
            + [StructuralScenario(fault=f, axis="column") for f in column]
            + [MemoryScenario(faults=(f,)) for f in memory_faults]
        )
        workload = Workload.uniform(64, 120, seed=4)
        via_facade = CampaignEngine().scheme(
            build(), workload, scenarios
        )
        direct = scheme_campaign(
            build(),
            workload.address_list(),
            row_faults=row,
            column_faults=column,
            memory_faults=memory_faults,
        )
        assert [
            (str(r.fault), r.kind, r.first_detection)
            for r in via_facade.records
        ] == [
            (str(r.fault), r.kind, r.first_detection)
            for r in direct.records
        ]

    def test_scheme_rejects_transient_scenarios(self):
        org = MemoryOrganization(64, 8, column_mux=4)
        memory = SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))
        with pytest.raises(TypeError):
            CampaignEngine().scheme(
                memory,
                Workload.uniform(64, 10),
                [TransientScenario.single(0, 0, 0)],
            )

    def test_transient_rejects_memory_scenarios(self):
        with pytest.raises(TypeError):
            CampaignEngine().transient(
                make_ram(),
                [MemoryScenario(faults=(CellStuckAt(0, 0, 1),))],
                Workload.uniform(32, 10),
            )

    def test_march_rejects_transient_scenarios(self):
        with pytest.raises(TypeError):
            CampaignEngine().march(
                make_ram(),
                [TransientScenario.single(0, 0, 0)],
                MATS_PLUS,
            )


# -- chunked-lane invariance (satellite) -------------------------------------


class TestChunkedLaneInvariance:
    """Packed results are identical for chunk sizes W in {1, 7, 64, full}."""

    def test_decoder_campaign_chunk_invariant(self, checked5, checker35):
        faults = decoder_fault_list(checked5)
        addresses = Workload.uniform(32, 90, seed=13).address_list()
        reference = records(
            decoder_campaign(checked5, checker35, faults, addresses)
        )
        serial = records(
            decoder_campaign(
                checked5, checker35, faults, addresses, engine="serial"
            )
        )
        assert reference == serial
        for chunk in (1, 7, 64, len(addresses)):
            chunked = records(
                decoder_campaign(
                    checked5, checker35, faults, addresses, chunk=chunk
                )
            )
            assert chunked == reference, f"chunk={chunk}"

    def test_transient_campaign_chunk_invariant(self):
        scenarios = [
            TransientScenario.single(a, a % 8, (a * 11) % 150)
            for a in range(0, 32, 3)
        ] + [
            TransientScenario(
                upsets=(TransientUpset(7, 1, 10), TransientUpset(7, 4, 60))
            )
        ]
        workload = Workload.scrubbed(32, 200, scrub_period=4, seed=6)
        reference = records(
            CampaignEngine().transient(make_ram(), scenarios, workload)
        )
        for chunk in (1, 7, 64, len(workload)):
            chunked = records(
                CampaignEngine(chunk=chunk).transient(
                    make_ram(), scenarios, workload
                )
            )
            assert chunked == reference, f"chunk={chunk}"

    def test_chunk_invariance_holds_with_workload_writes(self):
        scenarios = [
            TransientScenario.single(a, 2, 25) for a in (0, 5, 9)
        ]
        workload = Workload.mixed(16, 120, seed=8, write_ratio=0.4)
        ram16 = lambda: make_ram(words=16, mux=2)  # noqa: E731
        reference = records(
            CampaignEngine().transient(ram16(), scenarios, workload)
        )
        serial = records(
            CampaignEngine(engine="serial").transient(
                ram16(), scenarios, workload
            )
        )
        assert reference == serial
        for chunk in (1, 7, 64):
            assert (
                records(
                    CampaignEngine(chunk=chunk).transient(
                        ram16(), scenarios, workload
                    )
                )
                == reference
            )


# -- transient backend bit-identity ------------------------------------------


class TestTransientEngines:
    def scenarios(self):
        return [
            TransientScenario.single(a, a % 9, c)
            for a, c in [(0, 3), (5, 0), (17, 100), (31, 5000), (9, 50)]
        ] + [
            # double flip restoring parity: error without detection
            TransientScenario(
                upsets=(TransientUpset(7, 1, 16), TransientUpset(7, 4, 30))
            ),
            # re-flip of the same bit: healed after the second strike
            TransientScenario(
                upsets=(TransientUpset(3, 2, 10), TransientUpset(3, 2, 40))
            ),
            # two victims
            TransientScenario(
                upsets=(TransientUpset(2, 0, 10), TransientUpset(4, 5, 20))
            ),
        ]

    @pytest.mark.parametrize(
        "workload",
        [
            Workload.scrubbed(32, 400, scrub_period=4, seed=2),
            Workload.uniform(32, 400, seed=1),
            Workload.sequential(32, 300),
            Workload.mixed(32, 400, seed=3, write_ratio=0.3),
            Workload.march(MARCH_Y, 32),
            Workload.uniform(32, 200, seed=1) + Workload.sequential(32, 64),
            Workload.sequential(32, 200).interleave(
                Workload.uniform(32, 100, seed=4)
            ),
        ],
        ids=lambda w: w.kind,
    )
    def test_packed_matches_serial_record_by_record(self, workload):
        scenarios = self.scenarios()
        packed = CampaignEngine("packed").transient(
            make_ram(), scenarios, workload
        )
        serial = CampaignEngine("serial").transient(
            make_ram(), scenarios, workload
        )
        assert records(packed) == records(serial)
        assert packed.engine == "packed" and serial.engine == "serial"

    def test_double_upset_is_parity_escape(self):
        scenario = TransientScenario(
            upsets=(TransientUpset(7, 1, 5), TransientUpset(7, 4, 5))
        )
        result = CampaignEngine().transient(
            make_ram(), [scenario], Workload.sequential(32, 64)
        )
        record = result.records[0]
        assert record.first_error is not None
        assert record.first_detection is None

    def test_write_clears_the_upset(self):
        # victim written (re-encoded) before ever being read: no error
        scenario = TransientScenario.single(3, 2, 0)
        accesses = [("w", 3, 0), ("r", 3, None)]
        from repro.scenarios.workload import Access, ExplicitWorkload

        class Script(ExplicitWorkload):
            def accesses(self):
                for op, address, bit in accesses:
                    yield Access(op, address, bit)

        script = Script(addresses_=(3, 3))
        packed = CampaignEngine("packed").transient(
            make_ram(), [scenario], script
        )
        serial = CampaignEngine("serial").transient(
            make_ram(), [scenario], script
        )
        assert records(packed) == records(serial)
        assert packed.records[0].first_detection is None
        assert packed.records[0].first_error is None

    def test_upset_beyond_stream_never_fires(self):
        scenario = TransientScenario.single(3, 2, 1000)
        result = CampaignEngine().transient(
            make_ram(), [scenario], Workload.sequential(32, 64)
        )
        assert result.records[0].first_detection is None

    def test_validation_matches_legacy(self):
        ram = BehavioralRAM(
            MemoryOrganization(16, 4, column_mux=2), with_parity=False
        )
        with pytest.raises(ValueError):
            CampaignEngine().transient(
                ram,
                [TransientScenario.single(0, 0, 0)],
                Workload.sequential(16, 4),
            )
        with pytest.raises(ValueError):
            CampaignEngine().transient(
                make_ram(),
                [TransientScenario.single(999, 0, 0)],
                Workload.sequential(32, 4),
            )
        with pytest.raises(ValueError):
            CampaignEngine().transient(
                make_ram(),
                [TransientScenario.single(0, 99, 0)],
                Workload.sequential(32, 4),
            )

    def test_rejects_preinjected_behavioural_faults(self):
        # a pre-injected fault would be honoured by the serial replay
        # but not by the packed lane algebra: refused up front
        ram = make_ram()
        ram.inject(DataLineStuckAt(0, 1))
        with pytest.raises(ValueError, match="fault-free"):
            CampaignEngine().transient(
                ram,
                [TransientScenario.single(5, 2, 50)],
                Workload.sequential(32, 64),
            )

    def test_serial_leaves_no_stray_flips(self):
        ram = make_ram()
        CampaignEngine("serial").transient(
            ram,
            [TransientScenario.single(5, 2, 0)],
            Workload.explicit([0, 1]),  # victim never read back
        )
        assert ram.parity_ok(5)  # the upset's flip was cleaned up

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_legacy_shim_matches_engine(self):
        upsets = [TransientUpset(5, 2, 3), TransientUpset(9, 0, 30)]
        stream = scrubbed_stream(32, 200, 4, seed=7)
        legacy = transient_campaign(make_ram(), upsets, stream)
        engine_result = CampaignEngine().transient(
            make_ram(),
            [TransientScenario(upsets=(u,)) for u in upsets],
            as_workload(stream),
        )
        assert [r.detected_at for r in legacy] == [
            r.first_detection for r in engine_result.records
        ]


# -- seeded cross-process reproducibility (satellite) ------------------------


class TestSeededReproducibility:
    def test_transient_campaign_reproducible_with_workers(self):
        """Two runs, same seed, workers=2: identical CampaignResults."""

        def run():
            scenarios = [
                TransientScenario.single(a, a % 8, (a * 7) % 90)
                for a in range(0, 32, 2)
            ]
            workload = Workload.scrubbed(32, 150, scrub_period=4, seed=21)
            return CampaignEngine(workers=2).transient(
                make_ram(), scenarios, workload
            )

        assert run() == run()

    def test_workers_match_single_process(self):
        scenarios = [
            TransientScenario.single(a, 1, 5) for a in range(0, 32, 4)
        ]
        workload = Workload.uniform(32, 120, seed=3)
        sharded = CampaignEngine(workers=2).transient(
            make_ram(), scenarios, workload
        )
        solo = CampaignEngine().transient(make_ram(), scenarios, workload)
        assert records(sharded) == records(solo)

    def test_march_workers_match_single_process(self):
        scenarios = [
            MemoryScenario(faults=(CellStuckAt(a, 1, 1),))
            for a in range(0, 32, 5)
        ]
        sharded = CampaignEngine(workers=2).march(
            make_ram(), scenarios, MARCH_C_MINUS
        )
        solo = CampaignEngine().march(make_ram(), scenarios, MARCH_C_MINUS)
        assert records(sharded) == records(solo)

    def test_workload_generators_reproducible_across_pickle(self):
        # what a spawn-started worker sees is the unpickled value
        workload = Workload.bursty(64, 200, locality=5, seed=17)
        clone = pickle.loads(pickle.dumps(workload))
        assert clone.address_list() == workload.address_list()


# -- march backend bit-identity ----------------------------------------------


class _WeirdFault(MemoryFault):
    """Not a built-in class: exercises the packed engine's serial
    fallback (reads of address 0 see bit 0 inverted)."""

    def apply_read(self, address, word, memory):
        if address == 0:
            word[0] ^= 1

    def __repr__(self):
        return "_WeirdFault()"


class TestMarchEngines:
    def scenarios(self):
        faults = [
            CellStuckAt(0, 0, 1),
            CellStuckAt(13, 3, 0),
            CellStuckAt(31, 7, 1),
            CellStuckAt(5, 8, 1),  # parity bit: invisible to read_data
            DataLineStuckAt(1, 1),
            DataLineStuckAt(6, 0),
            MuxLineStuckAt(0, 2, 1),
            MuxLineStuckAt(3, 2, 0),
            CouplingFault(3, 0, 9, 0),
            CouplingFault(9, 0, 3, 0),
            CouplingFault(3, 0, 9, 0, trigger=0, forced=0),
            CouplingFault(3, 0, 9, 0, write_triggered=True),
            CouplingFault(9, 0, 3, 0, write_triggered=True),
            CouplingFault(
                9, 1, 3, 1, trigger=0, forced=0, write_triggered=True
            ),
            _WeirdFault(),
            CompositeFault([CellStuckAt(2, 1, 1), DataLineStuckAt(0, 1)]),
        ]
        return [MemoryScenario(faults=(f,)) for f in faults]

    @pytest.mark.parametrize(
        "test", [MATS_PLUS, MARCH_X, MARCH_Y, MARCH_C_MINUS]
    )
    def test_packed_matches_serial_record_by_record(self, test):
        scenarios = self.scenarios()
        packed = CampaignEngine("packed").march(
            make_ram(), scenarios, test
        )
        serial = CampaignEngine("serial").march(
            make_ram(), scenarios, test
        )
        assert records(packed) == records(serial)

    def test_rejects_preinjected_behavioural_faults(self):
        ram = make_ram()
        ram.inject(CellStuckAt(0, 0, 1))
        with pytest.raises(ValueError, match="fault-free"):
            CampaignEngine().march(
                ram,
                [MemoryScenario(faults=(DataLineStuckAt(1, 1),))],
                MATS_PLUS,
            )

    def test_first_detection_is_operation_lane(self):
        # cell 0 stuck at 1: MATS+ element 1 (up r0) reads it first;
        # lane = words writes of element 0, then the first r0
        words = 32
        scenario = MemoryScenario(faults=(CellStuckAt(0, 0, 1),))
        result = CampaignEngine().march(
            make_ram(words=words), [scenario], MATS_PLUS
        )
        assert result.records[0].first_detection == words

    def test_cycles_simulated_is_compiled_length(self):
        result = CampaignEngine().march(
            make_ram(), [MemoryScenario(faults=(CellStuckAt(0, 0, 1),))],
            MARCH_C_MINUS,
        )
        assert result.cycles_simulated == 10 * 32


# -- DesignSpec workload integration -----------------------------------------


class TestDesignSpecWorkload:
    def test_spec_round_trips_named_workload(self):
        spec = DesignSpec(words=512, bits=8, workload="bursty")
        assert DesignSpec.from_json(spec.to_json()) == spec

    def test_spec_round_trips_full_workload(self):
        workload = Workload.scrubbed(64, 128, scrub_period=4, seed=3)
        spec = DesignSpec(words=512, bits=8, workload=workload)
        clone = DesignSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.workload == workload

    def test_spec_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            DesignSpec(words=512, bits=8, workload="fancy")
        with pytest.raises(ValueError):
            DesignSpec(words=512, bits=8, workload=3.14)

    def test_empirical_uses_spec_workload(self):
        engine = DesignEngine()
        spec = DesignSpec(words=512, bits=8, workload="sequential")
        report = engine.empirical(spec, cycles=64)
        assert report.workload.startswith("sequential(")
        assert report.cycles == 64

    def test_empirical_full_workload_overrides_cycles(self):
        engine = DesignEngine()
        workload = Workload.uniform(64, 48, seed=9)
        spec = DesignSpec(words=512, bits=8, workload=workload)
        report = engine.empirical(spec, cycles=256)
        assert report.cycles == 48

    def test_empirical_rejects_oversized_addresses(self):
        engine = DesignEngine()
        spec = DesignSpec(
            words=512, bits=8, workload=Workload.uniform(1024, 16, seed=1)
        )
        with pytest.raises(ValueError):
            engine.empirical(spec)

    def test_default_workload_matches_pre13_behaviour(self):
        engine = DesignEngine()
        spec = DesignSpec(words=512, bits=8)
        default = engine.empirical(spec, cycles=64, seed=7)
        pinned = engine.empirical(
            spec.replace(workload=Workload.uniform(64, 64, seed=7)),
            cycles=64,
            seed=7,
        )
        assert default.coverage == pinned.coverage
        assert default.escape_fraction_at_c == pinned.escape_fraction_at_c
