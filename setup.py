"""Setup shim for environments without the `wheel` package (offline CI).

`pip install -e . --no-build-isolation` falls back to this legacy path;
all real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    # version comes from repro.__version__ via pyproject's dynamic metadata
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
