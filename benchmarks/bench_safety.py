"""E3 — §II safety example: the three-orders-of-magnitude argument."""


import pytest

from repro.experiments.safety_example import generate_safety_example


def test_bench_safety_example(benchmark):
    example = benchmark(generate_safety_example)
    assert example.rate_full_coverage_scheme > 0


def test_safety_numbers_match_paper():
    example = generate_safety_example()
    print(
        f"\nfull-coverage scheme: {example.rate_full_coverage_scheme:.3g}/h"
        f" (paper 1e-9) | array-only: {example.rate_array_only:.3g}/h"
        f" (paper ~1e-6) | lost: {example.orders_of_magnitude_lost:.2f}"
        f" orders"
    )
    assert example.rate_full_coverage_scheme == pytest.approx(1e-9)
    assert example.rate_array_only == pytest.approx(1e-6, rel=0.01)
    assert example.orders_of_magnitude_lost == pytest.approx(3.0, abs=0.01)
