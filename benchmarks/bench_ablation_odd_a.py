"""X4 — ablation: odd modulus vs the §III.1 truncated-Berger construction.

"a must be odd": an even effective modulus (the preliminary construction's
2^(n-k)) shares factors with the 2^j block offsets, leaving the high-bit
sub-decoder entirely unchecked.  The bench quantifies the coverage gap.
"""

from repro.experiments.ablations import run_odd_a_ablation


def test_bench_odd_a_ablation(benchmark):
    result = benchmark.pedantic(
        run_odd_a_ablation,
        kwargs=dict(n_bits=5, k=2, cycles=150),
        iterations=1,
        rounds=2,
    )
    assert result.coverage_mod_a > 0


def test_odd_a_wins():
    result = run_odd_a_ablation(n_bits=6, k=2, cycles=300)
    print(
        f"\ncoverage mod-a: {result.coverage_mod_a:.3f} | "
        f"truncated-Berger: {result.coverage_truncated_berger:.3f} | "
        f"blind sites: {result.blind_sites_mod_a} vs "
        f"{result.blind_sites_berger}"
    )
    # the final construction has no analytically blind site
    assert result.blind_sites_mod_a == 0
    # the preliminary construction leaves the high-bit sub-decoder blind
    assert result.blind_sites_berger > 0
    # which shows up as a measurable coverage gap
    assert result.coverage_mod_a > result.coverage_truncated_berger
