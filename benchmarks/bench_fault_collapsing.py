"""X8 — fault collapsing on the paper's decoder trees.

EDA housekeeping that makes exhaustive campaigns affordable: structural
equivalence classes shrink the stuck-at fault list of the AND-tree
decoders substantially, with provably zero loss (classes are functionally
indistinguishable — re-proven here on a real tree by simulation).
"""

import pytest

from repro.circuits.equivalence import collapse_faults
from repro.decoder.tree import DecoderTree


def test_bench_collapse_decoder(benchmark):
    tree = DecoderTree(6)
    classes = benchmark(collapse_faults, tree.circuit)
    assert classes.num_classes > 0


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_collapse_ratio_improves_with_size(n):
    tree = DecoderTree(n)
    classes = collapse_faults(tree.circuit)
    print(
        f"\nn={n}: {classes.total} faults -> {classes.num_classes} classes "
        f"(ratio {classes.collapse_ratio:.2f})"
    )
    assert classes.collapse_ratio < 0.75


def test_collapsed_campaign_matches_full_campaign():
    from repro.checkers.m_out_of_n_checker import MOutOfNChecker
    from repro.circuits.faults import enumerate_stuck_at_faults
    from repro.codes.m_out_of_n import MOutOfNCode
    from repro.core.mapping import mapping_for_code
    from repro.faultsim.campaign import decoder_campaign
    from repro.faultsim.injector import sequential_addresses
    from repro.rom.nor_matrix import CheckedDecoder

    mapping = mapping_for_code(MOutOfNCode(3, 5), 4)
    checked = CheckedDecoder(mapping)
    checker = MOutOfNChecker(3, 5, structural=False)
    stream = sequential_addresses(4, 32)

    # the full universe: stem AND pin faults (address inputs excluded —
    # out of the scheme's fault model)
    full_faults = enumerate_stuck_at_faults(
        checked.tree.circuit, include_inputs=False, include_pins=True
    )
    classes = collapse_faults(checked.tree.circuit, full_faults)
    reps = [cls[0] for cls in classes.classes]

    full = decoder_campaign(
        checked, checker, full_faults, stream, attach_analytic=False
    )
    collapsed = decoder_campaign(
        checked, checker, reps, stream, attach_analytic=False
    )
    # identical coverage from the collapsed list, at a fraction of the work
    assert collapsed.coverage == full.coverage == 1.0
    assert len(reps) < len(full_faults)
    print(
        f"\ncampaign size: {len(full_faults)} -> {len(reps)} faults "
        f"({100 * (1 - len(reps) / len(full_faults)):.0f} % saved)"
    )
