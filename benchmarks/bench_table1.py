"""E1 — Table (1): hardware increase vs detection latency (c swept).

Regenerates the paper's Table 1 and checks its shape: overhead is linear
in the code width, decreases monotonically with allowed latency, and the
per-size ordering (16x2K > 32x4K > 64x8K) holds on every row.
"""

import pytest

from repro.experiments.table1 import generate_table1, render_table1


@pytest.fixture(scope="module")
def rows():
    return generate_table1()


def test_bench_generate_table1(benchmark):
    result = benchmark(generate_table1)
    assert len(result) == 6


def test_table1_reproduction(rows):
    print()
    print(render_table1(rows))

    # every selection meets the Pndc = 1e-9 spec
    assert all(r.our_pndc <= 1e-9 for r in rows)

    # shape: more latency budget => narrower code => less area
    for col in range(3):
        ours = [r.our_overheads[col] for r in rows]
        assert ours == sorted(ours, reverse=True)

    # per-size ordering on every row
    for r in rows:
        a, b, c = r.our_overheads
        assert a > b > c

    # rows where we match the paper's code must match its numbers closely
    for r in rows:
        if r.matches_paper:
            for model, reported in zip(
                r.our_overheads, r.paper_overheads_reported
            ):
                assert model == pytest.approx(reported, rel=0.15)

    # the trade-off factor: the c=2 endpoint costs ~9x the c=40 endpoint,
    # matching the paper's 88.7 vs 9.7 (within 20 %)
    ratio = rows[0].our_overheads[0] / rows[-1].our_overheads[0]
    assert ratio == pytest.approx(88.7 / 9.7, rel=0.2)


def test_table1_paper_codes_reproduce_reported_areas(rows):
    # independent of our selection: the paper's own code choices put
    # through the area model reproduce the printed numbers
    for r in rows:
        for model, reported in zip(
            r.paper_overheads_model, r.paper_overheads_reported
        ):
            assert model == pytest.approx(reported, rel=0.15), (
                r.c,
                r.paper_code,
            )
