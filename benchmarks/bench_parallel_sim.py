"""X11 — bit-parallel simulation speedup on campaign workloads.

Times serial vs packed evaluation of a checked decoder over a long
address stream and asserts (a) identical results, (b) a real speedup —
the substrate that keeps exhaustive campaigns affordable in pure Python.
"""

import time

import pytest

from repro.circuits.parallel import packed_rom_words
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.scenarios import Workload
from repro.rom.nor_matrix import CheckedDecoder

N_BITS = 6
CYCLES = 256


@pytest.fixture(scope="module")
def checked():
    return CheckedDecoder(mapping_for_code(MOutOfNCode(3, 5), N_BITS))


@pytest.fixture(scope="module")
def addresses():
    return Workload.uniform(1 << N_BITS, CYCLES, seed=31).address_list()


def test_bench_serial_stream(benchmark, checked, addresses):
    def serial():
        return [checked.rom_word(a) for a in addresses]

    words = benchmark(serial)
    assert len(words) == CYCLES


def test_bench_packed_stream(benchmark, checked, addresses):
    words = benchmark(packed_rom_words, checked, addresses)
    assert len(words) == CYCLES


def test_packed_equals_serial_and_is_faster(checked, addresses):
    start = time.perf_counter()
    serial = [checked.rom_word(a) for a in addresses]
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    packed = packed_rom_words(checked, addresses)
    packed_time = time.perf_counter() - start

    assert packed == serial
    speedup = serial_time / packed_time if packed_time else float("inf")
    print(
        f"\nserial {serial_time * 1e3:.1f} ms vs packed "
        f"{packed_time * 1e3:.1f} ms -> x{speedup:.1f} speedup"
    )
    # one netlist pass for 256 lanes vs 256 passes: demand at least 5x
    # (typical is 30-80x) to keep the assertion robust on slow machines
    assert speedup > 5
