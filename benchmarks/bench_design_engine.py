"""Bench — `DesignEngine.sweep` throughput (the trade-off hot path).

Measures specs/second over the PAPER_ORGS x requirements grid, serial
vs thread-pooled, so later performance PRs (caching the selection step,
batching the area models, process-pool sharding) have a baseline.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_design_engine.py -q``
"""

import time

from repro.design.engine import DesignEngine
from repro.design.spec import DesignSpec
from repro.memory.organization import PAPER_ORGS

REQUIREMENTS = [(2, 1e-9), (10, 1e-9), (10, 1e-15), (20, 1e-9), (40, 1e-9)]


def sweep_grid(workers=None):
    engine = DesignEngine()
    specs = DesignSpec.grid(PAPER_ORGS, REQUIREMENTS)
    return engine.sweep(specs, workers=workers)


def test_bench_sweep_serial(benchmark):
    reports = benchmark(sweep_grid)
    assert len(reports) == len(PAPER_ORGS) * len(REQUIREMENTS)


def test_bench_sweep_threaded(benchmark):
    reports = benchmark(lambda: sweep_grid(workers=4))
    assert len(reports) == len(PAPER_ORGS) * len(REQUIREMENTS)


def test_throughput_report():
    """Print specs/sec serial vs workers=4 (informational)."""
    specs = DesignSpec.grid(PAPER_ORGS, REQUIREMENTS)
    engine = DesignEngine()
    for workers in (None, 2, 4):
        start = time.perf_counter()
        reports = engine.sweep(specs, workers=workers)
        elapsed = time.perf_counter() - start
        assert len(reports) == len(specs)
        print(
            f"\nsweep workers={workers or 1}: "
            f"{len(specs) / elapsed:.1f} specs/sec "
            f"({elapsed * 1000:.1f} ms for {len(specs)} specs)"
        )


def test_parallel_results_match_serial():
    specs = DesignSpec.grid(PAPER_ORGS, REQUIREMENTS[:3])
    engine = DesignEngine()
    assert engine.sweep(specs) == engine.sweep(specs, workers=4)
