"""F1–F3 — the paper's figures, reproduced as living structures.

Figure 1 (self-checking circuit), figure 2 (memory block diagram) and
figure 3 (the proposed self-checking memory) are block diagrams; the
bench instantiates the figure-3 system and re-verifies the connectivity
checklist, timing the full build (decoder trees + NOR ROMs + checkers).
"""

from repro.experiments.structure import (
    build_figure3_instance,
    verify_structure,
)


def test_bench_build_figure3(benchmark):
    memory = benchmark(build_figure3_instance)
    assert memory.row.tree.circuit.num_gates > 0


def test_structure_checklist():
    memory = build_figure3_instance()
    report = verify_structure(memory)
    print()
    for name, ok in report.checks.items():
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    assert report.all_ok, report.checks


def test_figure3_component_inventory():
    memory = build_figure3_instance(words=256, bits=8, column_mux=4)
    org = memory.organization
    # two decoders with their ROMs, matching figure 3's datapath
    assert memory.row.matrix.num_lines == org.rows
    assert memory.column.matrix.num_lines == org.column_mux
    assert memory.row.matrix.width == memory.row.mapping.rom_width
    # parity column on the data register
    assert memory.ram.word_width == org.bits + 1
    # q-out-of-r checkers on both ROMs
    assert memory.row_checker.input_width == memory.row.matrix.width
    assert memory.column_checker.input_width == memory.column.matrix.width
