"""X6 — SEC-DED baseline: ECC on the data path does not cover decoders.

Shape assertions: SEC-DED costs several times the parity bit in check
storage, and silently mis-handles a large fraction of decoder-merge
patterns that the paper's ROM scheme flags by construction.
"""

from repro.experiments.ecc_baseline import (
    run_ecc_baseline,
    storage_overhead_rows,
)


def test_bench_ecc_baseline(benchmark):
    result = benchmark.pedantic(
        run_ecc_baseline,
        kwargs=dict(data_bits=16, trials=500, seed=2),
        iterations=1,
        rounds=3,
    )
    assert result.secded_merge.trials == 500


def test_ecc_baseline_shape():
    print()
    for bits, parity_pct, secded_pct in storage_overhead_rows():
        print(
            f"  {bits:2d}-bit words: parity {parity_pct:5.2f} % vs "
            f"SEC-DED {secded_pct:5.2f} % check storage"
        )
        # SEC-DED always costs several times the single parity bit
        assert secded_pct >= 4 * parity_pct

    result = run_ecc_baseline(data_bits=16, trials=2000, seed=17)
    merge = result.secded_merge
    print(
        f"  merge outcomes (16-bit): detected {merge.detected_fraction:.1%},"
        f" silent wrong {merge.silent_wrong_fraction:.1%}"
    )
    # who wins: the ROM scheme detects merges with probability 1 - 1/a
    # per access independent of data; SEC-DED leaves a large silent hole.
    assert merge.silent_wrong_fraction > 0.15
    assert merge.detected_fraction < 0.9
