"""X7 — deterministic latency guarantees under scanning address streams.

Extension of the paper's probabilistic model: under a periodic sweep
(March-style scrub) every decoder fault has a hard worst-case detection
bound.  The bench computes the bound for a full decoder, checks it
dominates a measured sweep campaign, and shows the §III.1 ablation
mapping has *no* finite guarantee.
"""

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.deterministic import deterministic_bounds, scan_guarantee
from repro.core.mapping import TruncatedBergerMapping, mapping_for_code
from repro.faultsim.campaign import decoder_campaign
from repro.faultsim.injector import decoder_fault_list, sequential_addresses
from repro.rom.nor_matrix import CheckedDecoder

N_BITS = 5


def test_bench_scan_guarantee(benchmark):
    mapping = mapping_for_code(MOutOfNCode(3, 5), N_BITS)
    checked = CheckedDecoder(mapping)
    guarantee = benchmark(scan_guarantee, checked.tree, mapping)
    assert guarantee is not None


def test_guarantee_dominates_measurement():
    mapping = mapping_for_code(MOutOfNCode(3, 5), N_BITS)
    checked = CheckedDecoder(mapping)
    guarantee = scan_guarantee(checked.tree, mapping)
    print(f"\nscan guarantee: every decoder fault within {guarantee} cycles")
    assert guarantee == 1 << N_BITS  # slowest: s-a-0 excited once/sweep

    stream = sequential_addresses(N_BITS, 2 << N_BITS)
    result = decoder_campaign(
        checked,
        MOutOfNChecker(3, 5, structural=False),
        decoder_fault_list(checked),
        stream,
        attach_analytic=False,
    )
    assert result.coverage == 1.0
    assert max(result.detection_cycles()) <= guarantee


def test_sa1_bounds_are_much_tighter_than_sa0():
    mapping = mapping_for_code(MOutOfNCode(3, 5), N_BITS)
    checked = CheckedDecoder(mapping)
    bounds = deterministic_bounds(checked.tree, mapping)
    sa1 = [b.latency for b in bounds if b.site.kind == "sa1"]
    sa0 = [b.latency for b in bounds if b.site.kind == "sa0"]
    assert max(sa1) < max(sa0)
    print(
        f"\nworst s-a-1 bound {max(sa1)} cycles vs worst s-a-0 bound "
        f"{max(sa0)} cycles (excitation-limited)"
    )


def test_ablation_mapping_has_no_guarantee():
    mapping = TruncatedBergerMapping(N_BITS, k=2)
    checked = CheckedDecoder(mapping)
    assert scan_guarantee(checked.tree, mapping) is None
