"""E4 — §III.2 worked example: (c=10, Pndc=1e-9) -> a=8 -> 3-out-of-5, a=9.

Also times the selection algorithm across the full parameter grid of both
tables (it is the designer-facing entry point of the library).
"""

import pytest

from repro.core.selection import SelectionPolicy, select_code


def run_grid():
    out = []
    for c in (2, 5, 10, 20, 30, 40):
        out.append(select_code(c, 1e-9, policy=SelectionPolicy.EXACT))
    for pndc in (1e-2, 1e-5, 1e-9, 1e-15, 1e-20, 1e-30):
        out.append(
            select_code(10, pndc, policy=SelectionPolicy.APPROXIMATE)
        )
    return out


def test_bench_selection_grid(benchmark):
    selections = benchmark(run_grid)
    assert len(selections) == 12


def test_worked_example_exact_numbers():
    sel = select_code(10, 1e-9)
    print(f"\n{sel.describe()}")
    # the paper: "we find a = 8 and the code satisfying C >= 8+1 is the
    # 3-out-of-5 code having C = 10.  The value of a used ... will be 9."
    assert sel.code_name == "3-out-of-5"
    assert sel.code.cardinality() == 10
    assert sel.a_final == 9
    # Pndc = (ceil(2^i/a)/2^i)^c = (1/8)^10 ~ 9.3e-10 <= 1e-9
    assert sel.achieved_pndc == pytest.approx(2.0 ** -30)
    assert sel.meets_target
