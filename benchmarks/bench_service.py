"""Campaign service benchmark: submit->done over HTTP -> BENCH_service.json.

Times the built-in ``paper_grid`` suite submitted twice through a real
``ServiceClient`` against one in-thread server and one store — the cold
job simulates every cell, the resumed job must be served entirely as
verified store hits — and records both wall times, the resume speedup
and the pure request-path overhead (a health round trip).  Like
``bench_suite.py`` the payload is written once per run and appended to
a persistent history trajectory, so the traffic layer's overhead is
tracked commit over commit (``repro analytics regress`` gates it in
CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py [--out PATH]
        [--suite NAME] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro import __version__
from repro.analytics.history import append_entry
from repro.service import CampaignService, ServiceClient, serving


def _timed_job(client: ServiceClient, suite: str) -> tuple:
    start = time.perf_counter()
    job = client.submit(suite)
    job = client.wait(job["job_id"], timeout=600)
    return job, time.perf_counter() - start


def bench_service(name: str, workers: int) -> dict:
    with tempfile.TemporaryDirectory() as root:
        with CampaignService(store=root, workers=workers) as service:
            with serving(service) as url:
                client = ServiceClient(url)
                start = time.perf_counter()
                for _ in range(20):
                    client.health()
                health_ms = (time.perf_counter() - start) / 20 * 1e3
                cold_job, cold_s = _timed_job(client, name)
                resumed_job, resumed_s = _timed_job(client, name)
    cold = cold_job["report"]["execution"]
    resumed = resumed_job["report"]["execution"]
    ok = (
        cold_job["state"] == resumed_job["state"] == "done"
        and cold["errors"] == resumed["errors"] == 0
        and resumed["simulated"] == 0
        and resumed["verified_hits"] == resumed["cells"]
        and cold_job["result_keys"] == resumed_job["result_keys"]
    )
    return {
        "name": f"service_{name}",
        "cells": cold["cells"],
        "workers": workers,
        "health_round_trip_ms": round(health_ms, 3),
        "cold_s": round(cold_s, 4),
        "resumed_s": round(resumed_s, 4),
        "resume_speedup": round(cold_s / resumed_s, 1),
        "resumed_all_verified_hits": ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--history", default="BENCH_service.history.jsonl",
        metavar="PATH",
        help="persistent trajectory: every run appends one JSON line "
        "('' disables)",
    )
    parser.add_argument("--suite", default="paper_grid")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    benches = [bench_service(args.suite, workers=args.workers)]
    payload = {
        "bench": "campaign_service",
        "version": __version__,
        "benches": benches,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if args.history:
        append_entry(args.history, payload)

    for bench in benches:
        flag = "ok " if bench["resumed_all_verified_hits"] else "MISMATCH"
        print(
            f"{bench['name']}  {bench['cells']:>3} cells  "
            f"health {bench['health_round_trip_ms']:6.2f} ms  "
            f"cold {bench['cold_s'] * 1e3:8.1f} ms  "
            f"resumed {bench['resumed_s'] * 1e3:7.1f} ms  "
            f"x{bench['resume_speedup']:<6g} [{flag}]"
        )
    print(f"wrote {args.out}")
    if args.history:
        print(f"appended to {args.history}")

    if not all(b["resumed_all_verified_hits"] for b in benches):
        print(
            "FAIL: the resumed service job was not served entirely "
            "from verified store hits",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
