"""Suite orchestrator benchmark: cold vs resumed -> BENCH_suite.json.

Times the built-in ``paper_grid`` suite twice against one store — the
cold run simulates every cell, the resumed run must serve everything as
verified hits without invoking the simulator — and records both wall
times plus the resume speedup.  Like ``run_campaigns.py`` the payload
is written once per run and appended to a persistent history
trajectory, so the batch layer's overhead is tracked commit over
commit (``repro analytics regress`` gates it in CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_suite.py [--out PATH]
        [--suite NAME] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

from repro import __version__
from repro.analytics.history import append_entry
from repro.suite import SuiteRunner, builtin_suite


def bench_suite(name: str, workers=None) -> dict:
    suite = builtin_suite(name)
    with tempfile.TemporaryDirectory() as store:
        start = time.perf_counter()
        cold = SuiteRunner(store=store, workers=workers).run(suite)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        resumed = SuiteRunner(store=store, workers=workers).run(suite)
        resumed_s = time.perf_counter() - start
    cells = len(suite.cells())
    ok = (
        cold.errors == 0
        and resumed.errors == 0
        and resumed.simulated == 0
        and resumed.verified_hits == cells
        and cold.to_dict(stable_only=True)
        == resumed.to_dict(stable_only=True)
    )
    return {
        "name": f"suite_{name}",
        "cells": cells,
        "workers": workers,
        "cold_s": round(cold_s, 4),
        "resumed_s": round(resumed_s, 4),
        "cold_cells_per_sec": round(cells / cold_s, 1),
        "resumed_cells_per_sec": round(cells / resumed_s, 1),
        "resume_speedup": round(cold_s / resumed_s, 1),
        "resumed_all_verified_hits": ok,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_suite.json")
    parser.add_argument(
        "--history", default="BENCH_suite.history.jsonl",
        metavar="PATH",
        help="persistent trajectory: every run appends one JSON line "
        "('' disables)",
    )
    parser.add_argument("--suite", default="paper_grid")
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    benches = [bench_suite(args.suite, workers=args.workers)]
    payload = {
        "bench": "suite_orchestrator",
        "version": __version__,
        "benches": benches,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if args.history:
        append_entry(args.history, payload)

    for bench in benches:
        flag = "ok " if bench["resumed_all_verified_hits"] else "MISMATCH"
        print(
            f"{bench['name']}  {bench['cells']:>3} cells  "
            f"cold {bench['cold_s'] * 1e3:8.1f} ms  "
            f"resumed {bench['resumed_s'] * 1e3:7.1f} ms  "
            f"x{bench['resume_speedup']:<6g} [{flag}]"
        )
    print(f"wrote {args.out}")
    if args.history:
        print(f"appended to {args.history}")

    if not all(b["resumed_all_verified_hits"] for b in benches):
        print(
            "FAIL: the resumed suite run was not served entirely from "
            "verified store hits",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
