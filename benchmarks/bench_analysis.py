"""Static-analysis benchmark: lint wall time -> BENCH_analysis.json.

Times ``repro.analysis.analyze`` over the paper's three RAM designs
(the full composition: design rules + netlist rules on both decoder
circuits + decoder rules + TSC checker proofs) and over the built-in
``paper_grid`` suite spec, asserting every target lints in under the
2 s budget with zero findings.  The payload is written once per run and
appended to a persistent history trajectory, so the analyzer's cost is
tracked commit over commit (``repro analytics regress`` gates it in
CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_analysis.py [--out PATH]
        [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import __version__
from repro.analysis import analyze
from repro.analytics.history import append_entry
from repro.design.spec import DesignSpec
from repro.memory.organization import PAPER_ORGS
from repro.suite import builtin_suite


def bench_design(org) -> dict:
    spec = DesignSpec(
        words=org.words, bits=org.bits, column_mux=org.column_mux
    )
    start = time.perf_counter()
    report = analyze(spec)
    wall_s = time.perf_counter() - start
    return {
        "name": f"lint_{org.label()}",
        "kind": "design",
        "rules_run": len(report.rules_run),
        "findings": len(report.findings),
        "skipped": len(report.skipped),
        "wall_s": round(wall_s, 4),
    }


def bench_suite(name: str) -> dict:
    suite = builtin_suite(name)
    start = time.perf_counter()
    report = analyze(suite)
    wall_s = time.perf_counter() - start
    return {
        "name": f"lint_suite_{name}",
        "kind": "suite",
        "cells": len(suite.cells()),
        "rules_run": len(report.rules_run),
        "findings": len(report.findings),
        "skipped": len(report.skipped),
        "wall_s": round(wall_s, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_analysis.json")
    parser.add_argument(
        "--history", default="BENCH_analysis.history.jsonl",
        metavar="PATH",
        help="persistent trajectory: every run appends one JSON line "
        "('' disables)",
    )
    parser.add_argument(
        "--budget", type=float, default=2.0,
        help="per-target wall-time ceiling in seconds (default 2)",
    )
    args = parser.parse_args(argv)

    # the three paper RAMs, largest (64x8K, 1024-line row decoder) last
    benches = [bench_design(org) for org in PAPER_ORGS]
    benches.append(bench_suite("paper_grid"))
    payload = {
        "bench": "static_analysis",
        "version": __version__,
        "budget_s": args.budget,
        "benches": benches,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if args.history:
        append_entry(args.history, payload)

    failures = []
    for bench in benches:
        over = bench["wall_s"] > args.budget
        dirty = bench["findings"] != 0
        flag = "ok " if not (over or dirty) else "FAIL"
        print(
            f"{bench['name']:<22} {bench['rules_run']:>2} rules  "
            f"{bench['findings']} finding(s)  "
            f"{bench['skipped']} skip(s)  "
            f"{bench['wall_s'] * 1e3:8.1f} ms [{flag}]"
        )
        if over:
            failures.append(
                f"{bench['name']} took {bench['wall_s']}s "
                f"(budget {args.budget}s)"
            )
        if dirty:
            failures.append(
                f"{bench['name']} has {bench['findings']} finding(s)"
            )
    print(f"wrote {args.out}")
    if args.history:
        print(f"appended to {args.history}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
