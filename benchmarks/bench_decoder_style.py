"""X10 — single-level vs multilevel decoders under the parity scheme.

The §III observation that motivates the whole paper, as a measured
experiment: who wins (flat+parity ≈ tree+mod-a >> tree+parity) and by
what kind of factor (mean first-error latency an order of magnitude
apart).
"""

import pytest

from repro.experiments.decoder_style import run_decoder_style_experiment


@pytest.fixture(scope="module")
def results():
    return run_decoder_style_experiment(n_bits=6, cycles=400, seed=23)


def test_bench_decoder_style(benchmark):
    rows = benchmark.pedantic(
        run_decoder_style_experiment,
        kwargs=dict(n_bits=5, cycles=150, seed=2),
        iterations=1,
        rounds=1,
    )
    assert len(rows) == 3


def test_style_orderings(results):
    flat_parity, tree_parity, tree_mod = results
    print()
    for row in results:
        print(
            f"  {row.label:42s}: zero-latency "
            f"{row.zero_latency_fraction:.2f}, worst "
            f"{row.worst_latency}, mean {row.mean_latency:.2f}"
        )
    # parity is near-perfect on the single-level decoder...
    assert flat_parity.zero_latency_fraction > 0.9
    # ...degrades on the multilevel decoder ("low fault coverage and
    # large detection latency")...
    assert tree_parity.zero_latency_fraction < 0.9
    assert tree_parity.worst_latency > 5 * max(1, flat_parity.worst_latency)
    # ...and the paper's mod-a scheme restores it.
    assert tree_mod.zero_latency_fraction > 0.9
    assert tree_mod.mean_latency < tree_parity.mean_latency / 3
