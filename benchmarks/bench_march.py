"""X9 — March tests as the deterministic workload substrate.

Times the classical March algorithms on the behavioural RAM and asserts
their textbook coverage guarantees (every march detects every single
stuck-at cell fault; March C- additionally catches idempotent coupling).
"""

import pytest

from repro.memory.faults import CellStuckAt, CouplingFault
from repro.memory.march import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    run_march,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM


def make_ram(words=256):
    return BehavioralRAM(MemoryOrganization(words, 8, column_mux=4))


def test_bench_march_c_minus(benchmark):
    def run():
        return run_march(make_ram(), MARCH_C_MINUS)

    violations = benchmark(run)
    assert violations == []


@pytest.mark.parametrize(
    "test", [MATS_PLUS, MARCH_X, MARCH_Y, MARCH_C_MINUS],
    ids=lambda t: t.name,
)
def test_march_saf_coverage(test):
    detected = 0
    trials = 0
    for address in (0, 100, 255):
        for value in (0, 1):
            ram = make_ram()
            ram.inject(CellStuckAt(address, 5, value))
            trials += 1
            if run_march(ram, test):
                detected += 1
    print(f"\n{test}: {detected}/{trials} stuck-at cells detected")
    assert detected == trials


def test_march_c_minus_coupling_coverage():
    detected = 0
    cases = 0
    for aggressor, victim in ((3, 200), (200, 3), (17, 18)):
        for trigger in (0, 1):
            ram = make_ram()
            ram.inject(
                CouplingFault(
                    aggressor_address=aggressor, aggressor_bit=0,
                    victim_address=victim, victim_bit=0,
                    trigger=trigger, forced=1,
                )
            )
            cases += 1
            if run_march(ram, MARCH_C_MINUS):
                detected += 1
    print(f"\nMarch C-: {detected}/{cases} coupling faults detected")
    assert detected == cases
