"""X2 — Pndc formula validation: worst-site escape vs c, analytic & measured.

For the paper's worked code (3-out-of-5, a=9) the worst stuck-at-1 site
escapes c cycles with probability (1/8)^c.  We pick the analytically
worst site in a real decoder tree, replay many independent random
streams, and compare the measured survival at several c against the
formula — the trade-off curve the whole paper stands on.
"""

import pytest

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.latency import worst_escape_over_blocks
from repro.core.mapping import mapping_for_code
from repro.decoder.analysis import analyze_decoder
from repro.faultsim.campaign import decoder_campaign
from repro.scenarios import Workload
from repro.rom.nor_matrix import CheckedDecoder

N_BITS = 6
TRIALS = 400


def measure_worst_site_survival(trials=TRIALS, horizon=12):
    mapping = mapping_for_code(MOutOfNCode(3, 5), N_BITS)
    checked = CheckedDecoder(mapping)
    checker = MOutOfNChecker(3, 5, structural=False)
    analysis = analyze_decoder(checked.tree, mapping)
    # worst *error-producing* site: maximal escape among non-zero-latency
    site = max(
        (s for s in analysis.sa1_sites if not s.zero_latency),
        key=lambda s: s.escape_per_cycle,
    )
    survived = [0] * (horizon + 1)
    for trial in range(trials):
        addresses = Workload.uniform(1 << N_BITS, horizon, seed=1000 + trial)
        result = decoder_campaign(
            checked, checker, [site.fault], addresses,
            attach_analytic=False,
        )
        first = result.records[0].first_detection
        for c in range(1, horizon + 1):
            if first is None or first >= c:
                survived[c] += 1
    return site, [count / trials for count in survived]


def test_bench_escape_measurement(benchmark):
    site, _ = benchmark.pedantic(
        measure_worst_site_survival,
        kwargs=dict(trials=60, horizon=6),
        iterations=1,
        rounds=1,
    )
    assert site.escape_per_cycle is not None


def test_escape_vs_c_matches_formula():
    site, survival = measure_worst_site_survival()
    escape = float(site.escape_per_cycle)
    print(f"\nworst site: width={site.block_width}, escape/cycle={escape}")
    print("c | measured survival | analytic escape^c")
    for c in (1, 2, 3, 4, 6, 8):
        analytic = escape ** c
        print(f"{c} | {survival[c]:.4f} | {analytic:.4f}")
        # binomial noise at 400 trials: generous absolute tolerance
        assert survival[c] == pytest.approx(analytic, abs=0.06), c

    # the worst measured site agrees with the paper's ceil bound
    bound = float(worst_escape_over_blocks(9, N_BITS))
    assert escape <= bound
    assert escape == pytest.approx(bound)
