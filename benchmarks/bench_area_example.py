"""E5 — §IV worked area example (analytic model, k = 0.3)."""

import pytest

from repro.experiments.area_example import generate_area_example


def test_bench_area_example(benchmark):
    example = benchmark(generate_area_example)
    assert example.total_percent > 0


def test_area_example_matches_paper():
    ex = generate_area_example()
    print(
        f"\nROMs {ex.rom_percent:.2f}% (paper text 1.9, formula 1.24) | "
        f"parity bit {ex.parity_bit_percent:.2f}% (paper 6.25) | "
        f"parity checker {ex.parity_checker_percent:.2f}% (paper 0.15) | "
        f"total {ex.total_percent:.2f}% (paper 8.3)"
    )
    # the two parity terms match the paper exactly
    assert ex.parity_bit_percent == pytest.approx(6.25)
    assert ex.parity_checker_percent == pytest.approx(0.15)
    # the ROM term follows the printed formula (documented 1.9 gap)
    assert ex.rom_percent == pytest.approx(1.245, abs=0.01)
    # the qualitative claim: decoder checking costs a fraction of the
    # mandatory parity bit overhead
    assert ex.rom_percent < ex.parity_bit_percent
