"""Campaign engine benchmark: serial vs packed vs vector ->
BENCH_campaigns.json.

Runs the campaign-class workloads (exhaustive decoder campaign,
end-to-end scheme campaign, the empirical latency experiment) in smoke
mode on every available engine, asserts the fast engines are
**bit-identical** to the serial oracle, and records wall time,
faults/sec and speedup.  When NumPy is importable the same workloads
also run on the ``vector`` lane-array engine (``vector_*`` columns) and
a million-cycle scheme bench exercises its chunked windows against the
packed engine; without NumPy those columns are omitted and the run
still succeeds.  The JSON this writes is the perf trajectory baseline
tracked from PR 2 onward; CI executes it on every push and gates the
appended history with ``repro analytics regress``.

Usage::

    PYTHONPATH=src python benchmarks/run_campaigns.py [--out PATH]
        [--check-speedup X]   # fail unless every per-bench floor holds
                              # (X for the 6-bit decoder; see FLOORS)
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import __version__
from repro.analytics.history import append_entry
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.experiments.latency_empirical import run_latency_experiment
from repro.faultsim.campaign import decoder_campaign, scheme_campaign
from repro.faultsim.injector import (
    decoder_fault_list,
    sample_faults,
)
from repro.faultsim.vectorsim import numpy_available
from repro.memory.faults import CellStuckAt, DataLineStuckAt
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import CampaignEngine, TransientScenario, Workload

#: per-bench speedup floors enforced by --check-speedup (local gating;
#: CI only checks bit-identity to stay robust on shared runners).  The
#: decoder floor comes from the --check-speedup argument itself; vector
#: floors are skipped when NumPy is missing.
FLOORS = (
    ("scheme_64x8_c300", "vector_speedup", 15.0),
    ("transient_scrubbed_n8", "speedup", 10.0),
)


def _records(result):
    return [
        (str(r.fault), r.kind, r.first_detection, r.first_error)
        for r in result.records
    ]


def _timed(fn, repeats: int = 1):
    """Run ``fn`` ``repeats`` times; (first result, best wall time).

    Single-shot timing of millisecond-scale campaigns is noise-dominated
    on shared runners, so speedup columns are ratios of per-engine
    minima.  Campaign calls are idempotent (each run re-fills the memory
    and clears faults), so repeating is safe."""
    best = None
    result = None
    for rep in range(repeats):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if rep == 0:
            result = out
        if best is None or elapsed < best:
            best = elapsed
    return result, best


def bench_decoder(n_bits: int, cycles: int, seed: int) -> dict:
    """Exhaustive stuck-at campaign on a checked decoder (the acceptance
    workload: n=6 over >=256 cycles must clear 20x packed)."""
    code = MOutOfNCode(3, 5)
    checked = CheckedDecoder(mapping_for_code(code, n_bits))
    checker = MOutOfNChecker(code.m, code.n, structural=False)
    faults = decoder_fault_list(checked)
    addresses = Workload.uniform(1 << n_bits, cycles, seed=seed).address_list()

    def run(engine):
        return _timed(
            lambda: decoder_campaign(
                checked, checker, faults, addresses,
                attach_analytic=False, engine=engine,
            ),
            repeats=3,
        )

    serial, serial_s = run("serial")
    packed, packed_s = run("packed")
    row = {
        "name": f"decoder_n{n_bits}_c{cycles}",
        "faults": len(faults),
        "cycles": cycles,
        "serial_s": round(serial_s, 4),
        "packed_s": round(packed_s, 4),
        "serial_faults_per_sec": round(len(faults) / serial_s, 1),
        "packed_faults_per_sec": round(len(faults) / packed_s, 1),
        "speedup": round(serial_s / packed_s, 1),
        "identical": _records(serial) == _records(packed),
    }
    if numpy_available():
        vector, vector_s = run("vector")
        row["vector_s"] = round(vector_s, 4)
        row["vector_faults_per_sec"] = round(len(faults) / vector_s, 1)
        row["vector_speedup"] = round(serial_s / vector_s, 1)
        row["identical"] = row["identical"] and (
            _records(serial) == _records(vector)
        )
    return row


def bench_scheme(cycles: int, seed: int) -> dict:
    """End-to-end scheme campaign: row + column + memory faults."""
    org = MemoryOrganization(64, 8, column_mux=4)

    def build():
        return SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))

    probe = build()
    row_faults = decoder_fault_list(probe.row)
    column_faults = sample_faults(
        decoder_fault_list(probe.column), 12, seed=seed
    )
    memory_faults = [
        CellStuckAt(5, 1, 1), CellStuckAt(40, 0, 0), DataLineStuckAt(3, 1),
    ]
    addresses = Workload.uniform(1 << org.n, cycles, seed=seed).address_list()
    total = len(row_faults) + len(column_faults) + len(memory_faults)

    def run(engine):
        # a fresh memory per engine (built outside the timed region):
        # campaigns stream reads through its fault hooks
        memory = build()
        return _timed(
            lambda: scheme_campaign(
                memory, addresses, row_faults=row_faults,
                column_faults=column_faults, memory_faults=memory_faults,
                engine=engine,
            ),
            repeats=5,
        )

    def key(result):
        return [
            (str(r.fault), r.kind, r.first_detection)
            for r in result.records
        ]

    serial, serial_s = run("serial")
    packed, packed_s = run("packed")
    row = {
        "name": f"scheme_64x8_c{cycles}",
        "faults": total,
        "cycles": cycles,
        "serial_s": round(serial_s, 4),
        "packed_s": round(packed_s, 4),
        "serial_faults_per_sec": round(total / serial_s, 1),
        "packed_faults_per_sec": round(total / packed_s, 1),
        "speedup": round(serial_s / packed_s, 1),
        "identical": key(serial) == key(packed),
    }
    if numpy_available():
        vector, vector_s = run("vector")
        row["vector_s"] = round(vector_s, 4)
        row["vector_faults_per_sec"] = round(total / vector_s, 1)
        row["vector_speedup"] = round(serial_s / vector_s, 1)
        row["identical"] = row["identical"] and (
            key(serial) == key(vector)
        )
    return row


def bench_scheme_c1m(cycles: int = 1_000_000, seed: int = 17) -> dict:
    """Million-cycle scheme campaign, vector vs packed (serial would
    take hours here, so the packed engine — itself a proven oracle — is
    the baseline).  The vector engine streams the address trace through
    its default 8192-lane windows, so peak memory stays bounded no
    matter the cycle count."""
    org = MemoryOrganization(64, 8, column_mux=4)

    def build():
        return SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))

    # a handful of faults: the packed baseline walks every 64-cycle
    # word per fault, so the fault count (not the vector engine) bounds
    # this bench's wall time
    probe = build()
    row_faults = sample_faults(decoder_fault_list(probe.row), 3, seed=seed)
    column_faults = sample_faults(
        decoder_fault_list(probe.column), 2, seed=seed
    )
    memory_faults = [CellStuckAt(9, 2, 1)]
    addresses = Workload.uniform(1 << org.n, cycles, seed=seed).address_list()
    total = len(row_faults) + len(column_faults) + len(memory_faults)

    def run(engine):
        memory = build()
        return _timed(
            lambda: scheme_campaign(
                memory, addresses, row_faults=row_faults,
                column_faults=column_faults, memory_faults=memory_faults,
                engine=engine,
            )
        )

    def key(result):
        return [
            (str(r.fault), r.kind, r.first_detection)
            for r in result.records
        ]

    packed, packed_s = run("packed")
    vector, vector_s = run("vector")
    return {
        "name": "scheme_vector_64x8_c1m",
        "faults": total,
        "cycles": cycles,
        "packed_s": round(packed_s, 4),
        "vector_s": round(vector_s, 4),
        "packed_faults_per_sec": round(total / packed_s, 1),
        "vector_faults_per_sec": round(total / vector_s, 1),
        "vector_speedup": round(packed_s / vector_s, 2),
        "identical": key(packed) == key(vector),
    }


def bench_transient(words: int, cycles: int, seed: int) -> dict:
    """Transient-upset campaign on a scrubbed workload: the 1.3 packed
    lane-mask backend vs the per-cycle serial oracle (one upset per
    pair of addresses, parity-protected RAM, n = log2(words) address
    bits).  engine="vector" routes transients through the same packed
    lane algebra, so there is no separate vector column here."""
    org = MemoryOrganization(words, 8, column_mux=8)
    scenarios = [
        TransientScenario.single(
            address, bit=address % 9, cycle=(address * 37) % cycles
        )
        for address in range(0, words, 2)
    ]
    workload = Workload.scrubbed(words, cycles, scrub_period=4, seed=seed)

    serial, serial_s = _timed(
        lambda: CampaignEngine(engine="serial").transient(
            BehavioralRAM(org), scenarios, workload
        )
    )
    packed, packed_s = _timed(
        lambda: CampaignEngine(engine="packed").transient(
            BehavioralRAM(org), scenarios, workload
        ),
        repeats=3,
    )
    identical = _records(serial) == _records(packed)
    total = len(scenarios)
    n_bits = org.n
    return {
        "name": f"transient_scrubbed_n{n_bits}",
        "faults": total,
        "cycles": cycles,
        "serial_s": round(serial_s, 4),
        "packed_s": round(packed_s, 4),
        "serial_faults_per_sec": round(total / serial_s, 1),
        "packed_faults_per_sec": round(total / packed_s, 1),
        "speedup": round(serial_s / packed_s, 1),
        "identical": identical,
    }


def bench_latency_experiment(n_bits: int, cycles: int) -> dict:
    """The X1 empirical-latency experiment end to end on every engine."""

    def run(engine):
        # best of 3: the experiment records its own wall time, so pick
        # the least-noisy run (same rationale as _timed's repeats)
        return min(
            (
                run_latency_experiment(
                    n_bits=n_bits, cycles=cycles, seed=1, engine=engine
                )
                for _ in range(3)
            ),
            key=lambda r: r.wall_time_s,
        )

    serial = run("serial")
    packed = run("packed")
    row = {
        "name": f"latency_empirical_n{n_bits}_c{cycles}",
        "faults": packed.faults,
        "cycles": cycles,
        "serial_s": round(serial.wall_time_s, 4),
        "packed_s": round(packed.wall_time_s, 4),
        "serial_faults_per_sec": round(serial.faults_per_sec, 1),
        "packed_faults_per_sec": round(packed.faults_per_sec, 1),
        "speedup": round(serial.wall_time_s / packed.wall_time_s, 1),
        "identical": serial.curve == packed.curve
        and serial.coverage == packed.coverage,
    }
    if numpy_available():
        vector = run("vector")
        row["vector_s"] = round(vector.wall_time_s, 4)
        row["vector_faults_per_sec"] = round(vector.faults_per_sec, 1)
        row["vector_speedup"] = round(
            serial.wall_time_s / vector.wall_time_s, 1
        )
        row["identical"] = row["identical"] and (
            serial.curve == vector.curve
            and serial.coverage == vector.coverage
        )
    return row


def _check_floors(benches, check_speedup) -> int:
    """Apply the per-bench speedup floors; returns the number of
    violations (0 = all clear).  Earlier revisions gated only the first
    bench — every floor is now enforced by name."""
    by_name = {b["name"]: b for b in benches}
    floors = [("decoder_n6_c512", "speedup", check_speedup)]
    floors += list(FLOORS)
    failures = 0
    for name, column, floor in floors:
        bench = by_name.get(name)
        if bench is None or column not in bench:
            continue  # NumPy-free run: vector floors don't apply
        if bench[column] < floor:
            print(
                f"FAIL: {name} {column} x{bench[column]} below the "
                f"required x{floor:g}",
                file=sys.stderr,
            )
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_campaigns.json")
    parser.add_argument(
        "--history", default="BENCH_campaigns.history.jsonl",
        metavar="PATH",
        help="persistent perf trajectory: every run appends its payload "
        "as one JSON line here ('' disables)",
    )
    parser.add_argument(
        "--check-speedup", type=float, default=None, metavar="X",
        help="fail unless the 6-bit decoder packed bench clears X and "
        "every FLOORS entry holds (local gating; CI only checks "
        "bit-identity to stay robust on shared runners)",
    )
    args = parser.parse_args(argv)

    benches = [
        bench_decoder(n_bits=6, cycles=512, seed=31),
        bench_decoder(n_bits=5, cycles=256, seed=7),
        bench_scheme(cycles=300, seed=3),
        bench_latency_experiment(n_bits=5, cycles=150),
        bench_transient(words=256, cycles=3000, seed=9),
    ]
    if numpy_available():
        benches.append(bench_scheme_c1m())
    else:
        print("numpy not importable: vector columns and the c1m bench "
              "are skipped")
    payload = {
        "bench": "campaign_engines",
        "version": __version__,
        "numpy": numpy_available(),
        "benches": benches,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if args.history:
        # append-only trajectory: one compact line per run, so speedups
        # are comparable across versions/commits without scraping CI logs
        append_entry(args.history, payload)

    width = max(len(b["name"]) for b in benches)
    for b in benches:
        flag = "ok " if b["identical"] else "MISMATCH"
        base = (
            f"serial {b['serial_s']*1e3:8.1f} ms"
            if "serial_s" in b else "serial        --"
        )
        vector = (
            f"  vector {b['vector_s']*1e3:7.1f} ms"
            f" x{b['vector_speedup']:<6g}"
            if "vector_s" in b else ""
        )
        speedup = f" x{b['speedup']:<6g}" if "speedup" in b else ""
        print(
            f"{b['name']:<{width}}  {b['faults']:>4} faults x "
            f"{b['cycles']:>7} cycles  {base}"
            f"  packed {b['packed_s']*1e3:7.1f} ms{speedup}{vector}"
            f" [{flag}]"
        )
    print(f"wrote {args.out}")
    if args.history:
        print(f"appended to {args.history}")

    if not all(b["identical"] for b in benches):
        print(
            "FAIL: a fast engine diverged from its reference oracle",
            file=sys.stderr,
        )
        return 1
    if args.check_speedup is not None:
        if _check_floors(benches, args.check_speedup):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
