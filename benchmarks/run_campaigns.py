"""Campaign engine benchmark: packed vs serial -> BENCH_campaigns.json.

Runs the campaign-class workloads (exhaustive decoder campaign,
end-to-end scheme campaign, the empirical latency experiment) in smoke
mode on both engines, asserts the packed engine is **bit-identical** to
the serial oracle, and records wall time, faults/sec and speedup.  The
JSON this writes is the perf trajectory baseline tracked from PR 2
onward; CI executes it on every push.

Usage::

    PYTHONPATH=src python benchmarks/run_campaigns.py [--out PATH]
        [--check-speedup X]   # fail unless the 6-bit decoder campaign
                              # beats serial by at least X (local gating)
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import __version__
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import select_code
from repro.experiments.latency_empirical import run_latency_experiment
from repro.faultsim.campaign import decoder_campaign, scheme_campaign
from repro.faultsim.injector import (
    decoder_fault_list,
    sample_faults,
)
from repro.memory.faults import CellStuckAt, DataLineStuckAt
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import CampaignEngine, TransientScenario, Workload


def _records(result):
    return [
        (str(r.fault), r.kind, r.first_detection, r.first_error)
        for r in result.records
    ]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_decoder(n_bits: int, cycles: int, seed: int) -> dict:
    """Exhaustive stuck-at campaign on a checked decoder (the acceptance
    workload: n=6 over >=256 cycles must clear 20x)."""
    code = MOutOfNCode(3, 5)
    checked = CheckedDecoder(mapping_for_code(code, n_bits))
    checker = MOutOfNChecker(code.m, code.n, structural=False)
    faults = decoder_fault_list(checked)
    addresses = Workload.uniform(1 << n_bits, cycles, seed=seed).address_list()

    serial, serial_s = _timed(
        lambda: decoder_campaign(
            checked, checker, faults, addresses,
            attach_analytic=False, engine="serial",
        )
    )
    packed, packed_s = _timed(
        lambda: decoder_campaign(
            checked, checker, faults, addresses, attach_analytic=False
        )
    )
    identical = _records(serial) == _records(packed)
    return {
        "name": f"decoder_n{n_bits}_c{cycles}",
        "faults": len(faults),
        "cycles": cycles,
        "serial_s": round(serial_s, 4),
        "packed_s": round(packed_s, 4),
        "serial_faults_per_sec": round(len(faults) / serial_s, 1),
        "packed_faults_per_sec": round(len(faults) / packed_s, 1),
        "speedup": round(serial_s / packed_s, 1),
        "identical": identical,
    }


def bench_scheme(cycles: int, seed: int) -> dict:
    """End-to-end scheme campaign: row + column + memory faults."""
    org = MemoryOrganization(64, 8, column_mux=4)

    def build():
        return SelfCheckingMemory.from_selection(org, select_code(10, 1e-9))

    serial_memory, packed_memory = build(), build()
    row_faults = decoder_fault_list(serial_memory.row)
    column_faults = sample_faults(
        decoder_fault_list(serial_memory.column), 12, seed=seed
    )
    memory_faults = [
        CellStuckAt(5, 1, 1), CellStuckAt(40, 0, 0), DataLineStuckAt(3, 1),
    ]
    addresses = Workload.uniform(1 << org.n, cycles, seed=seed).address_list()
    total = len(row_faults) + len(column_faults) + len(memory_faults)

    serial, serial_s = _timed(
        lambda: scheme_campaign(
            serial_memory, addresses, row_faults=row_faults,
            column_faults=column_faults, memory_faults=memory_faults,
            engine="serial",
        )
    )
    packed, packed_s = _timed(
        lambda: scheme_campaign(
            packed_memory, addresses, row_faults=row_faults,
            column_faults=column_faults, memory_faults=memory_faults,
        )
    )
    identical = [
        (str(r.fault), r.kind, r.first_detection) for r in serial.records
    ] == [
        (str(r.fault), r.kind, r.first_detection) for r in packed.records
    ]
    return {
        "name": f"scheme_64x8_c{cycles}",
        "faults": total,
        "cycles": cycles,
        "serial_s": round(serial_s, 4),
        "packed_s": round(packed_s, 4),
        "serial_faults_per_sec": round(total / serial_s, 1),
        "packed_faults_per_sec": round(total / packed_s, 1),
        "speedup": round(serial_s / packed_s, 1),
        "identical": identical,
    }


def bench_transient(words: int, cycles: int, seed: int) -> dict:
    """Transient-upset campaign on a scrubbed workload: the 1.3 packed
    lane-mask backend vs the per-cycle serial oracle (one upset per
    pair of addresses, parity-protected RAM, n = log2(words) address
    bits)."""
    org = MemoryOrganization(words, 8, column_mux=8)
    scenarios = [
        TransientScenario.single(
            address, bit=address % 9, cycle=(address * 37) % cycles
        )
        for address in range(0, words, 2)
    ]
    workload = Workload.scrubbed(words, cycles, scrub_period=4, seed=seed)

    serial, serial_s = _timed(
        lambda: CampaignEngine(engine="serial").transient(
            BehavioralRAM(org), scenarios, workload
        )
    )
    packed, packed_s = _timed(
        lambda: CampaignEngine(engine="packed").transient(
            BehavioralRAM(org), scenarios, workload
        )
    )
    identical = _records(serial) == _records(packed)
    total = len(scenarios)
    n_bits = org.n
    return {
        "name": f"transient_scrubbed_n{n_bits}",
        "faults": total,
        "cycles": cycles,
        "serial_s": round(serial_s, 4),
        "packed_s": round(packed_s, 4),
        "serial_faults_per_sec": round(total / serial_s, 1),
        "packed_faults_per_sec": round(total / packed_s, 1),
        "speedup": round(serial_s / packed_s, 1),
        "identical": identical,
    }


def bench_latency_experiment(n_bits: int, cycles: int) -> dict:
    """The X1 empirical-latency experiment end to end on both engines."""
    serial = run_latency_experiment(
        n_bits=n_bits, cycles=cycles, seed=1, engine="serial"
    )
    packed = run_latency_experiment(
        n_bits=n_bits, cycles=cycles, seed=1, engine="packed"
    )
    return {
        "name": f"latency_empirical_n{n_bits}_c{cycles}",
        "faults": packed.faults,
        "cycles": cycles,
        "serial_s": round(serial.wall_time_s, 4),
        "packed_s": round(packed.wall_time_s, 4),
        "serial_faults_per_sec": round(serial.faults_per_sec, 1),
        "packed_faults_per_sec": round(packed.faults_per_sec, 1),
        "speedup": round(serial.wall_time_s / packed.wall_time_s, 1),
        "identical": serial.curve == packed.curve
        and serial.coverage == packed.coverage,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_campaigns.json")
    parser.add_argument(
        "--history", default="BENCH_campaigns.history.jsonl",
        metavar="PATH",
        help="persistent perf trajectory: every run appends its payload "
        "as one JSON line here ('' disables)",
    )
    parser.add_argument(
        "--check-speedup", type=float, default=None, metavar="X",
        help="fail unless the 6-bit decoder bench clears X (local gating;"
        " CI only checks bit-identity to stay robust on shared runners)",
    )
    args = parser.parse_args(argv)

    benches = [
        bench_decoder(n_bits=6, cycles=512, seed=31),
        bench_decoder(n_bits=5, cycles=256, seed=7),
        bench_scheme(cycles=300, seed=3),
        bench_latency_experiment(n_bits=5, cycles=150),
        bench_transient(words=256, cycles=3000, seed=9),
    ]
    payload = {
        "bench": "campaign_engines",
        "version": __version__,
        "benches": benches,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    if args.history:
        # append-only trajectory: one compact line per run, so speedups
        # are comparable across versions/commits without scraping CI logs
        entry = dict(payload, timestamp=round(time.time(), 1))
        with open(args.history, "a") as handle:
            json.dump(
                entry, handle, sort_keys=True, separators=(",", ":")
            )
            handle.write("\n")

    width = max(len(b["name"]) for b in benches)
    for b in benches:
        flag = "ok " if b["identical"] else "MISMATCH"
        print(
            f"{b['name']:<{width}}  {b['faults']:>4} faults x "
            f"{b['cycles']:>4} cycles  serial {b['serial_s']*1e3:8.1f} ms"
            f"  packed {b['packed_s']*1e3:7.1f} ms  x{b['speedup']:<6g}"
            f" [{flag}]"
        )
    print(f"wrote {args.out}")
    if args.history:
        print(f"appended to {args.history}")

    if not all(b["identical"] for b in benches):
        print(
            "FAIL: packed engine diverged from the serial oracle",
            file=sys.stderr,
        )
        return 1
    if args.check_speedup is not None:
        target = benches[0]
        if target["speedup"] < args.check_speedup:
            print(
                f"FAIL: {target['name']} speedup x{target['speedup']} "
                f"below required x{args.check_speedup}",
                file=sys.stderr,
            )
            return 1
        # the 1.3 acceptance floor: packed transients >= 10x serial
        transient = next(
            b for b in benches if b["name"].startswith("transient_")
        )
        if transient["speedup"] < 10:
            print(
                f"FAIL: {transient['name']} speedup x{transient['speedup']}"
                f" below the required x10",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
