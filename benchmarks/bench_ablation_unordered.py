"""X5 — ablation: unordered vs ordered ROM codes.

The scheme's detection argument needs the AND of two distinct code words
to be a non-code word — true for every unordered code, false for ordered
systematic codes of the same width.  The bench measures the silent-escape
gap on identical decoders.
"""

from repro.experiments.ablations import run_unordered_ablation


def test_bench_unordered_ablation(benchmark):
    result = benchmark.pedantic(
        run_unordered_ablation,
        kwargs=dict(n_bits=5, cycles=150),
        iterations=1,
        rounds=2,
    )
    assert result.coverage_unordered > 0


def test_unordered_code_wins():
    result = run_unordered_ablation(n_bits=5, cycles=300)
    print(
        f"\nAND-closure: unordered={result.unordered_is_and_closed} "
        f"ordered={result.ordered_is_and_closed} | coverage: "
        f"{result.coverage_unordered:.3f} vs {result.coverage_ordered:.3f}"
    )
    assert result.unordered_is_and_closed
    assert not result.ordered_is_and_closed
    # the ordered code silently swallows a large share of the faults
    assert result.coverage_unordered - result.coverage_ordered > 0.2
