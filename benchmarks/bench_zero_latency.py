"""X3 — the zero-latency claims of §III, verified exhaustively.

* every stuck-at-0 in the decoder tree: first erroneous cycle detected
  (all-1s out of the NOR matrix);
* every stuck-at-1 in a block with 2^i <= a: first erroneous cycle
  detected (m1 != m2 implies different residues);
* the [NIC 94] identity-mapping endpoint: *every* fault zero-latency.
"""

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import IdentityMapping, mapping_for_code
from repro.decoder.analysis import analyze_decoder
from repro.faultsim.campaign import decoder_campaign
from repro.faultsim.injector import decoder_fault_list, sequential_addresses
from repro.rom.nor_matrix import CheckedDecoder

N_BITS = 5


def exhaustive_zero_latency_run(mapping, code):
    checked = CheckedDecoder(mapping)
    checker = MOutOfNChecker(code.m, code.n, structural=False)
    faults = decoder_fault_list(checked)
    # sweep every address twice: every fault is excited at least once
    addresses = sequential_addresses(N_BITS, 2 << N_BITS)
    result = decoder_campaign(checked, checker, faults, addresses)
    return checked, result


def test_bench_exhaustive_sweep(benchmark):
    code = MOutOfNCode(3, 5)
    mapping = mapping_for_code(code, N_BITS)
    _, result = benchmark.pedantic(
        exhaustive_zero_latency_run,
        args=(mapping, code),
        iterations=1,
        rounds=3,
    )
    assert result.total > 0


def test_sa0_always_zero_latency():
    code = MOutOfNCode(3, 5)
    checked, result = exhaustive_zero_latency_run(
        mapping_for_code(code, N_BITS), code
    )
    sa0 = [r for r in result.records if r.kind == "sa0"]
    assert sa0
    for record in sa0:
        assert record.first_error is not None  # sweep excites everything
        assert record.detected and record.latency == 0

    print(f"\n{len(sa0)} stuck-at-0 faults, all detected on first error")


def test_small_block_sa1_zero_latency():
    code = MOutOfNCode(3, 5)
    mapping = mapping_for_code(code, N_BITS)
    checked, result = exhaustive_zero_latency_run(mapping, code)
    analysis = analyze_decoder(checked.tree, mapping)
    zero_sites = {
        s.fault.key() for s in analysis.sa1_sites if s.zero_latency
    }
    checked_count = 0
    for record in result.records:
        if record.kind == "sa1" and record.fault.key() in zero_sites:
            if record.first_error is not None:
                assert record.detected and record.latency == 0
                checked_count += 1
    assert checked_count > 0
    print(f"\n{checked_count} small-block stuck-at-1 faults, latency 0")


def test_identity_endpoint_everything_zero_latency():
    code = MOutOfNCode(4, 8)  # C = 70 >= 2^5
    mapping = IdentityMapping(code, N_BITS)
    checked, result = exhaustive_zero_latency_run(mapping, code)
    excited = [r for r in result.records if r.first_error is not None]
    assert excited
    for record in excited:
        assert record.detected and record.latency == 0
    print(f"\nidentity endpoint: {len(excited)} excited faults, all latency 0")
