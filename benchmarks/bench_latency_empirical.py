"""X1 — empirical detection-latency distribution vs the analytic model.

The paper gives only the closed-form Pndc; this bench measures it by
exhaustive stuck-at injection on a gate-level decoder and checks the
survival curve tracks the analytic prediction.
"""

import pytest

from repro.experiments.latency_empirical import run_latency_experiment


@pytest.fixture(scope="module")
def experiment():
    return run_latency_experiment(n_bits=6, cycles=400, seed=7)


def test_bench_latency_campaign(benchmark):
    result = benchmark.pedantic(
        run_latency_experiment,
        kwargs=dict(n_bits=5, cycles=150, seed=1),
        iterations=1,
        rounds=3,
    )
    assert result.coverage > 0.9


def test_survival_curve_tracks_analytic(experiment):
    print()
    print("c | measured | analytic")
    for c, (measured, analytic) in sorted(experiment.curve.items()):
        print(f"{c:4d} | {measured:.4f} | {analytic:.4f}")
        if c <= 100:
            assert measured == pytest.approx(analytic, abs=0.1), c


def test_zero_latency_and_coverage(experiment):
    assert experiment.zero_latency_sa0
    assert experiment.coverage > 0.95
