"""Figure rendering bench — the trade-off and survival curves as ASCII.

Prints both curves (run with ``-s`` to see them) and asserts their shape:
the trade-off curve is non-increasing in c and ordered by RAM size; the
survival curve's measured points track the analytic ones.
"""

from repro.experiments.figures import survival_figure, tradeoff_figure


def test_bench_tradeoff_figure(benchmark):
    text = benchmark(tradeoff_figure, cs=(2, 5, 10, 20, 40))
    assert "16x2K" in text


def test_figures_render():
    print()
    print(tradeoff_figure())
    print()
    print(survival_figure(n_bits=5, cycles=250, seed=3))


def test_tradeoff_series_shape():
    from repro.core.tradeoff import TradeoffExplorer
    from repro.memory.organization import PAPER_ORGS

    cs = (2, 5, 10, 20, 40, 100)
    curves = {}
    for org in PAPER_ORGS:
        pts = TradeoffExplorer(org).sweep_latency(cs, 1e-9)
        values = [pt.overhead_percent for pt in pts]
        assert values == sorted(values, reverse=True)
        curves[org.label()] = values
    # larger RAMs sit strictly below smaller ones at every c
    for a, b in zip(curves["16x2K"], curves["32x4K"]):
        assert a > b
    for a, b in zip(curves["32x4K"], curves["64x8K"]):
        assert a > b
