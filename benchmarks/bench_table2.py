"""E2 — Table (2): hardware increase vs escape probability (Pndc swept).

Regenerates the paper's Table 2.  The APPROXIMATE sizing policy (the
paper's own 1/a rule) reproduces the code column on all six rows; the
area model reproduces the 18 percentages.
"""

import pytest

from repro.experiments.table2 import generate_table2, render_table2


@pytest.fixture(scope="module")
def rows():
    return generate_table2()


def test_bench_generate_table2(benchmark):
    result = benchmark(generate_table2)
    assert len(result) == 6


def test_table2_reproduction(rows):
    print()
    print(render_table2(rows))

    # all six code selections match the paper exactly
    assert all(r.matches_paper for r in rows)

    # all 18 area entries within tolerance of the reported numbers
    for r in rows:
        for model, reported in zip(
            r.our_overheads, r.paper_overheads_reported
        ):
            assert model == pytest.approx(reported, rel=0.15), r.pndc

    # shape: tighter escape => wider code => more area, monotone
    for col in range(3):
        values = [r.our_overheads[col] for r in rows]
        assert values == sorted(values)

    # the documented 1e-20 inconsistency is flagged, everything else meets
    for r in rows:
        assert r.our_meets_target == (r.pndc != 1e-20)
