"""Other memory types — the §IV closing claim, demonstrated.

"Similar trade-offs can be obtained if the self-checking scheme is
implemented on memory types other than RAMs, such as ROMs, CAMs, etc."

We build (i) a self-checking boot ROM: read-only contents behind the same
checked decoders and parity column, and (ii) a CAM used as a TLB tag
store: parity-protected read-by-index path plus a demonstration of which
CAM faults the read-path scheme does and does not see.

Run: ``python examples/other_memory_types.py``
"""

from repro.area.stdcell import StdCellAreaModel
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.core.mapping import mapping_for_code
from repro.core.selection import select_code
from repro.memory.cam import BehavioralCAM
from repro.memory.faults import CellStuckAt
from repro.memory.organization import MemoryOrganization
from repro.memory.rom_mem import BehavioralROM
from repro.rom.nor_matrix import CheckedDecoder


def self_checking_rom() -> None:
    print("=== self-checking boot ROM (128 x 8, mux 4) ===")
    org = MemoryOrganization(words=128, bits=8, column_mux=4)
    contents = [
        tuple(((3 * word + 7) >> bit) & 1 for bit in range(8))
        for word in range(org.words)
    ]
    rom = BehavioralROM(org, contents)

    selection = select_code(c=10, pndc_target=1e-9)
    row_checked = CheckedDecoder(
        mapping_for_code(selection.code, org.p), name="rom_row"
    )
    checker = MOutOfNChecker(
        selection.code.m, selection.code.n, structural=False
    )

    # Healthy reads: decoder ROM word always in the code, parity holds.
    ok = all(
        checker.accepts(row_checked.rom_word(org.split_address(a)[0]))
        and rom.parity_ok(a)
        for a in range(org.words)
    )
    print(f"  fault-free sweep clean: {ok}")

    # Contents fault -> parity; decoder fault -> unordered code.
    rom.inject(CellStuckAt(address=17, bit=2, value=1))
    print(f"  content cell fault flagged by parity: {not rom.parity_ok(17)}")
    model = StdCellAreaModel()
    print(
        f"  decoder-check overhead ({selection.code_name}): "
        f"{model.overhead_percent(org, selection.rom_width):.1f} % "
        f"(std-cell model)\n"
    )


def self_checking_cam() -> None:
    print("=== CAM as a TLB tag store (16 entries x 12-bit tags) ===")
    cam = BehavioralCAM(entries=16, tag_bits=12)
    tag = tuple(int(b) for b in "101100111010")
    cam.write(5, tag)
    print(f"  lookup of stored tag hits entry: {cam.lookup(tag)}")
    print(f"  read-by-index parity ok: {cam.parity_ok(5)}")

    # A stored-cell fault corrupts *both* paths; parity sees the read path.
    cam.inject(CellStuckAt(address=5, bit=0, value=0))
    print(f"  after cell s-a-0: lookup now misses -> {cam.lookup(tag)}")
    print(
        f"  ...but the parity-checked read path flags it: "
        f"parity_ok={cam.parity_ok(5)}"
    )
    print(
        "  (the match port itself needs the decoder-style checking on its"
    )
    print("   priority encoder — the same ROM construction applies)")


def main() -> None:
    self_checking_rom()
    self_checking_cam()


if __name__ == "__main__":
    main()
