"""Deterministic guarantees — scrubbing, March streams, hard bounds.

The paper's latency model is probabilistic (uniform random traffic).
This example shows what a deployed system layered on top of it usually
wants: *hard* bounds.

1. A background scrubber converts the parity path's "detected on next
   read" into a bounded soft-error detection latency.
2. A periodic address sweep gives every decoder fault a hard worst-case
   detection bound (computed exactly, then confirmed by simulation).
3. The same March algorithms double as the off-line test: March C-
   catches the behavioural fault classes the concurrent scheme sees only
   opportunistically.

Run: ``python examples/scrubbing_and_march.py``
"""

from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.deterministic import scan_guarantee
from repro.core.mapping import mapping_for_code
from repro.faultsim.transient import (
    TransientUpset,
    scrubbed_stream,
    transient_campaign,
)
from repro.memory.faults import CellStuckAt, CouplingFault
from repro.memory.march import MARCH_C_MINUS, run_march
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import CheckedDecoder


def soft_error_scrubbing() -> None:
    print("=== soft errors: scrubbing bounds parity-detection latency ===")
    org = MemoryOrganization(words=64, bits=8, column_mux=4)
    for period in (0, 8, 2):
        ram = BehavioralRAM(org)
        upsets = [
            TransientUpset(address=a, bit=3, cycle=5)
            for a in range(0, 64, 7)
        ]
        stream = scrubbed_stream(64, 2000, scrub_period=period, seed=11)
        results = transient_campaign(ram, upsets, stream)
        latencies = [r.latency for r in results if r.latency is not None]
        missed = sum(1 for r in results if r.latency is None)
        label = "no scrub" if period == 0 else f"scrub 1/{period} cycles"
        print(
            f"  {label:>18}: worst latency "
            f"{max(latencies) if latencies else 'n/a'} cycles, "
            f"{missed} upsets unseen"
        )
    print()


def decoder_scan_guarantee() -> None:
    print("=== decoder faults: a periodic sweep buys a hard bound ===")
    mapping = mapping_for_code(MOutOfNCode(3, 5), 6)
    checked = CheckedDecoder(mapping)
    bound = scan_guarantee(checked.tree, mapping)
    print(
        f"  64-line decoder, 3-out-of-5 ROM: every stuck-at detected "
        f"within {bound} scan cycles (exact bound)\n"
    )


def offline_march() -> None:
    print("=== off-line test: March C- on the same behavioural RAM ===")
    ram = BehavioralRAM(MemoryOrganization(words=128, bits=8, column_mux=4))
    ram.inject(CellStuckAt(address=77, bit=1, value=1))
    ram.inject(
        CouplingFault(
            aggressor_address=10, aggressor_bit=0,
            victim_address=90, victim_bit=2,
        )
    )
    violations = run_march(ram, MARCH_C_MINUS)
    addresses = sorted({v.address for v in violations})
    print(f"  {MARCH_C_MINUS}")
    print(
        f"  {len(violations)} violating reads; faulty addresses "
        f"identified: {addresses}"
    )


def main() -> None:
    soft_error_scrubbing()
    decoder_scan_guarantee()
    offline_march()


if __name__ == "__main__":
    main()
