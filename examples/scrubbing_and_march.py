"""Deterministic guarantees — scrubbing, March workloads, hard bounds.

The paper's latency model is probabilistic (uniform random traffic).
This example shows what a deployed system layered on top of it usually
wants: *hard* bounds — now phrased entirely in the 1.3 scenario
vocabulary (`Workload` stimuli + `FaultScenario` values driven through
one `CampaignEngine`).

1. A background scrubber (``Workload.scrubbed``) converts the parity
   path's "detected on next read" into a bounded soft-error detection
   latency; a double upset shows the single-parity-bit escape.
2. A periodic address sweep gives every decoder fault a hard worst-case
   detection bound (computed exactly, then confirmed by simulation).
3. The same March algorithms double as the off-line test: the march
   campaign shows March C- catching the coupling-fault classes the
   cheaper algorithms (and the concurrent scheme) miss.

Run: ``python examples/scrubbing_and_march.py``
"""

from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.deterministic import scan_guarantee
from repro.core.mapping import mapping_for_code
from repro.faultsim.transient import TransientUpset
from repro.memory.faults import CellStuckAt, CouplingFault
from repro.memory.march import MARCH_C_MINUS, MATS_PLUS
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import (
    CampaignEngine,
    MemoryScenario,
    TransientScenario,
    Workload,
)

ENGINE = CampaignEngine()  # packed fast path; engine="serial" = oracle


def soft_error_scrubbing() -> None:
    print("=== soft errors: scrubbing bounds parity-detection latency ===")
    org = MemoryOrganization(words=64, bits=8, column_mux=4)
    scenarios = [
        TransientScenario.single(address=a, bit=3, cycle=5)
        for a in range(0, 64, 7)
    ]
    for period in (0, 8, 2):
        workload = Workload.scrubbed(
            64, 2000, scrub_period=period, seed=11
        )
        result = ENGINE.transient(BehavioralRAM(org), scenarios, workload)
        latencies = [
            r.first_detection - r.fault.cycle
            for r in result.records
            if r.detected
        ]
        missed = result.total - result.detected
        label = "no scrub" if period == 0 else f"scrub 1/{period} cycles"
        print(
            f"  {label:>18}: worst latency "
            f"{max(latencies) if latencies else 'n/a'} cycles, "
            f"{missed} upsets unseen"
        )

    # the known limit: a double flip in one word restores parity
    double = TransientScenario(
        upsets=(
            TransientUpset(address=9, bit=1, cycle=5),
            TransientUpset(address=9, bit=6, cycle=5),
        )
    )
    record = ENGINE.transient(
        BehavioralRAM(org),
        [double],
        Workload.scrubbed(64, 2000, scrub_period=2, seed=11),
    ).records[0]
    print(
        f"  double upset in one word: error read at cycle "
        f"{record.first_error}, parity detection "
        f"{'at ' + str(record.first_detection) if record.detected else 'never (escape)'}\n"
    )


def decoder_scan_guarantee() -> None:
    print("=== decoder faults: a periodic sweep buys a hard bound ===")
    mapping = mapping_for_code(MOutOfNCode(3, 5), 6)
    checked = CheckedDecoder(mapping)
    bound = scan_guarantee(checked.tree, mapping)
    print(
        f"  64-line decoder, 3-out-of-5 ROM: every stuck-at detected "
        f"within {bound} scan cycles (exact bound)\n"
    )


def offline_march() -> None:
    print("=== off-line test: march campaigns on the behavioural RAM ===")
    ram = BehavioralRAM(MemoryOrganization(words=128, bits=8, column_mux=4))
    scenarios = [
        MemoryScenario(faults=(CellStuckAt(address=77, bit=1, value=1),)),
        MemoryScenario(
            faults=(
                CouplingFault(
                    aggressor_address=10, aggressor_bit=0,
                    victim_address=90, victim_bit=2,
                ),
            )
        ),
        MemoryScenario(
            faults=(
                CouplingFault(
                    aggressor_address=90, aggressor_bit=0,
                    victim_address=10, victim_bit=2,
                    write_triggered=True,
                ),
            )
        ),
    ]
    for test in (MATS_PLUS, MARCH_C_MINUS):
        result = ENGINE.march(ram, scenarios, test)
        caught = [
            r.fault.describe()
            for r in result.records
            if r.detected
        ]
        print(f"  {test}")
        print(
            f"    detects {result.detected}/{result.total} scenarios: "
            f"{caught if caught else 'none'}"
        )
    print(
        "  (March C-'s descending read-write pair is what catches the "
        "write-triggered\n   coupling fault MATS+ misses)"
    )


def main() -> None:
    soft_error_scrubbing()
    decoder_scan_guarantee()
    offline_march()


if __name__ == "__main__":
    main()
