"""Domain scenario — sizing on-line test for a safety-critical controller.

An automotive/avionics memory subsystem has (i) a fault-containment
deadline: an erroneous decoder must be flagged before the value is
committed by downstream stages (a budget in clock cycles), and (ii) a
quantified escape probability from the safety case.  Different RAMs in
the system tolerate different budgets — a lock-step core's tag RAM needs
near-zero latency, a frame buffer can tolerate hundreds of cycles.

This example sweeps the trade-off for the paper's three embedded RAMs,
prints the Pareto frontier, and answers the inverse question: "I can
afford 12 % area — what detection latency does that buy me?"

Run: ``python examples/latency_budget_explorer.py``
"""

from repro import PAPER_ORGS, DesignEngine, DesignSpec, TradeoffExplorer
from repro.core.safety import SafetyModel
from repro.experiments.common import format_table


def main() -> None:
    pndc = 1e-9
    budgets = (1, 2, 5, 10, 20, 40, 100, 400)

    for org in PAPER_ORGS:
        explorer = TradeoffExplorer(org)
        points = explorer.sweep_latency(budgets, pndc)
        rows = [
            [
                pt.c,
                pt.code_name,
                pt.selection.a_final,
                f"{float(pt.selection.achieved_escape):.4g}",
                f"{pt.overhead_percent:.2f}",
            ]
            for pt in points
        ]
        print(
            f"\n{org.label()} RAM — detection budget sweep "
            f"(Pndc <= {pndc:g})"
        )
        print(
            format_table(
                ["c (cycles)", "code", "a", "escape/cycle", "area %"], rows
            )
        )
        frontier = explorer.pareto_frontier(budgets, pndc)
        labels = ", ".join(f"c={pt.c}:{pt.code_name}" for pt in frontier)
        print(f"Pareto frontier: {labels}")

    # Inverse query: what does a 12 % area budget buy on the 2K x 16 RAM?
    org = PAPER_ORGS[0]
    explorer = TradeoffExplorer(org)
    best = explorer.max_latency_for_budget(12.0, pndc)
    if best is None:
        print("\n12 % budget: not even the 1-out-of-2 endpoint fits")
    else:
        print(
            f"\n12 % area budget on {org.label()}: use {best.code_name} "
            f"({best.overhead_percent:.1f} %), detection within "
            f"{best.c} cycles at Pndc <= {pndc:g}"
        )

    # Close the loop with the safety model of §II.
    safety = SafetyModel(fault_rate_per_hour=1e-5, decoder_area_fraction=0.1)
    pt = TradeoffExplorer(org).point(10, pndc)
    print(
        f"\nSystem safety with c=10 scheme: "
        f"{safety.rate_with_scheme(pt.selection.achieved_pndc):.3g} "
        f"undetectable faults/hour vs "
        f"{safety.rate_unprotected_decoders():.3g} with unchecked decoders"
    )

    # The same exploration through the unified design API: one spec grid,
    # one parallel sweep, structured reports (report.to_json() for tools).
    engine = DesignEngine()
    grid = DesignSpec.grid(
        PAPER_ORGS, [(c, pndc) for c in (2, 10, 40)]
    )
    reports = engine.sweep(grid, workers=4)
    print("\nDesignEngine.sweep over the same grid:")
    for report in reports:
        print(
            f"  {report.spec.organization.label():<6} c={report.spec.c:<3d}"
            f" -> {report.row.code:<12s} "
            f"area {report.area.stdcell_overhead_percent:.2f} %"
        )


if __name__ == "__main__":
    main()
