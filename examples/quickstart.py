"""Quickstart — the paper's design flow in ten lines.

You have an embedded RAM and an on-line test requirement: "any decoder
fault must be flagged within 10 clock cycles, with escape probability at
most 1e-9".  The library selects the unordered code (§III.2), builds the
figure-3 self-checking memory, and demonstrates detection.

Run: ``python examples/quickstart.py``
"""

from repro import MemoryOrganization, SelfCheckingMemory, select_code
from repro.circuits.faults import NetStuckAt
from repro.memory.faults import CellStuckAt


def main() -> None:
    # 1. State the requirement and let the paper's algorithm pick the code.
    selection = select_code(c=10, pndc_target=1e-9)
    print(f"selected code : {selection.code_name} (mapping modulus a = "
          f"{selection.a_final})")
    print(f"guarantee     : Pndc = {selection.achieved_pndc:.3g} after "
          f"{selection.c} cycles\n")

    # 2. Build the self-checking memory (figure 3) around a 2K x 16 RAM.
    org = MemoryOrganization(words=2048, bits=16, column_mux=8)
    memory = SelfCheckingMemory.from_selection(org, selection)
    print(f"memory        : {org.label()}, row decoder p={org.p} bits, "
          f"column decoder s={org.s} bits")
    print(f"area overhead : {memory.area_overhead_percent():.1f} % "
          f"(std-cell model, decoder checking)\n")

    # 3. Normal operation: writes and checked reads.
    memory.write(0x2A, (1, 0, 1, 1, 0, 0, 1, 0) * 2)
    result = memory.read(0x2A)
    assert result.data == (1, 0, 1, 1, 0, 0, 1, 0) * 2
    assert not result.error_detected
    print("fault-free read: data correct, no error indication")

    # 4. A cell fault: caught by the parity path with zero latency.
    memory.inject_memory_fault(CellStuckAt(address=0x2A, bit=3, value=1))
    memory.write(0x2A, (0,) * 16)
    result = memory.read(0x2A)
    print(f"cell stuck-at-1: parity checker flags it -> "
          f"error_detected={result.error_detected}")
    memory.clear_faults()

    # 5. A decoder fault: caught by the ROM + 3-out-of-5 checker.
    word_line_net = memory.row.tree.root.output_nets[7]
    memory.inject_row_fault(NetStuckAt(word_line_net, 1))  # line 7 stuck on
    for address in range(org.words):
        if memory.read(address).error_detected:
            print(f"decoder stuck-at-1: detected at read #{address} "
                  f"(two word lines merged, ROM word left the code)")
            break
    memory.clear_faults()


if __name__ == "__main__":
    main()
