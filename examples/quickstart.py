"""Quickstart — the paper's design flow in ten lines.

You have an embedded RAM and an on-line test requirement: "any decoder
fault must be flagged within 10 clock cycles, with escape probability at
most 1e-9".  Declare the problem as a :class:`repro.DesignSpec`, hand it
to the :class:`repro.DesignEngine`: it selects the unordered code
(§III.2), builds the figure-3 self-checking memory and reports the
area/latency trade-off — as text or JSON.

Run: ``python examples/quickstart.py``
"""

from repro import DesignEngine, DesignSpec
from repro.circuits.faults import NetStuckAt
from repro.memory.faults import CellStuckAt


def main() -> None:
    # 1. Declare the design problem: a 2K x 16 RAM; decoder faults must
    #    be flagged within 10 cycles with escape probability <= 1e-9.
    spec = DesignSpec(words=2048, bits=16, column_mux=8, c=10, pndc=1e-9)
    engine = DesignEngine()

    # 2. Evaluate it: the structured report carries selections, the
    #    guarantees they buy and the area bill under both models.
    report = engine.evaluate(spec)
    print(
        f"selected code : {report.row.code} (mapping modulus a = "
        f"{report.row.a_final})"
    )
    print(
        f"guarantee     : Pndc = {report.row.pndc_achieved:.3g} after "
        f"{report.row.c} cycles"
    )
    print(
        f"area overhead : {report.area.stdcell_overhead_percent:.1f} % "
        f"(std-cell model, decoder checking)"
    )
    print(
        f"(machine-readable: report.to_json() -> "
        f"{len(report.to_json())} bytes)\n"
    )

    # 3. Build the self-checking memory (figure 3) and use it.
    memory = engine.build(spec)
    org = spec.organization
    memory.write(0x2A, (1, 0, 1, 1, 0, 0, 1, 0) * 2)
    result = memory.read(0x2A)
    assert result.data == (1, 0, 1, 1, 0, 0, 1, 0) * 2
    assert not result.error_detected
    print("fault-free read: data correct, no error indication")

    # 4. A cell fault: caught by the parity path with zero latency.
    memory.inject_memory_fault(CellStuckAt(address=0x2A, bit=3, value=1))
    memory.write(0x2A, (0,) * 16)
    result = memory.read(0x2A)
    print(f"cell stuck-at-1: parity checker flags it -> "
          f"error_detected={result.error_detected}")
    memory.clear_faults()

    # 5. A decoder fault: caught by the ROM + 3-out-of-5 checker.
    word_line_net = memory.row.tree.root.output_nets[7]
    memory.inject_row_fault(NetStuckAt(word_line_net, 1))  # line 7 stuck on
    for address in range(org.words):
        if memory.read(address).error_detected:
            print(f"decoder stuck-at-1: detected at read #{address} "
                  f"(two word lines merged, ROM word left the code)")
            break
    memory.clear_faults()

    # 6. Batch exploration: sweep the trade-off grid in parallel.
    grid = DesignSpec.grid([org], [(2, 1e-9), (10, 1e-9), (40, 1e-9)])
    for point in engine.sweep(grid, workers=3):
        print(f"sweep: c={point.spec.c:<3d} -> {point.row.code:<12s} "
              f"area {point.area.stdcell_overhead_percent:.2f} %")


if __name__ == "__main__":
    main()
