"""Campaign suites — declare a matrix once, resume it forever.

The 1.5 batch workflow end to end:

* declare a `SuiteSpec`: blocks of targets x workloads x scenario
  populations x engine policies, expanded into concrete cells;
* run it through a `SuiteRunner` backed by a `ResultStore` — every
  cell's artifact is content-addressed, progress streams per cell;
* run it *again*: every cell is a verified store hit, the simulator is
  never invoked, and the stable payload is identical to the cold run;
* the built-in `paper_grid` suite packages the paper's whole result
  grid (Table 1 + Table 2 + campaigns) the same way:
  ``repro suite run paper_grid --store S``.

Run: ``python examples/suite_run.py``
"""

import tempfile

from repro.suite import MatrixBlock, SuiteRunner, SuiteSpec, builtin_suite


def demo_suite() -> SuiteSpec:
    """A small custom matrix: one design sizing, a decoder campaign,
    and transient upsets under two traffic families."""
    design = MatrixBlock(
        family="design",
        label="sizing",
        targets=(
            {"words": 256, "bits": 8, "c": 10, "pndc": 1e-9},
            {"words": 256, "bits": 8, "c": 2, "pndc": 1e-9},
        ),
    )
    decoder = MatrixBlock(
        family="decoder",
        label="decoder",
        targets=({"words": 256, "bits": 8, "c": 10, "pndc": 1e-9},),
        workloads=({"family": "uniform", "cycles": 128, "seed": 11},),
        scenarios={"population": "decoder-stuck-ats"},
    )
    transient = MatrixBlock(
        family="transient",
        label="upsets",
        targets=({"words": 64, "bits": 8, "column_mux": 4},),
        workloads=(
            {"family": "uniform", "cycles": 512, "seed": 11},
            {"family": "scrubbed", "cycles": 512, "seed": 11},
        ),
        scenarios={"population": "upset-stride", "stride": 8, "cycle": 16},
    )
    return SuiteSpec(
        name="demo",
        description="sizing + decoder campaign + transient workloads",
        blocks=(design, decoder, transient),
    )


def main() -> None:
    suite = demo_suite()
    print(
        f"suite {suite.name!r}: {len(suite.cells())} cells from "
        f"{len(suite.blocks)} blocks"
    )
    print(
        "(the spec is plain JSON — save suite.to_json() as a file and "
        "`repro suite run` it)\n"
    )

    def narrate(event: dict) -> None:
        if event["event"] == "done":
            print(
                f"  [{event['index'] + 1}/{event['total']}] "
                f"{event['cell']}: {event['status']}"
            )

    with tempfile.TemporaryDirectory() as store:
        print("cold run (everything simulates):")
        cold = SuiteRunner(store=store, progress=narrate).run(suite)
        print(f"  -> {cold.simulated} simulated, {cold.hits} hits\n")

        print("re-run against the same store (nothing simulates):")
        warm = SuiteRunner(store=store).run(suite)
        print(
            f"  -> {warm.hits} hits ({warm.verified_hits} hash-verified),"
            f" {warm.simulated} simulated"
        )
        assert warm.simulated == 0 and warm.verified_hits == len(warm.cells)
        assert cold.to_dict(stable_only=True) == warm.to_dict(
            stable_only=True
        )
        print(
            "  -> stable payloads identical: the resumed run is the "
            "same result, served from disk\n"
        )

        print(warm.render())

    grid = builtin_suite("paper_grid")
    print(
        f"\nbuilt-in paper_grid: {len(grid.cells())} cells across "
        f"{', '.join(grid.families())} — run it with\n"
        f"  repro suite run paper_grid --store .repro-store"
    )


if __name__ == "__main__":
    main()
