"""The campaign service end to end — submit, stream, fetch, diff.

The 1.6 traffic workflow against a real in-thread HTTP server (the
same stdlib stack `repro serve` runs):

* start a `CampaignService` over a throwaway store and serve it;
* submit the built-in `paper_grid` suite through `ServiceClient` and
  stream the live ``[i/N]`` progress snapshots while the job runs;
* submit the identical suite again: the second job completes as
  verified store hits — the simulator is never invoked;
* fetch the same artifact from both jobs and diff the parsed result
  sets record by record: byte-identical payloads, zero drift.

Run: ``python examples/service_client.py``
"""

import tempfile

from repro.results import ResultSet
from repro.service import CampaignService, ServiceClient, serving


def stream_progress(job: dict) -> None:
    snapshot = job.get("progress") or {}
    if "completed" in snapshot:
        print(
            f"  [{snapshot['completed']:>2}/{snapshot['total']}] "
            f"{snapshot.get('cell')}: {snapshot.get('status')}"
        )


def submit_and_wait(client: ServiceClient, tag: str) -> dict:
    job = client.submit("paper_grid")
    print(f"{tag}: job {job['job_id']} {job['state']}")
    job = client.wait(job["job_id"], timeout=300, progress=stream_progress)
    execution = job["report"]["execution"]
    print(
        f"{tag}: {job['state']} — {execution['cells']} cells, "
        f"{execution['simulated']} simulated, "
        f"{execution['hits']} hit(s) "
        f"({execution['verified_hits']} verified), "
        f"{execution['errors']} error(s)\n"
    )
    return job


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        with CampaignService(store=root, workers=2) as service:
            with serving(service) as url:
                client = ServiceClient(url)
                health = client.health()
                print(
                    f"service {health['version']} at {url} "
                    f"({health['workers']} job workers)\n"
                )

                cold = submit_and_wait(client, "cold submit")
                resumed = submit_and_wait(client, "identical resubmit")

                # the resumed job produced the same artifacts without
                # simulating anything
                assert resumed["report"]["execution"]["simulated"] == 0
                assert cold["result_keys"] == resumed["result_keys"]

                # fetch one campaign artifact "twice" (once per job) and
                # diff the parsed result sets record by record
                key = next(
                    k for k in cold["result_keys"]
                    if client.result(k)["kind"] == "campaign"
                )
                left_raw = client.records(key)
                right_raw = client.records(key)
                diff = ResultSet.from_jsonl(left_raw).diff(
                    ResultSet.from_jsonl(right_raw)
                )
                print(f"artifact {key[:12]}… fetched from both jobs:")
                print(f"  byte-identical payloads: {left_raw == right_raw}")
                print(
                    f"  record diff: {diff.matched} matched, "
                    f"coverage delta {diff.coverage_delta:+g}, "
                    f"identical={diff.identical}"
                )
                assert diff.identical

                jobs = client.jobs()
                print(
                    "\njob table: "
                    + ", ".join(
                        f"{job['job_id']}={job['state']}" for job in jobs
                    )
                )


if __name__ == "__main__":
    main()
