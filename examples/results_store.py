"""Results & artifact API — compute a campaign once, answer from disk.

The 1.4 workflow end to end:

* run a decoder campaign through a `CampaignEngine` with a `ResultStore`
  attached — the result is provenance-stamped and lands in the store
  under the canonical hash of (target, scenarios, workload, policy);
* re-run the identical campaign: a verified store *hit*, served from
  disk without invoking the simulator;
* round-trip the artifact through streaming JSONL bit-identically;
* compare two different runs (uniform vs bursty traffic) with one
  `ResultSet.diff` call instead of a bespoke experiment script.

Run: ``python examples/results_store.py``
"""

import tempfile
import time

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.faultsim.injector import decoder_fault_list
from repro.results import ResultSet, ResultStore
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import CampaignEngine, Workload


def main() -> None:
    n_bits, cycles = 6, 400
    code = MOutOfNCode(3, 5)
    checked = CheckedDecoder(mapping_for_code(code, n_bits))
    checker = MOutOfNChecker(code.m, code.n, structural=False)
    faults = decoder_fault_list(checked)
    uniform = Workload.uniform(1 << n_bits, cycles, seed=42)

    store_root = tempfile.mkdtemp(prefix="repro-store-")
    store = ResultStore(store_root)
    engine = CampaignEngine(store=store)

    # -- first run: simulated, then stored under its content address
    start = time.perf_counter()
    first = engine.decoder(checked, checker, faults, uniform)
    cold = time.perf_counter() - start
    print(
        f"cold run : {first.total} faults, coverage {first.coverage:.3f}, "
        f"{cold * 1e3:.1f} ms (from_store={first.from_store})"
    )
    print(f"           store key {first.store_key[:16]}…")

    # -- identical re-run: a verified hit, the simulator never runs
    start = time.perf_counter()
    second = CampaignEngine(store=store).decoder(
        checked, checker, faults, uniform
    )
    warm = time.perf_counter() - start
    print(
        f"warm run : served from disk in {warm * 1e3:.1f} ms "
        f"(from_store={second.from_store}, "
        f"hits={store.stats.hits}, verified={store.stats.verified})"
    )
    assert second.to_result_set() == first.to_result_set()

    # -- the artifact round-trips through streaming JSONL losslessly
    artifact = first.to_result_set()
    text = artifact.to_jsonl()
    assert ResultSet.from_jsonl(text) == artifact
    provenance = artifact.provenance
    print(
        f"artifact : {len(text.splitlines())} JSONL lines; provenance "
        f"{provenance.campaign}/{provenance.engine}, "
        f"workload {provenance.workload}"
    )

    # -- cross-run diff: same faults, different traffic, one call
    bursty = Workload.bursty(1 << n_bits, cycles, locality=4, seed=42)
    bursty_result = engine.decoder(checked, checker, faults, bursty)
    diff = artifact.diff(bursty_result.to_result_set())
    print("\nuniform -> bursty traffic, record-matched diff:")
    print(diff.render())

    # -- the algebra: slice the stored artifact without re-simulating
    sa1 = artifact.filter(kind="sa1")
    late = artifact.filter(
        lambda r: r.detected and r.first_detection >= 10
    )
    print(
        f"filters  : {sa1.total} stuck-at-1 records "
        f"(coverage {sa1.coverage:.3f}), {late.total} detected at "
        f"cycle >= 10"
    )
    by_kind = {
        kind: group.total for kind, group in artifact.group_by("kind").items()
    }
    print(f"group_by : {by_kind}")


if __name__ == "__main__":
    main()
