"""Fault-injection campaign — measure detection latency, don't just trust it.

Builds a checked decoder (6 address bits, 3-out-of-5 code), enumerates
every stuck-at fault in the gate-level tree, replays a seeded
`Workload` against each through the unified `CampaignEngine`, and
prints:

* the measured first-detection-cycle histogram ("the latency figure" the
  paper's model predicts);
* measured vs analytic escape fraction at several latencies c;
* the zero-latency verdicts for stuck-at-0 faults;
* a bursty-traffic ablation (same faults, a different workload value).

Run: ``python examples/fault_injection_campaign.py``
"""

from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import mapping_for_code
from repro.decoder.analysis import analyze_decoder
from repro.experiments.common import format_table
from repro.experiments.latency_empirical import survival_curve
from repro.faultsim.injector import decoder_fault_list, rom_fault_list
from repro.rom.nor_matrix import CheckedDecoder
from repro.scenarios import CampaignEngine, Workload


def main() -> None:
    n_bits, cycles = 6, 500
    code = MOutOfNCode(3, 5)
    mapping = mapping_for_code(code, n_bits)
    checked = CheckedDecoder(mapping)
    checker = MOutOfNChecker(code.m, code.n, structural=False)
    engine = CampaignEngine()  # packed fast path, collapsing on

    faults = decoder_fault_list(checked) + rom_fault_list(checked)
    print(
        f"decoder: {checked.tree.circuit.num_gates - len(checked.rom_nets)}"
        f" tree gates + {len(checked.rom_nets)} ROM columns, "
        f"{len(faults)} stuck-at faults"
    )

    workload = Workload.uniform(1 << n_bits, cycles, seed=42)
    result = engine.decoder(checked, checker, faults, workload)
    print(f"coverage within {cycles} random cycles: {result.coverage:.3f}")

    print("\nfirst-detection-cycle histogram:")
    for rng, count in result.latency_histogram([1, 2, 5, 10, 20, 50]).items():
        bar = "#" * min(60, count)
        print(f"  {rng:>10}: {count:4d} {bar}")

    analysis = analyze_decoder(checked.tree, mapping)
    curve = survival_curve(result, analysis, [1, 2, 5, 10, 20, 50, 100])
    rows = [
        [c, f"{m:.4f}", f"{a:.4f}"] for c, (m, a) in sorted(curve.items())
    ]
    print("\nescape fraction (tree faults), measured vs analytic:")
    print(format_table(["c", "measured", "analytic"], rows))

    sa0 = [r for r in result.records if r.kind == "sa0" and r.detected]
    zero = sum(1 for r in sa0 if r.latency == 0)
    print(
        f"\nstuck-at-0 zero-latency: {zero}/{len(sa0)} detected on the "
        f"first erroneous cycle (paper claims all)"
    )

    # The model assumes uniform traffic; bursty traffic detects slower.
    bursty = Workload.bursty(1 << n_bits, cycles, locality=4, seed=42)
    bursty_result = engine.decoder(
        checked, checker, decoder_fault_list(checked), bursty,
        attach_analytic=False,
    )
    print(
        f"\nbursty traffic ablation: escape at c=10 is "
        f"{bursty_result.escape_fraction_at(10):.3f} vs "
        f"{result.escape_fraction_at(10):.3f} under uniform traffic"
    )


if __name__ == "__main__":
    main()
