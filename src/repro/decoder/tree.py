"""The paper's structured multilevel decoder (§III.2).

The decoder for ``n`` address bits is described as a tree of *decoding
blocks*:

* 0-level: one block per address input, made of one inverter, providing
  the complemented and direct literals — a block decoding 1 input with
  2 outputs;
* k-level: blocks of the previous level(s) are associated into pairs of
  blocks decoding *adjacent* input ranges; each pair gets a new block of
  2-input AND gates, one gate per combination of the pair's outputs, that
  decodes the union of the two ranges;
* last level: a single block whose ``2^n`` outputs are the decoder word
  lines, output ``v`` active iff the address equals ``v``.

When ``n`` is not a power of two some pairs straddle levels (the paper
notes the analysis is valid regardless); we simply carry an unpaired block
forward to the next level.

Two structural properties the paper's latency computation rests on are
exposed as methods so tests can verify them on the gate-level netlist:

* property (a): in the fault-free decoder every block has exactly one
  active output;
* property (b): if a fault forces a block's outputs to all-0, the decoder
  outputs are all-0.

Address/bit convention: bit 0 is the least-significant address bit.  A
block decodes the contiguous bit range ``[lo, hi)``; its output ``v`` is
active iff ``bits lo..hi-1`` of the address equal ``v``.  With this
convention the two word lines selected by a stuck-at-1 in a block at
offset ``lo`` decode addresses differing by ``2^lo * (m1 - m2)``, exactly
the ``2^j . X`` arithmetic of §III.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

__all__ = ["DecodingBlock", "DecoderTree", "build_decoder"]


class DecodingBlock:
    """One decoding block: decodes address bits ``[lo, hi)``.

    ``output_nets[v]`` is the net that is high iff the address bits in the
    block's range equal ``v``.
    """

    __slots__ = ("lo", "hi", "level", "output_nets", "left", "right")

    def __init__(
        self,
        lo: int,
        hi: int,
        level: int,
        output_nets: Sequence[int],
        left: Optional["DecodingBlock"] = None,
        right: Optional["DecodingBlock"] = None,
    ):
        self.lo = lo
        self.hi = hi
        self.level = level
        self.output_nets = tuple(output_nets)
        self.left = left
        self.right = right

    @property
    def width(self) -> int:
        """Number of address bits decoded (the paper's ``i``)."""
        return self.hi - self.lo

    @property
    def num_outputs(self) -> int:
        return len(self.output_nets)

    def value_of_output(self, net: int) -> int:
        """The sub-value ``v`` decoded by a given output net of this block."""
        return self.output_nets.index(net)

    def __repr__(self) -> str:
        return (
            f"DecodingBlock(bits[{self.lo}:{self.hi}), level={self.level}, "
            f"outputs={self.num_outputs})"
        )


class DecoderTree:
    """A gate-level n-to-2^n decoder built from paired decoding blocks."""

    def __init__(self, n: int, name: str = "decoder"):
        if n < 1:
            raise ValueError(f"decoder needs at least 1 address bit, got {n}")
        self.n = n
        self.circuit = Circuit(name)
        self.input_nets = self.circuit.add_inputs(
            [f"a{i}" for i in range(n)]
        )
        self.blocks: List[DecodingBlock] = []
        #: net id -> (block, decoded sub-value); covers every block output
        self.net_site: Dict[int, Tuple[DecodingBlock, int]] = {}
        self.root = self._build()
        for value, net in enumerate(self.root.output_nets):
            self.circuit.mark_output(net, name=f"w{value}")

    # -- construction ----------------------------------------------------------

    def _register(self, block: DecodingBlock) -> DecodingBlock:
        self.blocks.append(block)
        for value, net in enumerate(block.output_nets):
            self.net_site[net] = (block, value)
        return block

    def _level0_block(self, bit: int) -> DecodingBlock:
        direct = self.input_nets[bit]
        comp = self.circuit.add_gate(
            GateType.NOT, (direct,), name=f"a{bit}_n"
        )
        # output 0 active iff bit == 0 (the complement), output 1 iff bit == 1
        return self._register(
            DecodingBlock(bit, bit + 1, 0, (comp, direct))
        )

    def _combine(
        self, low_block: DecodingBlock, high_block: DecodingBlock, level: int
    ) -> DecodingBlock:
        """AND every output of the low-range block with every output of the
        high-range block — the paper's k-level block of 2^(2i) 2-input gates."""
        if low_block.hi != high_block.lo:
            raise ValueError(
                f"blocks must decode adjacent ranges, got "
                f"[{low_block.lo},{low_block.hi}) and "
                f"[{high_block.lo},{high_block.hi})"
            )
        low_width = low_block.width
        outputs: List[int] = []
        for value in range(1 << (low_width + high_block.width)):
            low_value = value & ((1 << low_width) - 1)
            high_value = value >> low_width
            net = self.circuit.add_gate(
                GateType.AND,
                (
                    low_block.output_nets[low_value],
                    high_block.output_nets[high_value],
                ),
                name=f"blk{low_block.lo}_{high_block.hi}_v{value}",
            )
            outputs.append(net)
        return self._register(
            DecodingBlock(
                low_block.lo, high_block.hi, level, outputs,
                left=low_block, right=high_block,
            )
        )

    def _build(self) -> DecodingBlock:
        layer = [self._level0_block(bit) for bit in range(self.n)]
        level = 1
        while len(layer) > 1:
            nxt: List[DecodingBlock] = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self._combine(layer[i], layer[i + 1], level))
            if len(layer) % 2:
                nxt.append(layer[-1])  # carried to a later level (n not 2^k)
            layer = nxt
            level += 1
        return layer[0]

    # -- behaviour ---------------------------------------------------------------

    @property
    def num_outputs(self) -> int:
        return 1 << self.n

    def decode(self, address: int, faults=()) -> Tuple[int, ...]:
        """Word-line vector for an address (LSB-first input assignment)."""
        if not 0 <= address < (1 << self.n):
            raise ValueError(
                f"address {address} out of range [0, {1 << self.n})"
            )
        bits = [(address >> i) & 1 for i in range(self.n)]
        return self.circuit.evaluate(bits, faults=faults)

    def selected_lines(self, address: int, faults=()) -> Tuple[int, ...]:
        """Indices of active word lines (fault-free: exactly one)."""
        outs = self.decode(address, faults=faults)
        return tuple(i for i, bit in enumerate(outs) if bit)

    # -- structural properties (a) and (b) of §III.2 ------------------------------

    def check_property_a(self, address: int) -> bool:
        """Fault-free: every decoding block has exactly one active output."""
        bits = [(address >> i) & 1 for i in range(self.n)]
        # Evaluate once, then inspect each block's output nets.
        values = self._all_net_values(bits)
        return all(
            sum(values[net] for net in block.output_nets) == 1
            for block in self.blocks
        )

    def check_property_b(self, block: DecodingBlock, address: int) -> bool:
        """Forcing a block's outputs to all-0 forces the decoder to all-0."""
        from repro.circuits.faults import NetStuckAt

        faults = [NetStuckAt(net, 0) for net in block.output_nets]
        return all(bit == 0 for bit in self.decode(address, faults=faults))

    def _all_net_values(self, bits: Sequence[int]) -> List[int]:
        """Net-by-net evaluation (internal; mirrors Circuit.evaluate)."""
        from repro.circuits.gates import evaluate_gate

        values = [0] * self.circuit.num_nets
        for net, bit in zip(self.circuit.input_nets, bits):
            values[net] = bit
        for gate in self.circuit.gates:
            values[gate.output] = evaluate_gate(
                gate.gate_type, [values[s] for s in gate.inputs]
            )
        return values

    def site_of_net(self, net: int) -> Optional[Tuple[DecodingBlock, int]]:
        """(block, decoded sub-value) for a block-output net, else None.

        Primary-input nets are not block outputs; every gate output in the
        tree is an output of exactly one block.
        """
        return self.net_site.get(net)

    def __repr__(self) -> str:
        return (
            f"DecoderTree(n={self.n}, outputs={self.num_outputs}, "
            f"gates={self.circuit.num_gates}, blocks={len(self.blocks)})"
        )


def build_decoder(n: int, name: str = "decoder") -> DecoderTree:
    """Convenience constructor matching the paper's description."""
    return DecoderTree(n, name=name)
