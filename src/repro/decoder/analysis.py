"""Per-fault analytic detection analysis of the decoder tree (§III.2).

Every gate output inside a :class:`~repro.decoder.tree.DecoderTree` is an
output of exactly one decoding block, so each stuck-at fault is a
*fault site* ``(block offset j, block width i, decoded sub-value m1,
polarity)``.  The paper's case analysis, implemented here:

* **stuck-at 0** on a block output: when excited (sub-value ``m1``
  addressed), the whole decoder goes all-0, the NOR matrix emits all-1s —
  a non-code word of any unordered code with >= 2 words.  Zero detection
  latency (first error detected); the only "escape" is non-excitation.
* **stuck-at 1** on a block output: when a different sub-value ``m2`` is
  addressed, exactly two word lines activate, carrying the code words of
  addresses that differ by ``2^j (m1 - m2)``.  Escape per cycle is the
  probability that the mapping assigns both the same word.
* **address-input stem faults**: the decoder *correctly* decodes a wrong
  address; a single valid line activates and the ROM emits a legal code
  word.  Out of scope for the scheme (the paper checks decoder faults;
  address buses need their own protection) — classified, not counted as
  covered.

For the standard mappings the escape probability is context-independent
and computed in closed form; for arbitrary mappings (completion remaps,
ablation mappings) an exhaustive context enumeration is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.circuits.faults import FaultBase, NetStuckAt
from repro.core.latency import collision_count
from repro.core.mapping import (
    AddressMapping,
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
)
from repro.decoder.tree import DecoderTree

__all__ = [
    "FaultSite",
    "classify_fault_sites",
    "sa1_escape_closed_form",
    "sa1_escape_exhaustive",
    "analyze_decoder",
    "DecoderAnalysis",
]


@dataclass
class FaultSite:
    """One stuck-at fault location inside the decoder tree."""

    fault: FaultBase
    #: 'sa0' | 'sa1' | 'address'
    kind: str
    #: block's low bit offset (the paper's j); None for address faults
    block_lo: Optional[int]
    #: block width in address bits (the paper's i); None for address faults
    block_width: Optional[int]
    #: sub-value decoded by the faulted line (the paper's m1)
    sub_value: Optional[int]
    #: per-cycle probability the fault stays undetected (uniform addresses)
    escape_per_cycle: Optional[Fraction] = None
    #: True when the first *error* is guaranteed detected
    zero_latency: bool = False

    def pndc(self, c: int) -> float:
        """Probability of surviving ``c`` cycles undetected."""
        if self.escape_per_cycle is None:
            return 1.0
        return float(self.escape_per_cycle) ** c


def _effective_modulus_gcd(mapping: AddressMapping, lo: int) -> int:
    """gcd(2^lo, a) for the mod mapping — 1 whenever ``a`` is odd."""
    if isinstance(mapping, ModAMapping):
        return math.gcd(1 << lo, mapping.a)
    return 1


def sa1_escape_closed_form(
    mapping: AddressMapping, lo: int, width: int, m1: int
) -> Optional[Fraction]:
    """Context-independent per-cycle escape for a stuck-at-1, if available.

    Returns None when the mapping has no closed form (fall back to
    :func:`sa1_escape_exhaustive`).

    The completion remap of :class:`ModAMapping` perturbs at most
    ``C - a`` addresses out of ``2^n``; the closed form ignores it (the
    remap only ever *splits* former collisions, so the closed form is a
    safe upper bound — tests pin the exact gap).
    """
    total = 1 << width
    if isinstance(mapping, ParityMapping):
        # x collides with m1 iff parity(x) == parity(m1): exactly half.
        if width == 0:
            return Fraction(1)
        return Fraction(1, 2)
    if isinstance(mapping, IdentityMapping):
        # Only x = m1 maps to the same word.
        return Fraction(1, total)
    if isinstance(mapping, TruncatedBergerMapping):
        # Collides iff low info bits equal: the high-k sub-decoder is blind.
        info = mapping.info_bits
        if lo >= info:
            return Fraction(1)  # block entirely in the unchecked high bits
        overlap_hi = min(lo + width, info)
        checked = overlap_hi - lo
        return Fraction(1 << (width - checked), total)
    if isinstance(mapping, ModAMapping):
        gcd = _effective_modulus_gcd(mapping, lo)
        return Fraction(
            collision_count(width, mapping.a, m1, modulus_gcd=gcd), total
        )
    return None


def sa1_escape_exhaustive(
    mapping: AddressMapping, lo: int, width: int, m1: int
) -> Fraction:
    """Exact escape by enumerating every address (small decoders only).

    Escape event for a uniformly drawn address ``A``: the mapping gives
    the faulted line's address ``A1`` (bits [lo, lo+width) forced to m1)
    the same index as ``A`` itself.  Includes non-excitation (``A = A1``).
    """
    n = mapping.n_bits
    if n > 22:
        raise ValueError(
            f"exhaustive escape enumeration over 2^{n} addresses refused; "
            f"use the closed form or sample"
        )
    mask = ((1 << width) - 1) << lo
    forced = m1 << lo
    collide = 0
    for address in range(1 << n):
        faulty = (address & ~mask) | forced
        if mapping.index(faulty) == mapping.index(address):
            collide += 1
    return Fraction(collide, 1 << n)


def classify_fault_sites(
    tree: DecoderTree,
    include_inputs: bool = True,
) -> List[FaultSite]:
    """Enumerate and classify every net stuck-at fault of a decoder tree."""
    sites: List[FaultSite] = []
    if include_inputs:
        for net in tree.circuit.input_nets:
            for value in (0, 1):
                sites.append(
                    FaultSite(
                        fault=NetStuckAt(net, value),
                        kind="address",
                        block_lo=None,
                        block_width=None,
                        sub_value=None,
                        escape_per_cycle=None,
                        zero_latency=False,
                    )
                )
    for gate in tree.circuit.gates:
        site = tree.site_of_net(gate.output)
        if site is None:  # pragma: no cover - every gate is a block output
            continue
        block, sub_value = site
        for value in (0, 1):
            sites.append(
                FaultSite(
                    fault=NetStuckAt(gate.output, value),
                    kind="sa0" if value == 0 else "sa1",
                    block_lo=block.lo,
                    block_width=block.width,
                    sub_value=sub_value,
                )
            )
    return sites


@dataclass
class DecoderAnalysis:
    """Aggregate analytic results for a (decoder, mapping) pair."""

    tree: DecoderTree
    mapping: AddressMapping
    sites: List[FaultSite]

    @property
    def sa1_sites(self) -> List[FaultSite]:
        return [s for s in self.sites if s.kind == "sa1"]

    @property
    def sa0_sites(self) -> List[FaultSite]:
        return [s for s in self.sites if s.kind == "sa0"]

    @property
    def address_sites(self) -> List[FaultSite]:
        return [s for s in self.sites if s.kind == "address"]

    def worst_escape(self) -> Fraction:
        """Largest per-cycle escape among stuck-at-1 sites."""
        escapes = [
            s.escape_per_cycle
            for s in self.sa1_sites
            if s.escape_per_cycle is not None
        ]
        return max(escapes) if escapes else Fraction(0)

    def worst_pndc(self, c: int) -> float:
        return float(self.worst_escape()) ** c

    def mean_escape(self) -> float:
        sa1 = self.sa1_sites
        if not sa1:
            return 0.0
        return sum(float(s.escape_per_cycle) for s in sa1) / len(sa1)

    def zero_latency_fraction(self) -> float:
        """Fraction of in-model faults (sa0+sa1) with guaranteed zero latency."""
        in_model = [s for s in self.sites if s.kind in ("sa0", "sa1")]
        zero = sum(1 for s in in_model if s.zero_latency)
        return zero / len(in_model) if in_model else 1.0

    def escape_histogram(self) -> Dict[Fraction, int]:
        """Escape value -> number of stuck-at-1 sites with that value."""
        hist: Dict[Fraction, int] = {}
        for site in self.sa1_sites:
            hist[site.escape_per_cycle] = hist.get(site.escape_per_cycle, 0) + 1
        return hist


def analyze_decoder(
    tree: DecoderTree,
    mapping: AddressMapping,
    exhaustive: bool = False,
    include_inputs: bool = True,
) -> DecoderAnalysis:
    """Classify every fault and attach its analytic escape probability.

    With ``exhaustive=True`` the per-site escape is computed by full
    address enumeration (exact even under completion remaps); otherwise
    the closed form is used.
    """
    sites = classify_fault_sites(tree, include_inputs=include_inputs)
    for site in sites:
        if site.kind == "address":
            continue
        if site.kind == "sa0":
            # First error forces all word lines low: all-1s out of the NOR
            # matrix, detected immediately.  Escape = non-excitation only.
            site.zero_latency = True
            site.escape_per_cycle = Fraction(
                (1 << site.block_width) - 1, 1 << site.block_width
            )
            continue
        # stuck-at 1
        if exhaustive:
            escape = sa1_escape_exhaustive(
                mapping, site.block_lo, site.block_width, site.sub_value
            )
        else:
            escape = sa1_escape_closed_form(
                mapping, site.block_lo, site.block_width, site.sub_value
            )
            if escape is None:
                escape = sa1_escape_exhaustive(
                    mapping, site.block_lo, site.block_width, site.sub_value
                )
        site.escape_per_cycle = escape
        # Zero latency when every erroneous merge is detected: the only
        # colliding sub-value is m1 itself (count == 1).
        collide_states = escape * (1 << site.block_width)
        site.zero_latency = collide_states == 1
    return DecoderAnalysis(tree=tree, mapping=mapping, sites=sites)
