"""Gate-level decoder trees (§III.2) and their analytic fault analysis."""

from repro.decoder.analysis import (
    DecoderAnalysis,
    FaultSite,
    analyze_decoder,
    classify_fault_sites,
    sa1_escape_closed_form,
    sa1_escape_exhaustive,
)
from repro.decoder.flat import FlatDecoder
from repro.decoder.tree import DecoderTree, DecodingBlock, build_decoder

__all__ = [
    "FlatDecoder",
    "DecoderTree",
    "DecodingBlock",
    "build_decoder",
    "DecoderAnalysis",
    "FaultSite",
    "analyze_decoder",
    "classify_fault_sites",
    "sa1_escape_closed_form",
    "sa1_escape_exhaustive",
]
