"""Single-level ("flat") decoder — one n-input AND gate per word line.

§III contrasts two decoder implementations for the parity scheme of
[CHE 85] / [NIC 84b]:

* a *single-level* decoder (one n-input AND or NOR per output, plus the
  input inverters): every internal fault merges word lines whose
  addresses differ in **one** bit, so the (even, odd)-parity ROM detects
  every merge on the first erroneous cycle — "covers the majority of
  faults";
* a *multilevel* decoder (the §III.2 tree): internal faults merge lines
  differing in a whole sub-field, which the parity pair sees only with
  probability 1/2 per cycle — "low fault coverage and large detection
  latency".

This class provides the single-level implementation with the same
interface surface as :class:`~repro.decoder.tree.DecoderTree`
(``circuit``, ``decode``, ``selected_lines``, ``site_of_net``,
``root``/``blocks``), so :class:`~repro.rom.nor_matrix.CheckedDecoder`
and the campaign machinery run unmodified on either style.  Experiment
X10 (:mod:`repro.experiments.decoder_style`) reproduces the claim.

Fan-in note: real libraries cap AND fan-in; the paper's point is about
logic *depth* (one level of decoding), which the model captures
regardless of how the wide AND would be legalised.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.decoder.tree import DecodingBlock

__all__ = ["FlatDecoder"]


class FlatDecoder:
    """n-to-2^n decoder: input inverters + one wide AND per word line."""

    def __init__(self, n: int, name: str = "flat_decoder"):
        if n < 1:
            raise ValueError(f"decoder needs at least 1 address bit, got {n}")
        self.n = n
        self.circuit = Circuit(name)
        self.input_nets = self.circuit.add_inputs(
            [f"a{i}" for i in range(n)]
        )
        self.blocks = []
        self.net_site: Dict[int, Tuple[DecodingBlock, int]] = {}

        # 0-level literal blocks (shared with the tree construction).
        literal_blocks = []
        for bit, direct in enumerate(self.input_nets):
            comp = self.circuit.add_gate(
                GateType.NOT, (direct,), name=f"a{bit}_n"
            )
            block = DecodingBlock(bit, bit + 1, 0, (comp, direct))
            literal_blocks.append(block)
            self._register(block)

        # Single level of wide AND gates: one per address value.
        outputs = []
        for value in range(1 << n):
            literals = []
            for bit in range(n):
                chosen = (value >> bit) & 1
                literals.append(literal_blocks[bit].output_nets[chosen])
            if n == 1:
                net = self.circuit.add_gate(
                    GateType.BUF, (literals[0],), name=f"w{value}_buf"
                )
            else:
                net = self.circuit.add_gate(
                    GateType.AND, literals, name=f"w{value}_and"
                )
            outputs.append(net)
        self.root = DecodingBlock(0, n, 1, outputs)
        self._register(self.root)
        for value, net in enumerate(outputs):
            self.circuit.mark_output(net, name=f"w{value}")

    def _register(self, block: DecodingBlock) -> None:
        self.blocks.append(block)
        for value, net in enumerate(block.output_nets):
            self.net_site[net] = (block, value)

    @property
    def num_outputs(self) -> int:
        return 1 << self.n

    def decode(self, address: int, faults=()) -> Tuple[int, ...]:
        if not 0 <= address < (1 << self.n):
            raise ValueError(
                f"address {address} out of range [0, {1 << self.n})"
            )
        bits = [(address >> i) & 1 for i in range(self.n)]
        return self.circuit.evaluate(bits, faults=faults)

    def selected_lines(self, address: int, faults=()) -> Tuple[int, ...]:
        outs = self.decode(address, faults=faults)
        return tuple(i for i, bit in enumerate(outs) if bit)

    def site_of_net(
        self, net: int
    ) -> Optional[Tuple[DecodingBlock, int]]:
        return self.net_site.get(net)

    def __repr__(self) -> str:
        return (
            f"FlatDecoder(n={self.n}, outputs={self.num_outputs}, "
            f"gates={self.circuit.num_gates})"
        )
