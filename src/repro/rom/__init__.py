"""NOR/ROM matrix models for the decoder-checking scheme."""

from repro.rom.nor_matrix import CheckedDecoder, NORMatrix

__all__ = ["CheckedDecoder", "NORMatrix"]
