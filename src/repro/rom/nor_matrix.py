"""The NOR (ROM) matrix that re-encodes decoder outputs (§III).

One ROM row per decoder word line; the matrix is programmed so that when
word line ``L`` alone is active, the ROM outputs ``codeword(L)``.  In a
NOR matrix each output column is a NOR over the word lines programmed
with a 0 in that column, which gives the two load-bearing behaviours the
paper exploits:

* no line active (stuck-at-0 faults): every output floats high — the
  **all-1s vector**, a non-code word of any unordered code;
* two lines active (stuck-at-1 faults): each output is high only if both
  lines' code words are high there — the **bitwise AND** of the two code
  words, a non-code word whenever the words differ (unorderedness).

Both a fast behavioural model and a gate-level netlist view are provided;
the gate-level view is appended to the decoder's own circuit so a single
fault-simulation pass covers decoder *and* ROM faults.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.codes.base import BitVector
from repro.core.mapping import AddressMapping
from repro.decoder.tree import DecoderTree

__all__ = ["NORMatrix", "CheckedDecoder"]


class NORMatrix:
    """A programmable NOR matrix over ``num_lines`` one-hot input lines."""

    def __init__(self, rows: Sequence[BitVector]):
        if not rows:
            raise ValueError("NOR matrix needs at least one programmed row")
        width = len(rows[0])
        for row in rows:
            if len(row) != width:
                raise ValueError("all programmed rows must share one width")
        self.rows: Tuple[BitVector, ...] = tuple(tuple(r) for r in rows)
        self.num_lines = len(rows)
        self.width = width
        # Column b is a NOR over lines whose programmed word is 0 at b.
        self._nor_members: List[Tuple[int, ...]] = [
            tuple(
                line for line in range(self.num_lines) if self.rows[line][b] == 0
            )
            for b in range(width)
        ]

    @classmethod
    def from_mapping(cls, mapping: AddressMapping) -> "NORMatrix":
        """Program one row per decoder output from an address mapping."""
        return cls(mapping.table())

    def __repr__(self) -> str:
        return f"NORMatrix(lines={self.num_lines}, width={self.width})"

    # -- behavioural model -------------------------------------------------

    def output(self, line_vector: Sequence[int]) -> BitVector:
        """ROM outputs for an arbitrary word-line vector.

        >>> m = NORMatrix([(1, 0), (0, 1)])
        >>> m.output((1, 0))
        (1, 0)
        >>> m.output((0, 0))   # nothing selected -> all ones
        (1, 1)
        >>> m.output((1, 1))   # two lines -> AND of their words
        (0, 0)
        """
        if len(line_vector) != self.num_lines:
            raise ValueError(
                f"expected {self.num_lines} word lines, got {len(line_vector)}"
            )
        return tuple(
            0 if any(line_vector[line] for line in members) else 1
            for members in self._nor_members
        )

    def output_for_lines(self, active: Sequence[int]) -> BitVector:
        """ROM outputs given the indices of active word lines (sparse form)."""
        active_set = set(active)
        word = [1] * self.width
        for line in active_set:
            if not 0 <= line < self.num_lines:
                raise ValueError(f"line {line} out of range")
            for b in range(self.width):
                if self.rows[line][b] == 0:
                    word[b] = 0
        return tuple(word)

    # -- gate-level view ------------------------------------------------------

    def append_to_circuit(
        self, circuit: Circuit, line_nets: Sequence[int], name: str = "rom"
    ) -> List[int]:
        """Add one NOR gate per output column; returns the output nets.

        Columns whose programmed set is empty (every row has a 1 there)
        are constant-1 and realised with a CONST1 pseudo-gate, matching a
        ROM column with no transistors.
        """
        if len(line_nets) != self.num_lines:
            raise ValueError(
                f"expected {self.num_lines} line nets, got {len(line_nets)}"
            )
        outputs: List[int] = []
        for b, members in enumerate(self._nor_members):
            if members:
                net = circuit.add_gate(
                    GateType.NOR,
                    [line_nets[line] for line in members],
                    name=f"{name}_b{b}",
                )
            else:
                net = circuit.add_gate(
                    GateType.CONST1, (), name=f"{name}_b{b}_const"
                )
            outputs.append(net)
        return outputs


class CheckedDecoder:
    """A decoder tree with its checking NOR matrix — figure 3, one axis.

    Wraps a :class:`DecoderTree` and the ROM programmed from ``mapping``
    into a single gate-level circuit whose outputs are the ROM word (the
    word lines stay observable through :meth:`decode`).
    """

    def __init__(
        self,
        mapping: AddressMapping,
        name: str = "checked_decoder",
        decoder=None,
    ):
        """``decoder`` may be a prebuilt decoder (e.g. a
        :class:`~repro.decoder.flat.FlatDecoder`) exposing the
        DecoderTree interface; by default the §III.2 multilevel tree is
        built.  The decoder's circuit gains the ROM gates in place."""
        self.mapping = mapping
        self.n = mapping.n_bits
        if decoder is not None and decoder.n != self.n:
            raise ValueError(
                f"decoder covers {decoder.n} bits, mapping needs {self.n}"
            )
        self.tree = decoder or DecoderTree(self.n, name=f"{name}_tree")
        self.matrix = NORMatrix.from_mapping(mapping)
        self.circuit = self.tree.circuit
        self.rom_nets = self.matrix.append_to_circuit(
            self.circuit,
            [self.circuit.output_nets[i] for i in range(1 << self.n)],
            name=f"{name}_rom",
        )
        for b, net in enumerate(self.rom_nets):
            self.circuit.mark_output(net, name=f"rom{b}")
        self._num_lines = 1 << self.n

    def __repr__(self) -> str:
        return (
            f"CheckedDecoder(n={self.n}, code_width={self.matrix.width}, "
            f"gates={self.circuit.num_gates})"
        )

    def evaluate(
        self, address: int, faults=()
    ) -> Tuple[Tuple[int, ...], BitVector]:
        """(word lines, ROM word) for an address, optionally faulted."""
        if not 0 <= address < self._num_lines:
            raise ValueError(f"address {address} out of range")
        bits = [(address >> i) & 1 for i in range(self.n)]
        outs = self.circuit.evaluate(bits, faults=faults)
        return outs[: self._num_lines], outs[self._num_lines :]

    def rom_word(self, address: int, faults=()) -> BitVector:
        """Just the ROM word (what the q-out-of-r checker observes)."""
        return self.evaluate(address, faults=faults)[1]

    def expected_word(self, address: int) -> BitVector:
        """The fault-free ROM word (equals ``mapping.codeword(address)``)."""
        return self.mapping.codeword(address)
