"""Shared record statistics — one implementation, two containers.

Both :class:`repro.faultsim.results.CampaignResult` (the in-memory
campaign aggregate, kept as the compatibility surface) and
:class:`repro.results.ResultSet` (the serialisable, provenance-stamped
artifact) hold a list of records with the same observable shape —
``detected`` / ``first_detection`` / ``kind`` — so every statistic the
paper's figures draw on (coverage, detection-cycle moments, escape
fractions, latency histograms) lives here exactly once.

This module deliberately imports nothing from the rest of the package:
it sits below both containers in the layer graph.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["RecordStatistics"]


class RecordStatistics:
    """Mixin over ``self.records`` (+ ``cycles_simulated`` / ``engine``).

    A record must expose ``detected`` (bool), ``first_detection``
    (Optional[int]) and ``kind`` (str).  Containers provide ``_spawn()``
    returning an empty sibling carrying the same metadata (used by
    :meth:`by_kind` and the filter/group operations built on it).
    """

    # provided by the concrete containers (plain annotations on a
    # non-dataclass mixin: invisible to the subclasses' @dataclass
    # machinery, visible to the type checker).  ``engine`` is an
    # attribute on one container and a property on the other, so
    # :meth:`summary` reads it with ``getattr`` instead of pinning a
    # shape here.
    records: List
    cycles_simulated: int

    def _spawn(self) -> "RecordStatistics":
        raise NotImplementedError

    # -- counts --------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def detected(self) -> int:
        return sum(1 for r in self.records if r.detected)

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.records else 1.0

    def undetected(self) -> List:
        return [r for r in self.records if not r.detected]

    # -- detection-cycle statistics ------------------------------------------

    def detection_cycles(self) -> List[int]:
        return [r.first_detection for r in self.records if r.detected]

    def mean_detection_cycle(self) -> float:
        """NaN when nothing was detected (see :meth:`summary` for the
        JSON-safe ``None`` mapping)."""
        cycles = self.detection_cycles()
        return sum(cycles) / len(cycles) if cycles else math.nan

    def max_detection_cycle(self) -> Optional[int]:
        cycles = self.detection_cycles()
        return max(cycles) if cycles else None

    def detected_within(self, c: int) -> int:
        """Faults detected within the first ``c`` cycles (cycle < c)."""
        return sum(
            1 for r in self.records if r.detected and r.first_detection < c
        )

    def escape_fraction_at(self, c: int) -> float:
        """Fraction of faults still undetected after ``c`` cycles —
        the empirical counterpart of the paper's ``Pndc`` (averaged over
        the fault list rather than the worst site)."""
        if not self.records:
            return 0.0
        return 1.0 - self.detected_within(c) / self.total

    def latency_histogram(
        self, bins: Optional[List[int]] = None
    ) -> Dict[str, int]:
        """Counts of first-detection cycles in ranges (for the figures)."""
        if bins is None:
            bins = [1, 2, 5, 10, 20, 50, 100]
        edges = [0] + sorted(bins)
        hist: Dict[str, int] = {}
        for lo, hi in zip(edges, edges[1:]):
            label = f"[{lo},{hi})"
            hist[label] = sum(
                1
                for r in self.records
                if r.detected and lo <= r.first_detection < hi
            )
        last = edges[-1]
        hist[f"[{last},inf)"] = sum(
            1
            for r in self.records
            if r.detected and r.first_detection >= last
        )
        hist["undetected"] = self.total - self.detected
        return hist

    # -- grouping ------------------------------------------------------------

    def by_kind(self) -> Dict[str, "RecordStatistics"]:
        out: Dict[str, RecordStatistics] = {}
        for record in self.records:
            group = out.get(record.kind)
            if group is None:
                group = out[record.kind] = self._spawn()
            group.records.append(record)
        return out

    # -- the JSON-safe rollup ------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Strictly JSON-compliant: ``mean_detection_cycle`` is ``None``
        (JSON ``null``) on zero detections, never ``NaN`` — ``NaN``
        would make ``json.dumps`` emit non-compliant JSON."""
        mean = self.mean_detection_cycle()
        return {
            "faults": self.total,
            "detected": self.detected,
            "coverage": round(self.coverage, 6),
            "mean_detection_cycle": None if math.isnan(mean) else mean,
            "max_detection_cycle": self.max_detection_cycle(),
            "cycles_simulated": self.cycles_simulated,
            "engine": getattr(self, "engine", None),
        }
