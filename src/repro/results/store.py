"""`ResultStore` — content-addressed campaign cache on plain files.

The store maps a **campaign key** — the sha256 of the canonical JSON of
``(campaign family, target identity, scenario population, workload,
engine policy)`` — to a serialised :class:`~repro.results.resultset.
ResultSet`.  Identical re-runs are served from disk (and verified by
hash) instead of re-invoking the simulator; ``workers=N`` campaigns
additionally checkpoint per shard, so an interrupted campaign resumes
from its completed shards.

Layout (one directory, no database)::

    <root>/<key>.jsonl        the ResultSet, canonical JSONL
    <root>/<key>.meta.json    key material, summary, sha256, created_at
    <root>/reports/<key>.json cached DesignReport JSON (design flow)

A payload without its meta file is treated as absent (interrupted
writes never poison the cache); a payload whose bytes no longer hash to
the recorded sha256 raises :class:`ResultStoreError` — a hit is always
a *verified* hit.

Execution details that are proven result-invariant — ``workers`` (pool
sharding) and ``chunk`` (lane windows) — are deliberately **excluded**
from the key, so a re-run on different hardware still hits.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.results.resultset import ResultSet

__all__ = [
    "canonical_json",
    "content_digest",
    "campaign_key",
    "describe_target",
    "scenario_material",
    "workload_material",
    "StoreStats",
    "StoreEntry",
    "ResultStore",
    "ResultStoreError",
]


class ResultStoreError(RuntimeError):
    """A store artifact is corrupt or inconsistent with its metadata."""


# -- canonical hashing --------------------------------------------------------


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace, ``repr`` fallback
    for the rare non-JSON leaf (e.g. a Fraction inside key material)."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=repr
    )


def content_digest(payload: Union[str, bytes]) -> str:
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def campaign_key(material: dict) -> str:
    """The content address of one campaign: sha256 over the canonical
    JSON of its key material."""
    return content_digest(canonical_json(material))


# -- key material helpers -----------------------------------------------------


def _circuit_material(circuit) -> List[Tuple]:
    return [
        (gate.gate_type.value, tuple(gate.inputs), gate.output)
        for gate in circuit.gates
    ]


def describe_target(target: object) -> dict:
    """Structural identity of a simulated object, digest-sized.

    Exact for the built-in targets: a checked decoder keys on its gate
    network plus the full ROM programming, a self-checking memory on its
    organisation and both decoders, a behavioural RAM on organisation
    and parity config.  Unknown targets fall back to ``repr`` — override
    by giving the object a ``cache_material()`` method returning a
    JSON-able dict.
    """
    custom = getattr(target, "cache_material", None)
    if callable(custom):
        return {"type": type(target).__name__, "material": custom()}
    name = type(target).__name__
    # CheckedDecoder: gate network + ROM programming
    tree = getattr(target, "tree", None)
    mapping = getattr(target, "mapping", None)
    if tree is not None and mapping is not None:
        n_bits = mapping.n_bits
        return {
            "type": name,
            "n_bits": n_bits,
            "rom": [list(mapping.codeword(a)) for a in range(1 << n_bits)],
            "circuit": content_digest(
                canonical_json(_circuit_material(tree.circuit))
            ),
        }
    # SelfCheckingMemory: organisation + both checked decoders
    if hasattr(target, "row") and hasattr(target, "column"):
        return {
            "type": name,
            "organization": target.organization.label(),
            "row": describe_target(target.row),
            "column": describe_target(target.column),
        }
    # BehavioralRAM: organisation + parity configuration
    if hasattr(target, "with_parity") and hasattr(target, "organization"):
        parity = getattr(target, "parity_code", None)
        return {
            "type": name,
            "organization": target.organization.label(),
            "with_parity": bool(target.with_parity),
            "parity": repr(parity) if parity is not None else None,
        }
    # Checkers: type + observable shape
    if hasattr(target, "input_width"):
        return {
            "type": name,
            "input_width": target.input_width,
            "repr": _stable_repr(target),
        }
    return {"type": name, "repr": _stable_repr(target)}


def _stable_repr(target: object) -> str:
    """A repr safe to key on.

    The default ``<... object at 0x...>`` form is replaced by the class
    name plus the instance state (``vars``), so differently-configured
    custom targets never share a key — at worst an address buried in a
    nested default repr makes the key process-unique, which costs a
    cache miss, never a wrong hit.
    """
    text = repr(target)
    if " at 0x" not in text:
        return text
    state = getattr(target, "__dict__", None)
    if state:
        rendered = {name: repr(value) for name, value in state.items()}
        return f"{type(target).__name__}({canonical_json(rendered)})"
    return type(target).__name__


def scenario_material(descriptions: Sequence[str]) -> dict:
    """Digest form of a scenario population (kept small in metadata
    regardless of campaign size)."""
    return {
        "count": len(descriptions),
        "digest": content_digest(canonical_json(list(descriptions))),
    }


def workload_material(workload) -> dict:
    """Digest form of a workload (full dict never lands in the key, so
    million-address explicit traces stay cheap to key)."""
    spec = workload.to_dict()
    return {
        "label": workload.label(),
        "digest": content_digest(canonical_json(spec)),
        "cycles": len(workload),
    }


# -- the store ----------------------------------------------------------------


@dataclass
class StoreStats:
    """Per-instance cache counters (surfaced by the CLI's ``--json``)."""

    requests: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: hash-verified reads (every hit is verified unless verify=False)
    verified: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "verified": self.verified,
        }


@dataclass(frozen=True)
class StoreEntry:
    """One stored campaign, as ``repro results ls`` shows it."""

    key: str
    campaign: str
    faults: int
    coverage: Optional[float]
    cycles_simulated: Optional[int]
    engine: Optional[str]
    created_at: float
    size_bytes: int
    repro_version: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class ResultStore:
    """Content-addressed, hash-verified campaign artifact store."""

    root: str
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self):
        self.root = os.fspath(self.root)
        os.makedirs(self.root, exist_ok=True)

    @classmethod
    def coerce(cls, store) -> Optional["ResultStore"]:
        """The one ``store=`` normaliser every layer shares: ``None``
        passes through, an existing store is returned as-is, a path
        opens one."""
        if store is None or isinstance(store, cls):
            return store
        return cls(store)

    # -- paths ---------------------------------------------------------------

    def _payload_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.jsonl")

    def _meta_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.meta.json")

    def _report_path(self, key: str) -> str:
        return os.path.join(self.root, "reports", f"{key}.json")

    # -- core operations -----------------------------------------------------

    def contains(self, key: str) -> bool:
        return os.path.exists(self._meta_path(key)) and os.path.exists(
            self._payload_path(key)
        )

    def put(
        self,
        key: str,
        result_set: ResultSet,
        material: Optional[dict] = None,
    ) -> str:
        """Serialise and store under ``key``.

        Crash-safe protocol: retract the old meta first, replace the
        payload, then promote the new meta atomically — the meta file
        marks completeness, so a write interrupted at *any* point reads
        as a miss on the next run, never as a corrupt (or stale) hit.
        """
        payload = result_set.to_jsonl()
        payload_path = self._payload_path(key)
        meta_path = self._meta_path(key)
        # suppress, not exists+remove: two writers racing the same key
        # (shared-store runners, service job threads) may both see the
        # old meta and only one remove can win
        with contextlib.suppress(FileNotFoundError):
            os.remove(meta_path)
        # pid-unique temp names: concurrent writers of the same key
        # (sweep workers, parallel CI shards) each promote a complete
        # file instead of interleaving writes into a shared .tmp
        tmp_path = f"{payload_path}.{os.getpid()}.tmp"
        with open(tmp_path, "w") as handle:
            handle.write(payload)
        os.replace(tmp_path, payload_path)
        meta = {
            "key": key,
            "sha256": content_digest(payload),
            "material": material,
            "shard": (material or {}).get("shard"),
            "summary": result_set.summary(),
            "campaign": (
                result_set.provenance.campaign
                if result_set.provenance
                else ""
            ),
            "repro_version": (
                result_set.provenance.repro_version
                if result_set.provenance
                else ""
            ),
            "created_at": time.time(),
        }
        tmp_meta = f"{meta_path}.{os.getpid()}.tmp"
        with open(tmp_meta, "w") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_meta, meta_path)
        self.stats.puts += 1
        return key

    def payload(self, key: str, verify: bool = True) -> Optional[str]:
        """The raw JSONL payload, hash-verified like :meth:`get`.

        The read side the service layer streams from request threads:
        no :class:`ResultSet` parse, no re-serialisation — the stored
        bytes, verified against the recorded sha256.  Counted in
        :attr:`stats` exactly like ``get`` (it *is* ``get`` without the
        parse)."""
        self.stats.requests += 1
        if not self.contains(key):
            self.stats.misses += 1
            return None
        try:
            with open(self._meta_path(key)) as handle:
                meta = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # an unreadable meta is an incomplete write, not tampering
            self.stats.misses += 1
            return None
        with open(self._payload_path(key)) as handle:
            payload = handle.read()
        if verify:
            digest = content_digest(payload)
            if digest != meta.get("sha256"):
                raise ResultStoreError(
                    f"store entry {key[:12]}… failed hash verification "
                    f"(expected {meta.get('sha256')!r:.20}, got "
                    f"{digest!r:.20}) — the artifact was modified or "
                    f"truncated on disk"
                )
            self.stats.verified += 1
        self.stats.hits += 1
        return payload

    def get(self, key: str, verify: bool = True) -> Optional[ResultSet]:
        """The stored set, hash-verified against its metadata; ``None``
        on a miss, :class:`ResultStoreError` on corruption (a payload
        whose bytes no longer hash to the recorded sha256 — evidence of
        tampering, never of an interrupted write)."""
        payload = self.payload(key, verify=verify)
        if payload is None:
            return None
        return ResultSet.from_jsonl(payload)

    def meta(self, key: str) -> Optional[dict]:
        try:
            with open(self._meta_path(key)) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def delete(self, key: str) -> bool:
        removed = False
        for path in (self._payload_path(key), self._meta_path(key)):
            if os.path.exists(path):
                os.remove(path)
                removed = True
        return removed

    def load_or_run(
        self,
        material: dict,
        runner: Callable[[], ResultSet],
        cache: bool = True,
    ) -> Tuple[ResultSet, bool, str]:
        """(result, was_hit, key): serve from disk when ``cache`` and the
        key exists, otherwise run and store (a ``cache=False`` run still
        refreshes the entry)."""
        key = campaign_key(material)
        if cache:
            cached = self.get(key)
            if cached is not None:
                return cached, True, key
        result = runner()
        self.put(key, result, material)
        return result, False, key

    # -- listing / resolution ------------------------------------------------

    def keys(self, include_shards: bool = False) -> List[str]:
        """Stored campaign keys.  Shard checkpoints — the internal
        resume artifacts ``workers=N`` runs leave behind — are hidden
        unless ``include_shards``."""
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".meta.json"):
                continue
            key = name[: -len(".meta.json")]
            if not include_shards:
                meta = self.meta(key)
                if meta is not None and meta.get("shard"):
                    continue
            out.append(key)
        return out

    def entries(self) -> List[StoreEntry]:
        entries = []
        for key in self.keys():
            meta = self.meta(key)
            if meta is None:
                continue
            summary = meta.get("summary") or {}
            try:
                size = os.path.getsize(self._payload_path(key))
            except OSError:
                size = 0
            entries.append(
                StoreEntry(
                    key=key,
                    campaign=meta.get("campaign", ""),
                    faults=summary.get("faults", 0),
                    coverage=summary.get("coverage"),
                    cycles_simulated=summary.get("cycles_simulated"),
                    engine=summary.get("engine"),
                    created_at=meta.get("created_at", 0.0),
                    size_bytes=size,
                    repro_version=meta.get("repro_version", ""),
                )
            )
        return entries

    def report_keys(self) -> List[str]:
        """Keys of the design-report side table (see
        :meth:`put_report`)."""
        reports_dir = os.path.join(self.root, "reports")
        if not os.path.isdir(reports_dir):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(reports_dir)
            if name.endswith(".json")
        )

    def usage(self) -> dict:
        """Size/occupancy counters for ``repro store stats``: campaign
        and shard entries, report side-table entries, payload bytes and
        the total on-disk footprint of the store directory."""
        campaigns = self.keys()
        all_keys = self.keys(include_shards=True)
        payload_bytes = 0
        for key in all_keys:
            with contextlib.suppress(OSError):
                payload_bytes += os.path.getsize(self._payload_path(key))
        reports = self.report_keys()
        report_bytes = 0
        for key in reports:
            with contextlib.suppress(OSError):
                report_bytes += os.path.getsize(self._report_path(key))
        total_bytes = 0
        for base, _dirs, names in os.walk(self.root):
            for name in names:
                with contextlib.suppress(OSError):
                    total_bytes += os.path.getsize(
                        os.path.join(base, name)
                    )
        return {
            "root": self.root,
            "campaigns": len(campaigns),
            "shards": len(all_keys) - len(campaigns),
            "reports": len(reports),
            "payload_bytes": payload_bytes,
            "report_bytes": report_bytes,
            "total_bytes": total_bytes,
        }

    # -- verification sweep --------------------------------------------------

    def verify_entry(self, key: str) -> Optional[str]:
        """``None`` when the entry's payload hashes to its recorded
        sha256, else a one-line diagnostic (never raises — this is the
        sweep primitive behind ``repro store verify``)."""
        meta = self.meta(key)
        if meta is None:
            return f"{key}: metadata missing or unreadable"
        payload_path = self._payload_path(key)
        try:
            with open(payload_path) as handle:
                payload = handle.read()
        except OSError:
            return f"{key}: payload missing or unreadable"
        digest = content_digest(payload)
        if digest != meta.get("sha256"):
            return (
                f"{key}: sha256 mismatch (expected "
                f"{str(meta.get('sha256'))[:12]}…, got {digest[:12]}…)"
            )
        return None

    def verify_all(self) -> dict:
        """Hash-verify every artifact — campaign payloads, shard
        checkpoints and report side-table entries — and report the
        failures (``repro store verify`` exits 2 when any)."""
        failures: List[str] = []
        keys = self.keys(include_shards=True)
        for key in keys:
            issue = self.verify_entry(key)
            if issue is not None:
                failures.append(issue)
        reports = self.report_keys()
        for key in reports:
            try:
                if self.get_report(key) is None:
                    failures.append(f"report {key}: unreadable")
            except ResultStoreError as exc:
                failures.append(f"report {key}: {exc}")
        return {
            "root": self.root,
            "checked": len(keys) + len(reports),
            "entries": len(keys),
            "reports": len(reports),
            "failures": failures,
            "ok": not failures,
        }

    def resolve(self, prefix: str) -> str:
        """A unique full key from a human-typed prefix.

        Raises ``LookupError`` (not ``KeyError``, whose ``str`` form
        quotes the message) so the CLI surfaces it cleanly.
        """
        matches = [key for key in self.keys() if key.startswith(prefix)]
        if not matches:
            raise LookupError(
                f"no store entry matches {prefix!r} in {self.root}"
            )
        if len(matches) > 1:
            raise LookupError(
                f"{prefix!r} is ambiguous: "
                f"{', '.join(m[:12] + '…' for m in matches)}"
            )
        return matches[0]

    # -- design-report side table --------------------------------------------

    def put_report(self, key: str, report_dict: dict) -> str:
        """Store a report dict, content-hashed like the campaign
        payloads (atomic replace; counted in :attr:`stats`)."""
        os.makedirs(os.path.join(self.root, "reports"), exist_ok=True)
        path = self._report_path(key)
        envelope = {
            "format": 1,
            "sha256": content_digest(canonical_json(report_dict)),
            "report": report_dict,
        }
        tmp_path = f"{path}.{os.getpid()}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(envelope, handle, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
        self.stats.puts += 1
        return key

    def get_report(self, key: str, verify: bool = True) -> Optional[dict]:
        """The stored report dict, hash-verified; ``None`` on a miss.

        Report hits count in :attr:`stats` exactly like campaign hits,
        so a resumed design sweep is observable as requests == hits.
        Pre-1.5 entries (raw dicts without the hash envelope) are still
        served, as unverified hits.
        """
        self.stats.requests += 1
        path = self._report_path(key)
        if not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        if not isinstance(data, dict) or "report" not in data:
            self.stats.hits += 1
            return data
        report = data["report"]
        if verify:
            digest = content_digest(canonical_json(report))
            if digest != data.get("sha256"):
                raise ResultStoreError(
                    f"report entry {key[:12]}… failed hash verification "
                    f"(expected {data.get('sha256')!r:.20}, got "
                    f"{digest!r:.20})"
                )
            self.stats.verified += 1
        self.stats.hits += 1
        return report
