"""`ResultSet` — the provenance-stamped, serialisable campaign artifact.

The 1.4 results API: every campaign producer emits (or can be viewed
as) a :class:`ResultSet`, whose records are plain JSON-able values —
the fault's printable identity, its routing kind, the first-error and
first-detection cycles — stamped with a :class:`Provenance` describing
exactly what produced them (design spec, scenario population, workload,
engine policy, repro version).

Three properties the in-memory :class:`~repro.faultsim.results.
CampaignResult` never had:

* **lossless streaming serialisation** — :meth:`ResultSet.write_jsonl` /
  :meth:`ResultSet.read_jsonl` round-trip records, provenance and
  summary bit-identically, one JSON line per record, so million-record
  campaigns stream to disk in constant memory (see
  :class:`ResultSetWriter` for the producer-side streaming handle);
* **algebra** — :meth:`merge`, :meth:`filter`, :meth:`group_by` and
  :meth:`diff` make cross-run comparisons (packed vs serial, code A vs
  code B, workload sweeps) one-liners;
* **content-addressability** — the canonical JSONL form is what
  :class:`repro.results.store.ResultStore` hashes and verifies.

``CampaignResult`` remains the compatibility view: ``to_campaign()`` /
``CampaignResult.to_result_set()`` convert both ways (fault objects
flatten to their printable identity on the way in).
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.results.stats import RecordStatistics

__all__ = [
    "Provenance",
    "ResultRecord",
    "ResultSet",
    "ResultSetWriter",
    "ResultDiff",
    "fault_id",
]

#: JSONL container format tag + revision
FORMAT_NAME = "repro-results"
FORMAT_VERSION = 1

_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def _repro_version() -> str:
    from repro import __version__

    return __version__


def fault_id(fault: object) -> str:
    """The stable printable identity records carry.

    Scenarios use their ``describe()`` string, everything else its
    ``repr`` — both deterministic across processes, so identical
    campaigns serialise identically.
    """
    if isinstance(fault, str):
        return fault
    describe = getattr(fault, "describe", None)
    if callable(describe):
        return describe()
    return repr(fault)


@dataclass(frozen=True)
class Provenance:
    """What produced a group of records — enough to re-run or audit them.

    ``workload_spec`` / ``spec`` carry the full JSON forms when they are
    reasonably small (the generator workloads and design specs always
    are); huge explicit traces degrade to their label + digest, which
    still keys the store exactly.
    """

    #: campaign family: 'decoder' | 'scheme' | 'transient' | 'march' | ...
    campaign: str = ""
    #: engine policy that produced the records
    engine: Optional[str] = None
    collapse: Optional[bool] = None
    #: human label of the driving workload (e.g. ``uniform(64, 256, ...)``)
    workload: Optional[str] = None
    #: full Workload.to_dict() when compact enough to embed
    workload_spec: Optional[dict] = None
    scenario_count: Optional[int] = None
    #: sha256 over the canonical scenario descriptions
    scenario_digest: Optional[str] = None
    #: sha256 over the simulated target's structural identity
    target_digest: Optional[str] = None
    #: DesignSpec.to_dict() when the campaign came from a design flow
    spec: Optional[dict] = None
    repro_version: str = ""
    #: content-addressed store key, when the campaign was keyed
    key: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            k: v
            for k, v in dataclasses.asdict(self).items()
            if v is not None and v != ""
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Provenance":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown Provenance fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class ResultRecord:
    """One fault scenario's campaign outcome, fully serialisable.

    The record-level counterpart of
    :class:`~repro.faultsim.results.FaultRecord` with the live fault
    object flattened to its printable identity; ``provenance_index``
    points into the owning set's provenance table, so merged sets keep
    per-record lineage.
    """

    #: printable fault identity (see :func:`fault_id`)
    fault: str
    #: 'sa0' | 'sa1' | 'address' | 'memory' | 'rom' | 'transient' | ...
    kind: str
    first_detection: Optional[int] = None
    first_error: Optional[int] = None
    analytic_escape: Optional[float] = None
    provenance_index: int = 0

    @property
    def detected(self) -> bool:
        return self.first_detection is not None

    @property
    def latency(self) -> Optional[int]:
        """Cycles from first error to detection (0 = caught immediately)."""
        if self.first_detection is None or self.first_error is None:
            return None
        return self.first_detection - self.first_error

    def to_line_dict(self) -> dict:
        """Compact JSONL form (defaults omitted)."""
        line: Dict[str, object] = {"f": self.fault, "k": self.kind}
        if self.first_detection is not None:
            line["d"] = self.first_detection
        if self.first_error is not None:
            line["e"] = self.first_error
        if self.analytic_escape is not None:
            line["a"] = self.analytic_escape
        if self.provenance_index:
            line["p"] = self.provenance_index
        return line

    @classmethod
    def from_line_dict(cls, line: dict) -> "ResultRecord":
        return cls(
            fault=line["f"],
            kind=line["k"],
            first_detection=line.get("d"),
            first_error=line.get("e"),
            analytic_escape=line.get("a"),
            provenance_index=line.get("p", 0),
        )


@dataclass
class ResultSet(RecordStatistics):
    """Provenance-stamped records + the statistics of ``stats.py``."""

    records: List[ResultRecord] = field(default_factory=list)
    provenances: Tuple[Provenance, ...] = ()
    cycles_simulated: int = 0

    # -- provenance access ---------------------------------------------------

    @property
    def provenance(self) -> Optional[Provenance]:
        """The single provenance, when the set came from one run."""
        return self.provenances[0] if len(self.provenances) == 1 else None

    @property
    def engine(self) -> Optional[str]:
        engines = {p.engine for p in self.provenances}
        return engines.pop() if len(engines) == 1 else None

    def record_provenance(self, record: ResultRecord) -> Optional[Provenance]:
        if 0 <= record.provenance_index < len(self.provenances):
            return self.provenances[record.provenance_index]
        return None

    # -- construction --------------------------------------------------------

    def add(self, record: ResultRecord) -> None:
        self.records.append(record)

    def _spawn(self) -> "ResultSet":
        return ResultSet(
            records=[],
            provenances=self.provenances,
            cycles_simulated=self.cycles_simulated,
        )

    @classmethod
    def from_campaign(
        cls, result, provenance: Optional[Provenance] = None
    ) -> "ResultSet":
        """Flatten a :class:`CampaignResult` (fault objects become their
        printable identity)."""
        if provenance is None:
            provenance = getattr(result, "provenance", None) or Provenance(
                engine=result.engine, repro_version=_repro_version()
            )
        return cls(
            records=[
                ResultRecord(
                    fault=fault_id(r.fault),
                    kind=r.kind,
                    first_detection=r.first_detection,
                    first_error=r.first_error,
                    analytic_escape=r.analytic_escape,
                )
                for r in result.records
            ],
            provenances=(provenance,),
            cycles_simulated=result.cycles_simulated,
        )

    def to_campaign(self):
        """The :class:`CampaignResult` compatibility view (``fault`` is
        the printable identity string on this path)."""
        from repro.faultsim.results import CampaignResult, FaultRecord

        result = CampaignResult(
            records=[
                FaultRecord(
                    fault=r.fault,
                    kind=r.kind,
                    first_detection=r.first_detection,
                    first_error=r.first_error,
                    analytic_escape=r.analytic_escape,
                )
                for r in self.records
            ],
            cycles_simulated=self.cycles_simulated,
            engine=self.engine,
            provenance=self.provenance,
        )
        if self.provenance is not None:
            result.store_key = self.provenance.key
        return result

    # -- algebra -------------------------------------------------------------

    def merge(self, *others: "ResultSet") -> "ResultSet":
        """Union of several sets, per-record lineage preserved.

        Identical provenances deduplicate; record indexes are remapped.
        ``cycles_simulated`` keeps the common value, or the longest
        horizon when the runs differ.
        """
        provenances: List[Provenance] = []
        merged_records: List[ResultRecord] = []
        cycles = {self.cycles_simulated}
        for part in (self,) + others:
            cycles.add(part.cycles_simulated)
            remap: Dict[int, int] = {}
            for index, provenance in enumerate(part.provenances):
                if provenance in provenances:
                    remap[index] = provenances.index(provenance)
                else:
                    remap[index] = len(provenances)
                    provenances.append(provenance)
            for record in part.records:
                new_index = remap.get(record.provenance_index, 0)
                if new_index != record.provenance_index:
                    record = dataclasses.replace(
                        record, provenance_index=new_index
                    )
                merged_records.append(record)
        return ResultSet(
            records=merged_records,
            provenances=tuple(provenances),
            cycles_simulated=max(cycles),
        )

    def filter(
        self,
        predicate: Optional[Callable[[ResultRecord], bool]] = None,
        kind: Optional[str] = None,
        detected: Optional[bool] = None,
    ) -> "ResultSet":
        """Records matching a predicate and/or the field shortcuts."""
        out = self._spawn()
        for record in self.records:
            if kind is not None and record.kind != kind:
                continue
            if detected is not None and record.detected != detected:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.records.append(record)
        return out

    def group_by(
        self, key: Union[str, Callable[[ResultRecord], object]]
    ) -> Dict[object, "ResultSet"]:
        """Partition by a record attribute name or a key function."""
        key_fn = (
            (lambda record: getattr(record, key))
            if isinstance(key, str)
            else key
        )
        out: Dict[object, ResultSet] = {}
        for record in self.records:
            group_key = key_fn(record)
            group = out.get(group_key)
            if group is None:
                group = out[group_key] = self._spawn()
            group.records.append(record)
        return out

    def diff(self, other: "ResultSet") -> "ResultDiff":
        """Record-matched comparison against another run (by fault
        identity + kind; the cross-run one-liner for packed-vs-serial,
        code-vs-code and workload-sweep questions)."""
        return ResultDiff.between(self, other)

    # -- serialisation -------------------------------------------------------

    def _lines(self) -> Iterator[str]:
        yield json.dumps(
            {
                "format": FORMAT_NAME,
                "version": FORMAT_VERSION,
                "cycles_simulated": self.cycles_simulated,
            },
            **_COMPACT,
        )
        for provenance in self.provenances:
            yield json.dumps({"provenance": provenance.to_dict()}, **_COMPACT)
        for record in self.records:
            yield json.dumps(record.to_line_dict(), **_COMPACT)

    def to_jsonl(self) -> str:
        return "\n".join(self._lines()) + "\n"

    def write_jsonl(self, target: Union[str, "os.PathLike", io.TextIOBase]):
        """Stream to a path or open text handle, one line at a time —
        constant memory beyond the records already held."""
        if hasattr(target, "write"):
            for line in self._lines():
                target.write(line + "\n")
            return
        with open(target, "w") as handle:
            self.write_jsonl(handle)

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "ResultSet":
        header: Optional[dict] = None
        provenances: List[Provenance] = []
        records: List[ResultRecord] = []
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            data = json.loads(raw)
            if header is None:
                if data.get("format") != FORMAT_NAME:
                    raise ValueError(
                        f"not a {FORMAT_NAME} stream: first line {data!r}"
                    )
                if data.get("version") != FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported {FORMAT_NAME} version "
                        f"{data.get('version')!r}"
                    )
                header = data
            elif "provenance" in data:
                provenances.append(Provenance.from_dict(data["provenance"]))
            else:
                records.append(ResultRecord.from_line_dict(data))
        if header is None:
            raise ValueError("empty result stream")
        return cls(
            records=records,
            provenances=tuple(provenances),
            cycles_simulated=header.get("cycles_simulated", 0),
        )

    @classmethod
    def from_jsonl(cls, text: Union[str, bytes]) -> "ResultSet":
        if isinstance(text, bytes):
            text = text.decode("utf-8")
        return cls.from_lines(text.splitlines())

    @classmethod
    def read_jsonl(cls, path: Union[str, "os.PathLike"]) -> "ResultSet":
        with open(path) as handle:
            return cls.from_lines(handle)


class ResultSetWriter:
    """Producer-side streaming writer: header + provenance up front,
    then one line per :meth:`add` — a million-record campaign never
    materialises in memory.

    >>> # with ResultSetWriter(path, provenance, cycles) as writer:
    >>> #     for record in campaign_records():
    >>> #         writer.add(record)
    """

    def __init__(
        self,
        path: Union[str, "os.PathLike"],
        provenance: Union[Provenance, Iterable[Provenance]],
        cycles_simulated: int = 0,
    ):
        self.path = path
        if isinstance(provenance, Provenance):
            provenance = (provenance,)
        self.provenances = tuple(provenance)
        self.cycles_simulated = cycles_simulated
        self.count = 0
        self._handle: Optional[io.TextIOBase] = None

    def __enter__(self) -> "ResultSetWriter":
        self._handle = open(self.path, "w")
        header = ResultSet(
            records=[],
            provenances=self.provenances,
            cycles_simulated=self.cycles_simulated,
        )
        for line in header._lines():
            self._handle.write(line + "\n")
        return self

    def add(self, record: ResultRecord) -> None:
        if self._handle is None:
            raise RuntimeError("writer used outside its context")
        self._handle.write(
            json.dumps(record.to_line_dict(), **_COMPACT) + "\n"
        )
        self.count += 1

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class ResultDiff:
    """Structured comparison of two result sets, matched by fault
    identity + kind."""

    left_summary: Dict[str, object]
    right_summary: Dict[str, object]
    matched: int
    only_left: List[str]
    only_right: List[str]
    #: undetected on the left, detected on the right
    newly_detected: List[str]
    #: detected on the left, undetected on the right
    newly_undetected: List[str]
    #: detected on both but at a different cycle: (fault, left, right)
    detection_moved: List[Tuple[str, int, int]]
    coverage_delta: float

    @property
    def identical(self) -> bool:
        return not (
            self.only_left
            or self.only_right
            or self.newly_detected
            or self.newly_undetected
            or self.detection_moved
        )

    @staticmethod
    def _record_map(records) -> Dict[Tuple[str, str, int], "ResultRecord"]:
        """Match key per record: (fault, kind, occurrence index) — the
        occurrence index keeps duplicate fault entries (a legal campaign
        input) individually matched instead of silently collapsed."""
        seen: Dict[Tuple[str, str], int] = {}
        out: Dict[Tuple[str, str, int], ResultRecord] = {}
        for record in records:
            identity = (record.fault, record.kind)
            occurrence = seen.get(identity, 0)
            seen[identity] = occurrence + 1
            out[(record.fault, record.kind, occurrence)] = record
        return out

    @classmethod
    def between(cls, left: ResultSet, right: ResultSet) -> "ResultDiff":
        left_map = cls._record_map(left.records)
        right_map = cls._record_map(right.records)
        only_left = [
            fault for (fault, kind, occurrence) in left_map
            if (fault, kind, occurrence) not in right_map
        ]
        only_right = [
            fault for (fault, kind, occurrence) in right_map
            if (fault, kind, occurrence) not in left_map
        ]
        newly_detected: List[str] = []
        newly_undetected: List[str] = []
        moved: List[Tuple[str, int, int]] = []
        matched = 0
        for match_key, l_rec in left_map.items():
            r_rec = right_map.get(match_key)
            if r_rec is None:
                continue
            matched += 1
            # compare the Optional cycles directly so the type checker
            # sees the None checks the `detected` property hides
            l_cycle = l_rec.first_detection
            r_cycle = r_rec.first_detection
            if l_cycle is None and r_cycle is not None:
                newly_detected.append(l_rec.fault)
            elif l_cycle is not None and r_cycle is None:
                newly_undetected.append(l_rec.fault)
            elif (
                l_cycle is not None
                and r_cycle is not None
                and l_cycle != r_cycle
            ):
                moved.append((l_rec.fault, l_cycle, r_cycle))
        return cls(
            left_summary=left.summary(),
            right_summary=right.summary(),
            matched=matched,
            only_left=only_left,
            only_right=only_right,
            newly_detected=newly_detected,
            newly_undetected=newly_undetected,
            detection_moved=moved,
            coverage_delta=right.coverage - left.coverage,
        )

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["identical"] = self.identical
        data["detection_moved"] = [
            list(entry) for entry in self.detection_moved
        ]
        return data

    def render(self) -> str:
        out = io.StringIO()
        out.write(
            f"result diff — {self.matched} matched records, "
            f"coverage {self.left_summary['coverage']} -> "
            f"{self.right_summary['coverage']} "
            f"(delta {self.coverage_delta:+.6f})\n"
        )
        if self.identical:
            out.write("    identical outcomes record-by-record\n")
            return out.getvalue()
        for label, entries in (
            ("only left", self.only_left),
            ("only right", self.only_right),
            ("newly detected", self.newly_detected),
            ("newly undetected", self.newly_undetected),
        ):
            if entries:
                shown = ", ".join(entries[:5])
                more = f" (+{len(entries) - 5} more)" if len(entries) > 5 else ""
                out.write(f"    {label:<16}: {len(entries)} — {shown}{more}\n")
        if self.detection_moved:
            shown = ", ".join(
                f"{fault} {before}->{after}"
                for fault, before, after in self.detection_moved[:5]
            )
            more = (
                f" (+{len(self.detection_moved) - 5} more)"
                if len(self.detection_moved) > 5
                else ""
            )
            out.write(
                f"    detection moved : {len(self.detection_moved)} — "
                f"{shown}{more}\n"
            )
        return out.getvalue()
