"""`repro.results` — the unified results & artifact API (1.4).

Every campaign producer routes through this layer:

* :class:`ResultSet` — provenance-stamped records with lossless
  streaming JSONL round-trips and ``merge`` / ``filter`` / ``group_by``
  / ``diff`` algebra (:class:`ResultSetWriter` streams producer-side);
* :class:`Provenance` — what produced the records: design spec,
  scenario population, workload, engine policy, repro version;
* :class:`ResultStore` — content-addressed, hash-verified campaign
  cache keyed by :func:`campaign_key` over canonical
  ``(spec, scenarios, workload, engine-policy)`` material, with
  per-shard checkpoints for resumable ``workers=N`` campaigns.

:class:`repro.faultsim.results.CampaignResult` remains the in-memory
compatibility view; ``CampaignResult.to_result_set()`` and
``ResultSet.to_campaign()`` convert both ways.
"""

from repro.results.resultset import (
    Provenance,
    ResultDiff,
    ResultRecord,
    ResultSet,
    ResultSetWriter,
    fault_id,
)
from repro.results.store import (
    ResultStore,
    ResultStoreError,
    StoreEntry,
    StoreStats,
    campaign_key,
    canonical_json,
    content_digest,
    describe_target,
    scenario_material,
    workload_material,
)

__all__ = [
    "Provenance",
    "ResultRecord",
    "ResultSet",
    "ResultSetWriter",
    "ResultDiff",
    "fault_id",
    "ResultStore",
    "ResultStoreError",
    "StoreEntry",
    "StoreStats",
    "campaign_key",
    "canonical_json",
    "content_digest",
    "describe_target",
    "scenario_material",
    "workload_material",
]
