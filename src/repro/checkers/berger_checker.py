"""Berger code checker — recount the zeros and compare.

Structural sketch: a sorting network counts the 1s in the information part
(after sorting, bit ``i`` of the descending order is ``[weight > i]``, so
the zero count is readable as a thermometer code), and a comparator checks
it against the stored check field.  We implement the behavioural function
plus a gate-count estimate; the Berger checker only appears in this
library as the zero-latency endpoint's checker ([NIC 94] variant) and in
the §III.1 ablation, where its function — not its internal TSC structure —
is what the experiments exercise.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.checkers.base import Checker
from repro.circuits.parallel import popcount_lanes
from repro.codes.berger import BergerCode

__all__ = ["BergerChecker"]


class BergerChecker(Checker):
    """Behavioural checker for :class:`repro.codes.berger.BergerCode`.

    >>> chk = BergerChecker(3)
    >>> chk.accepts((0, 1, 0, 1, 0))   # two zeros, check field = 10
    True
    >>> chk.accepts((0, 1, 0, 0, 0))
    False
    """

    def __init__(self, info_bits: int):
        self.code = BergerCode(info_bits)
        self.input_width = self.code.length

    def indication(self, word: Sequence[int]) -> Tuple[int, int]:
        if len(word) != self.input_width:
            raise ValueError(
                f"expected {self.input_width} bits, got {len(word)}"
            )
        ok = self.code.is_codeword(tuple(word))
        return (1, 0) if ok else (1, 1)

    def accepts_packed(
        self, packed_word: Sequence[int], num_lanes: int
    ) -> int:
        """Lanes where the check field equals the information zero count.

        Carry-save popcount of the complemented information columns
        gives the zero count bit-sliced; the stored check field *is*
        already bit-sliced (MSB-first columns), so acceptance is a
        lane-wise equality of the two without unpacking.
        """
        self._validate_packed(packed_word)
        mask = (1 << num_lanes) - 1
        info = packed_word[: self.code.info_bits]
        check = packed_word[self.code.info_bits :]
        zeros = popcount_lanes([~column & mask for column in info], mask)
        width = len(check)
        acc = mask
        for j in range(width):  # zero count always fits in the field
            counted = zeros[j] if j < len(zeros) else 0
            stored = check[width - 1 - j]  # check field is MSB-first
            acc &= ~(counted ^ stored) & mask
        return acc

    def gate_count_estimate(self) -> int:
        """Rough structural cost: ones-counter (adder tree) + comparator.

        A population counter over ``k`` bits costs about ``k`` full adders
        (~5 gates each); the equality comparator over ``ceil(log2(k+1))``
        bits costs one XNOR per bit plus an AND tree.
        """
        k = self.code.info_bits
        chk = self.code.check_bits
        return 5 * k + 2 * chk
