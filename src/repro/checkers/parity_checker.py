"""Self-checking parity checker — the data-path checker of figure 3.

Classic construction: split the observed word (data + parity bit) into
two non-empty groups, XOR-reduce each, and emit the two group parities as
the error-indication rails.  For an even-parity code word the group
parities are equal, so one rail is inverted to produce a valid two-rail
pair; any odd error flips exactly one group parity and lands the
indication on 00/11.  Faults inside either XOR tree flip one rail only,
so the checker is self-testing under normal (code-word) traffic.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.checkers.base import Checker
from repro.circuits.builders import xor_tree
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.parallel import xor_fold_lanes

__all__ = ["ParityChecker"]


class ParityChecker(Checker):
    """Two-rail parity checker over ``width`` observed bits.

    ``even=True`` accepts words with an even number of 1s (the default
    matches :class:`repro.codes.parity.ParityCode`).

    >>> chk = ParityChecker(4)
    >>> chk.accepts((1, 0, 1, 0))
    True
    >>> chk.accepts((1, 0, 0, 0))
    False
    """

    def __init__(self, width: int, even: bool = True):
        if width < 2:
            raise ValueError(
                f"parity checker needs >= 2 observed bits, got {width}"
            )
        self.input_width = width
        self.even = even
        self.circuit = Circuit(f"parity_checker_{width}")
        nets = self.circuit.add_inputs([f"d{i}" for i in range(width)])
        half = width // 2
        group_a = xor_tree(self.circuit, nets[:half], name="pa")
        group_b = xor_tree(self.circuit, nets[half:], name="pb")
        if even:
            # Code words have equal group parities: invert one rail.
            group_b = self.circuit.add_gate(
                GateType.NOT, (group_b,), name="pb_n"
            )
        self.circuit.mark_output(group_a, "z1")
        self.circuit.mark_output(group_b, "z2")

    def indication(self, word: Sequence[int]) -> Tuple[int, int]:
        if len(word) != self.input_width:
            raise ValueError(
                f"expected {self.input_width} bits, got {len(word)}"
            )
        z1, z2 = self.circuit.evaluate(list(word))
        return z1, z2

    def accepts_packed(
        self, packed_word: Sequence[int], num_lanes: int
    ) -> int:
        """Lanes with the accepted total parity, via one XOR fold.

        The two-group construction accepts exactly the words of even
        (resp. odd) total parity, so the packed form is a lane-wise
        parity of all observed columns.
        """
        self._validate_packed(packed_word)
        mask = (1 << num_lanes) - 1
        fold = xor_fold_lanes(packed_word) & mask
        return ~fold & mask if self.even else fold
