"""Checker interface and the shared error-indication convention.

Every checker in this library emits a **two-rail error indication**
``(z1, z2)``: the observed word is accepted iff ``z1 != z2``.  This is the
classical self-checking convention — a valid indication is a 1-out-of-2
code word, so single faults inside the checker itself cannot silently
produce "accept" for every input (the property the TSC literature calls
code-disjointness; :mod:`repro.checkers.properties` verifies it
exhaustively for our gate-level checkers).
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

__all__ = ["Checker", "indication_valid"]


def indication_valid(indication: Sequence[int]) -> bool:
    """True iff a two-rail error indication signals 'code word accepted'.

    >>> indication_valid((0, 1))
    True
    >>> indication_valid((1, 1))
    False
    """
    if len(indication) != 2:
        raise ValueError(
            f"two-rail indication must have 2 rails, got {len(indication)}"
        )
    return indication[0] != indication[1]


class Checker(abc.ABC):
    """A concurrent checker for one code."""

    #: number of observed input bits
    input_width: int

    @abc.abstractmethod
    def indication(self, word: Sequence[int]) -> Tuple[int, int]:
        """Two-rail indication for an observed word."""

    def accepts(self, word: Sequence[int]) -> bool:
        """Convenience: True iff the indication is valid (word accepted)."""
        return indication_valid(self.indication(word))

    def _validate_packed(self, packed_word: Sequence[int]) -> None:
        """Arity guard shared by every ``accepts_packed`` implementation."""
        if len(packed_word) != self.input_width:
            raise ValueError(
                f"expected {self.input_width} packed bit columns, "
                f"got {len(packed_word)}"
            )

    def accepts_packed(
        self, packed_word: Sequence[int], num_lanes: int
    ) -> int:
        """Lane-parallel acceptance over bit-packed observations.

        ``packed_word[b] >> k & 1`` is bit ``b`` of the word observed in
        lane ``k`` (the :mod:`repro.circuits.parallel` convention);
        returns a lane-word whose bit ``k`` is 1 iff that lane's word is
        accepted.  This generic implementation unpacks and defers to
        :meth:`accepts`, so every checker — including plugins — is
        packed-campaign compatible; the built-in checkers override it
        with lane-wise bit tricks that never unpack.
        """
        self._validate_packed(packed_word)
        acc = 0
        for lane in range(num_lanes):
            word = tuple((column >> lane) & 1 for column in packed_word)
            if self.accepts(word):
                acc |= 1 << lane
        return acc
