"""Checker interface and the shared error-indication convention.

Every checker in this library emits a **two-rail error indication**
``(z1, z2)``: the observed word is accepted iff ``z1 != z2``.  This is the
classical self-checking convention — a valid indication is a 1-out-of-2
code word, so single faults inside the checker itself cannot silently
produce "accept" for every input (the property the TSC literature calls
code-disjointness; :mod:`repro.checkers.properties` verifies it
exhaustively for our gate-level checkers).
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

__all__ = ["Checker", "indication_valid"]


def indication_valid(indication: Sequence[int]) -> bool:
    """True iff a two-rail error indication signals 'code word accepted'.

    >>> indication_valid((0, 1))
    True
    >>> indication_valid((1, 1))
    False
    """
    if len(indication) != 2:
        raise ValueError(
            f"two-rail indication must have 2 rails, got {len(indication)}"
        )
    return indication[0] != indication[1]


class Checker(abc.ABC):
    """A concurrent checker for one code."""

    #: number of observed input bits
    input_width: int

    @abc.abstractmethod
    def indication(self, word: Sequence[int]) -> Tuple[int, int]:
        """Two-rail indication for an observed word."""

    def accepts(self, word: Sequence[int]) -> bool:
        """Convenience: True iff the indication is valid (word accepted)."""
        return indication_valid(self.indication(word))
