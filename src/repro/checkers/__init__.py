"""Self-checking checkers and their property verifiers."""

from repro.checkers.base import Checker, indication_valid
from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import (
    MOutOfNChecker,
    build_sorting_network,
)
from repro.checkers.parity_checker import ParityChecker
from repro.checkers.properties import (
    is_code_disjoint,
    is_fault_secure,
    is_self_testing,
    undetected_checker_faults,
)
from repro.checkers.two_rail_checker import (
    TwoRailChecker,
    build_two_rail_tree,
    two_rail_cell,
)

__all__ = [
    "Checker",
    "indication_valid",
    "ParityChecker",
    "MOutOfNChecker",
    "build_sorting_network",
    "BergerChecker",
    "TwoRailChecker",
    "build_two_rail_tree",
    "two_rail_cell",
    "is_code_disjoint",
    "is_fault_secure",
    "is_self_testing",
    "undetected_checker_faults",
]
