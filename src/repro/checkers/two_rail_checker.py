"""Totally self-checking two-rail checker (TRC) modules and trees.

The classical TRC cell compresses two rail pairs into one::

    f = a1·a2 + b1·b2        g = a1·b2 + a2·b1

For valid inputs (``bi = ~ai``) this yields ``f = XNOR(a1, a2)`` and
``g = XOR(a1, a2)`` — a valid pair.  Any non-complementary input pair, and
any single internal stuck-at under some valid input, drives the output
off the 1-out-of-2 code.  A balanced tree of cells reduces ``k`` pairs to
the final error indication; it is the last stage of every checker in the
paper's figure 3.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.checkers.base import Checker
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

__all__ = ["two_rail_cell", "build_two_rail_tree", "TwoRailChecker"]


def two_rail_cell(
    circuit: Circuit,
    pair_a: Tuple[int, int],
    pair_b: Tuple[int, int],
    name: str = "trc",
) -> Tuple[int, int]:
    """Add one TRC cell (4 AND + 2 OR) to ``circuit``; returns (f, g) nets."""
    a1, b1 = pair_a
    a2, b2 = pair_b
    t1 = circuit.add_gate(GateType.AND, (a1, a2), name=f"{name}_a1a2")
    t2 = circuit.add_gate(GateType.AND, (b1, b2), name=f"{name}_b1b2")
    t3 = circuit.add_gate(GateType.AND, (a1, b2), name=f"{name}_a1b2")
    t4 = circuit.add_gate(GateType.AND, (a2, b1), name=f"{name}_a2b1")
    f = circuit.add_gate(GateType.OR, (t1, t2), name=f"{name}_f")
    g = circuit.add_gate(GateType.OR, (t3, t4), name=f"{name}_g")
    return f, g


def build_two_rail_tree(
    circuit: Circuit,
    pairs: Sequence[Tuple[int, int]],
    name: str = "trtree",
) -> Tuple[int, int]:
    """Reduce rail pairs to a single pair with a balanced tree of TRC cells."""
    layer: List[Tuple[int, int]] = list(pairs)
    if not layer:
        raise ValueError("two-rail tree needs at least one input pair")
    level = 0
    while len(layer) > 1:
        nxt: List[Tuple[int, int]] = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(
                two_rail_cell(
                    circuit,
                    layer[i],
                    layer[i + 1],
                    name=f"{name}_l{level}_{i // 2}",
                )
            )
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        level += 1
    return layer[0]


class TwoRailChecker(Checker):
    """Gate-level checker for the two-rail code of ``pairs`` rail pairs.

    >>> chk = TwoRailChecker(3)
    >>> chk.accepts((0, 1, 1, 0, 0, 1))
    True
    >>> chk.accepts((0, 1, 1, 1, 0, 1))
    False
    """

    def __init__(self, pairs: int):
        if pairs < 1:
            raise ValueError(f"pairs must be >= 1, got {pairs}")
        self.pairs = pairs
        self.input_width = 2 * pairs
        self.circuit = Circuit(f"two_rail_checker_{pairs}")
        nets = self.circuit.add_inputs(
            [f"p{i}_{rail}" for i in range(pairs) for rail in ("a", "b")]
        )
        pair_nets = [(nets[2 * i], nets[2 * i + 1]) for i in range(pairs)]
        f, g = build_two_rail_tree(self.circuit, pair_nets)
        self.circuit.mark_output(f, "z1")
        self.circuit.mark_output(g, "z2")

    def indication(self, word: Sequence[int]) -> Tuple[int, int]:
        if len(word) != self.input_width:
            raise ValueError(
                f"expected {self.input_width} bits, got {len(word)}"
            )
        z1, z2 = self.circuit.evaluate(list(word))
        return z1, z2

    def accepts_packed(
        self, packed_word: Sequence[int], num_lanes: int
    ) -> int:
        """Lanes where every rail pair is complementary.

        The TRC cell is code-disjoint, so the tree accepts exactly the
        words whose pairs are all complementary: a lane-wise AND over
        per-pair XORs, no unpacking.
        """
        self._validate_packed(packed_word)
        mask = (1 << num_lanes) - 1
        acc = mask
        for i in range(self.pairs):
            acc &= packed_word[2 * i] ^ packed_word[2 * i + 1]
            if not acc:
                break
        return acc & mask
