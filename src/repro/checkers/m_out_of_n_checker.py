"""m-out-of-n checker — verifies the decoder-check ROM outputs (fig. 3).

Structural realisation: a **sorting network** over the r observed bits
using AND/OR comparators (max/min of two bits), descending order.  After
sorting, ``sorted[m-1] = [weight >= m]`` and ``sorted[m] = [weight >= m+1]``,
so the pair ``(sorted[m-1], sorted[m])`` is

* ``(1, 0)`` — valid two-rail pair — iff the weight is exactly ``m``,
* ``(0, 0)`` when the weight is below ``m``,
* ``(1, 1)`` when it is above.

The network is code-disjoint by construction (it computes exact weight
thresholds); :mod:`repro.checkers.properties` verifies code-disjointness
and self-testing exhaustively for the sizes used by the paper's tables.
A behavioural fast path (popcount) backs the fault-injection campaigns,
where the checker is assumed fault-free and only its *function* matters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.checkers.base import Checker
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit
from repro.circuits.parallel import lanes_equal_const, popcount_lanes

__all__ = ["MOutOfNChecker", "build_sorting_network", "build_bitonic_sorter"]


def _compare_exchange(
    circuit: Circuit, hi_net: int, lo_net: int, name: str
) -> Tuple[int, int]:
    """(max, min) of two bits: OR gives the larger, AND the smaller."""
    mx = circuit.add_gate(GateType.OR, (hi_net, lo_net), name=f"{name}_mx")
    mn = circuit.add_gate(GateType.AND, (hi_net, lo_net), name=f"{name}_mn")
    return mx, mn


def build_sorting_network(
    circuit: Circuit, nets: Sequence[int], name: str = "sort"
) -> List[int]:
    """Sort bit nets into descending order (index 0 = largest).

    Odd-even transposition network: ``n`` rounds of adjacent
    compare-exchanges, ``O(n^2)`` comparators of 2 gates each.  For the
    paper's widest code (r = 18) that is ~300 comparators — negligible
    next to the ROM, matching the paper's "checker area is insignificant".
    """
    bits = list(nets)
    n = len(bits)
    if n == 0:
        raise ValueError("cannot sort zero nets")
    for rnd in range(n):
        start = rnd % 2
        for i in range(start, n - 1, 2):
            mx, mn = _compare_exchange(
                circuit, bits[i], bits[i + 1], name=f"{name}_r{rnd}_{i}"
            )
            bits[i], bits[i + 1] = mx, mn
    return bits


#: Backwards-compatible alias (the first release used a Batcher sorter).
build_bitonic_sorter = build_sorting_network


class MOutOfNChecker(Checker):
    """Checker for the m-out-of-n code.

    >>> chk = MOutOfNChecker(2, 4)
    >>> chk.accepts((1, 0, 1, 0))
    True
    >>> chk.accepts((1, 1, 1, 0))
    False
    >>> chk.accepts((0, 0, 0, 0))
    False
    """

    def __init__(self, m: int, n: int, structural: bool = True):
        if not 0 < m < n:
            raise ValueError(f"need 0 < m < n, got m={m}, n={n}")
        self.m = m
        self.n = n
        self.input_width = n
        self.structural = structural
        self.circuit = None
        if structural:
            self.circuit = Circuit(f"checker_{m}_of_{n}")
            nets = self.circuit.add_inputs([f"x{i}" for i in range(n)])
            sorted_nets = build_sorting_network(self.circuit, nets)
            # sorted[m-1] == [weight >= m]; sorted[m] == [weight >= m+1]
            self.circuit.mark_output(sorted_nets[m - 1], "z1")
            self.circuit.mark_output(sorted_nets[m], "z2")

    def __repr__(self) -> str:
        mode = "structural" if self.structural else "behavioural"
        return f"MOutOfNChecker({self.m}-out-of-{self.n}, {mode})"

    def indication(self, word: Sequence[int]) -> Tuple[int, int]:
        if len(word) != self.input_width:
            raise ValueError(
                f"expected {self.input_width} bits, got {len(word)}"
            )
        if self.structural:
            z1, z2 = self.circuit.evaluate(list(word))
            return z1, z2
        weight = sum(word)
        return (1 if weight >= self.m else 0, 1 if weight >= self.m + 1 else 0)

    def accepts_packed(
        self, packed_word: Sequence[int], num_lanes: int
    ) -> int:
        """Lanes with weight exactly ``m``, via carry-save popcount.

        The sorting network computes exact weight thresholds, so this
        matches the structural realisation on *every* input word, not
        just code words (verified exhaustively by the test suite).
        """
        self._validate_packed(packed_word)
        mask = (1 << num_lanes) - 1
        slices = popcount_lanes(packed_word, mask)
        return lanes_equal_const(slices, self.m, mask)

    def gate_count(self) -> int:
        """Gates in the structural realisation (feeds the area model)."""
        if self.circuit is None:
            checker = MOutOfNChecker(self.m, self.n, structural=True)
            return checker.circuit.num_gates
        return self.circuit.num_gates
