"""Exhaustive verification of self-checking properties (§I definitions).

For a checker circuit ``K`` observing a code ``C``:

* **code-disjoint** — K maps code words to valid indications and non-code
  words to invalid indications (the indication space is the 1-out-of-2
  code: valid iff the two rails differ);
* **self-testing** (for a fault set F and input set equal to the code
  words) — every fault in F is detected by at least one code word, i.e.
  produces an invalid indication for some code-word input;
* **fault-secure** (for a functional block) — under any single fault in
  F, every produced output is either correct or a non-code word.

All three are decided by brute force over inputs and faults — exactly the
definitions, no approximation — which is feasible for the code widths of
the paper (r <= 18, checker circuits of a few hundred gates).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.checkers.base import indication_valid
from repro.circuits.faults import FaultBase, enumerate_stuck_at_faults
from repro.circuits.netlist import Circuit
from repro.codes.base import Code

__all__ = [
    "is_code_disjoint",
    "undetected_checker_faults",
    "is_self_testing",
    "is_fault_secure",
]


def is_code_disjoint(
    checker_circuit: Circuit,
    code: Code,
    report: bool = False,
):
    """Exhaustively verify the code-disjoint property of a checker circuit.

    The circuit must have ``code.length`` inputs and a 2-rail output.
    Returns bool, or (bool, counterexamples) with ``report=True``.
    """
    bad: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    members = set(code.words())
    from repro.utils.bitops import all_bit_vectors

    for vec in all_bit_vectors(code.length):
        indication = checker_circuit.evaluate(list(vec))
        ok = indication_valid(indication)
        if ok != (vec in members):
            bad.append((vec, indication))
    result = not bad
    return (result, bad) if report else result


def undetected_checker_faults(
    checker_circuit: Circuit,
    code_words: Iterable[Sequence[int]],
    faults: Sequence[FaultBase] = None,
) -> List[FaultBase]:
    """Faults never signalled by any code-word input.

    A fault is *detected* when some code word produces an invalid
    indication (the checker may also, harmlessly, reject... no: a checker
    under test is detected exactly by an invalid indication on a code
    word, since code words must map to valid indications).
    """
    words = [tuple(w) for w in code_words]
    if faults is None:
        faults = enumerate_stuck_at_faults(checker_circuit)
    missed: List[FaultBase] = []
    for fault in faults:
        detected = False
        for word in words:
            indication = checker_circuit.evaluate(list(word), faults=(fault,))
            if not indication_valid(indication):
                detected = True
                break
        if not detected:
            missed.append(fault)
    return missed


def is_self_testing(
    checker_circuit: Circuit,
    code_words: Iterable[Sequence[int]],
    faults: Sequence[FaultBase] = None,
) -> bool:
    """True iff every fault is detected by at least one code-word input."""
    return not undetected_checker_faults(checker_circuit, code_words, faults)


def is_fault_secure(
    circuit: Circuit,
    is_output_codeword: Callable[[Tuple[int, ...]], bool],
    input_vectors: Iterable[Sequence[int]],
    faults: Sequence[FaultBase] = None,
) -> bool:
    """True iff every faulty output is either correct or a non-code word.

    This is the fault-secure half of the TSC property, checked for a
    functional block (e.g. decoder + ROM) whose outputs are supposed to
    stay inside a code.
    """
    vectors = [list(v) for v in input_vectors]
    if faults is None:
        faults = enumerate_stuck_at_faults(circuit)
    golden = [tuple(circuit.evaluate(v)) for v in vectors]
    for fault in faults:
        for vec, good in zip(vectors, golden):
            out = tuple(circuit.evaluate(vec, faults=(fault,)))
            if out != good and is_output_codeword(out):
                return False
    return True
