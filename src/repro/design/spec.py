"""`DesignSpec` — one frozen, validated, JSON-round-trippable design problem.

A spec is the declarative input of the design flow: the memory
organisation, the on-line test requirement (c, Pndc), the sizing policy,
and the implementation knobs (checker style, decoder style, column
treatment).  Everything the engine needs, nothing it derives.

>>> spec = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)
>>> spec.organization.label()
'16x2K'
>>> DesignSpec.from_json(spec.to_json()) == spec
True
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.selection import SelectionPolicy
from repro.memory.organization import MemoryOrganization

__all__ = ["DesignSpec", "CHECKER_STYLES"]

#: how the m-out-of-n checkers are realised
CHECKER_STYLES = ("behavioural", "structural")


@dataclass(frozen=True)
class DesignSpec:
    """Input of the paper's design flow, as one immutable value.

    Parameters
    ----------
    words, bits, column_mux
        The RAM organisation (see :class:`MemoryOrganization`).
    c, pndc
        The §III.2 requirement: detect decoder faults within ``c``
        cycles with escape probability at most ``pndc``.
    policy
        Sizing policy (exact ceil-bound or the paper's 1/a shortcut).
    column_zero_latency
        ``True`` (default): give the cheap column decoder a zero-latency
        identity mapping; ``False``: reuse the row code (the tables'
        convention).
    checker_style
        ``"behavioural"`` or ``"structural"`` m-out-of-n checkers.
    decoder_style
        Registered decoder style (``"tree"`` or ``"flat"``).
    row_code
        Optional explicit row code spec (e.g. ``"3-out-of-5"``) that
        bypasses the (c, Pndc) sizing — for table sweeps and ablations.
    workload
        Traffic the empirical measurement drives the row decoder with: a
        family name from :data:`repro.scenarios.NAMED_WORKLOADS`
        (``"uniform"``, ``"bursty"``, ...; resolved against the
        organisation at evaluation time), a full
        :class:`repro.scenarios.Workload` value (pins every parameter,
        serialises with the spec), or ``None`` for the default uniform
        stream.
    """

    words: int
    bits: int
    column_mux: int = 8
    c: int = 10
    pndc: float = 1e-9
    policy: SelectionPolicy = SelectionPolicy.EXACT
    column_zero_latency: bool = True
    checker_style: str = "behavioural"
    decoder_style: str = "tree"
    row_code: Optional[str] = None
    workload: Optional[object] = None

    def __post_init__(self):
        if isinstance(self.policy, str):
            object.__setattr__(self, "policy", SelectionPolicy(self.policy))
        if self.workload is not None:
            from repro.scenarios.workload import (
                NAMED_WORKLOADS,
                Workload,
            )

            if isinstance(self.workload, dict):
                object.__setattr__(
                    self, "workload", Workload.from_dict(self.workload)
                )
            elif isinstance(self.workload, str):
                if self.workload not in NAMED_WORKLOADS:
                    raise ValueError(
                        f"unknown workload family {self.workload!r}; "
                        f"known: {NAMED_WORKLOADS}"
                    )
            elif not isinstance(self.workload, Workload):
                raise ValueError(
                    f"workload must be a family name, a Workload or a "
                    f"workload dict, got {self.workload!r}"
                )
        # MemoryOrganization carries the power-of-two / mux validation;
        # cache it — the engine and report reader hit the property often.
        object.__setattr__(
            self,
            "_organization",
            MemoryOrganization(
                words=self.words, bits=self.bits, column_mux=self.column_mux
            ),
        )
        if self.c < 1:
            raise ValueError(f"c must be >= 1 clock cycle, got {self.c}")
        if not 0 < self.pndc < 1:
            raise ValueError(f"Pndc must be in (0, 1), got {self.pndc}")
        if self.checker_style not in CHECKER_STYLES:
            raise ValueError(
                f"checker_style must be one of {CHECKER_STYLES}, "
                f"got {self.checker_style!r}"
            )
        from repro.design.registry import DECODERS

        if self.decoder_style not in DECODERS:
            raise ValueError(
                f"unknown decoder_style {self.decoder_style!r}; "
                f"registered: {DECODERS.names()}"
            )
        if self.row_code is not None:
            from repro.design.registry import resolve_code

            resolve_code(self.row_code)  # raises on an unknown spec

    # -- derived views -------------------------------------------------------

    @property
    def organization(self) -> MemoryOrganization:
        return self._organization

    @property
    def structural_checkers(self) -> bool:
        return self.checker_style == "structural"

    def label(self) -> str:
        """Compact human label, e.g. ``'16x2K c=10 Pndc<=1e-09'``."""
        return (
            f"{self.organization.label()} c={self.c} Pndc<={self.pndc:g}"
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_organization(
        cls, organization: MemoryOrganization, **kwargs
    ) -> "DesignSpec":
        """A spec for an existing :class:`MemoryOrganization`."""
        return cls(
            words=organization.words,
            bits=organization.bits,
            column_mux=organization.column_mux,
            **kwargs,
        )

    @classmethod
    def grid(
        cls,
        organizations: Iterable[MemoryOrganization],
        requirements: Sequence[Tuple[int, float]],
        **common,
    ) -> List["DesignSpec"]:
        """The cross product organisations x (c, Pndc) requirements.

        >>> from repro.memory.organization import PAPER_ORGS
        >>> specs = DesignSpec.grid(PAPER_ORGS, [(10, 1e-9), (2, 1e-9)])
        >>> len(specs)
        6
        """
        return [
            cls.for_organization(org, c=c, pndc=pndc, **common)
            for org in organizations
            for c, pndc in requirements
        ]

    def replace(self, **changes) -> "DesignSpec":
        """A copy with some fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["policy"] = self.policy.value
        if self.workload is not None and not isinstance(self.workload, str):
            # asdict() recursed into the Workload dataclass and lost its
            # kind tag; serialise through the workload's own protocol
            data["workload"] = self.workload.to_dict()
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "DesignSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown DesignSpec fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "DesignSpec":
        return cls.from_dict(json.loads(text))
