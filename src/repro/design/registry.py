"""Name-keyed registries: codes, checkers, mappings, decoder styles.

The figure-3 scheme composes four pluggable families — an unordered
*code*, the address *mapping* that programs the ROM from it, the
*checker* observing the ROM word, and the *decoder* feeding the ROM.
Historically each composition point was a hard-coded dispatch
(``SelfCheckingMemory._checker_for``'s isinstance chain,
``mapping_for_code``'s if/elif); this module replaces them with
registries so a new code plugs into the scheme without touching
:mod:`repro.core.scheme`:

* :data:`CODES` — parsers from a code spec string (``"3-out-of-5"``) to
  a code instance; used by :class:`~repro.design.spec.DesignSpec` row
  code overrides.
* :data:`MAPPINGS` — mapping factories keyed by *kind*
  (``"parity"``, ``"mod"``, ``"identity"``, ...), signature
  ``factory(code, n_bits, **kwargs) -> AddressMapping``.
* :data:`CHECKERS` — checker factories keyed by the **class name** of
  the mapping's code (or of the mapping itself), signature
  ``factory(mapping, structural) -> Checker``.  Lookup walks the MRO,
  so registering a base class covers subclasses.
* :data:`DECODERS` — decoder-style factories (``"tree"``, ``"flat"``),
  signature ``factory(n_bits, name) -> decoder``.

To plug in a new code: give the code class a ``mapping_kind`` attribute
(or register a selector predicate), register a mapping factory under
that kind and a checker factory under the code's class name — the
engine, the scheme and the CLI pick it up by name.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Tuple

from repro.checkers.berger_checker import BergerChecker
from repro.checkers.m_out_of_n_checker import MOutOfNChecker
from repro.codes.m_out_of_n import MOutOfNCode
from repro.core.mapping import (
    AddressMapping,
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
)
from repro.decoder.flat import FlatDecoder
from repro.decoder.tree import DecoderTree

__all__ = [
    "Registry",
    "CODES",
    "CHECKERS",
    "MAPPINGS",
    "DECODERS",
    "checker_for",
    "mapping_kind_for",
    "mapping_for_code",
    "build_mapping",
    "decoder_for",
    "resolve_code",
    "register_mapping_selector",
]


class Registry:
    """An ordered name -> factory table with decorator registration.

    >>> r = Registry("widget")
    >>> @r.register("square")
    ... def make_square():
    ...     return "[]"
    >>> r.get("square")()
    '[]'
    >>> "square" in r
    True
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    def register(self, name: str, obj: Optional[Callable] = None):
        """Register ``obj`` under ``name``; usable as a decorator."""
        if obj is None:
            def decorator(fn: Callable) -> Callable:
                self.register(name, fn)
                return fn

            return decorator
        if name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered; "
                f"unregister it first to replace it"
            )
        self._entries[name] = obj
        return obj

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> Callable:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"no {self.kind} registered under {name!r}; "
                f"known: {sorted(self._entries)}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {sorted(self._entries)})"


#: code-spec parsers: ``parser(text) -> Optional[Code]`` (None = no match)
CODES = Registry("code")
#: checker factories keyed by code/mapping class name
CHECKERS = Registry("checker")
#: mapping factories keyed by mapping kind
MAPPINGS = Registry("mapping")
#: decoder-style factories keyed by style name
DECODERS = Registry("decoder style")

#: (predicate, kind) pairs deciding the mapping kind for a code; newest
#: registrations are consulted first so plugins can override defaults.
_MAPPING_SELECTORS: List[Tuple[Callable[[object], bool], str]] = []


def register_mapping_selector(
    kind: str, predicate: Callable[[object], bool]
) -> None:
    """Route codes matching ``predicate`` to the ``kind`` mapping."""
    _MAPPING_SELECTORS.insert(0, (predicate, kind))


# -- lookup helpers ----------------------------------------------------------


def checker_for(mapping: AddressMapping, structural: bool = False):
    """Build the registered checker for a mapping's code.

    The mapping's ``code`` attribute is consulted first (walking its
    MRO), then the mapping's own class — so code-level registrations
    cover every mapping of that code, while mapping-level registrations
    (e.g. :class:`TruncatedBergerMapping`, which has no ``code``) still
    work.
    """
    candidates: List[str] = []
    code = getattr(mapping, "code", None)
    if code is not None:
        candidates.extend(cls.__name__ for cls in type(code).__mro__)
    candidates.extend(cls.__name__ for cls in type(mapping).__mro__)
    for name in candidates:
        if name in CHECKERS:
            return CHECKERS.get(name)(mapping, structural)
    raise TypeError(
        f"no checker registered for mapping {mapping!r} "
        f"(tried {candidates}); register one with "
        f"repro.design.registry.CHECKERS.register(<class name>, factory)"
    )


def mapping_kind_for(code) -> str:
    """Mapping kind for a code: its ``mapping_kind`` attribute, else the
    first matching registered selector."""
    kind = getattr(code, "mapping_kind", None)
    if kind is not None:
        return kind
    for predicate, selected in _MAPPING_SELECTORS:
        if predicate(code):
            return selected
    raise TypeError(
        f"no mapping kind known for code {code!r}; give the code class a "
        f"'mapping_kind' attribute or register_mapping_selector()"
    )


def build_mapping(kind: str, code, n_bits: int, **kwargs) -> AddressMapping:
    """Instantiate the registered mapping ``kind`` for a code."""
    return MAPPINGS.get(kind)(code, n_bits, **kwargs)


def mapping_for_code(
    code, n_bits: int, complete: bool = True
) -> AddressMapping:
    """The paper's mapping for a selected code, via the registry.

    1-out-of-2 gets the parity mapping; other m-out-of-n codes the mod-a
    mapping; plugin codes whatever their ``mapping_kind`` names.
    """
    return build_mapping(
        mapping_kind_for(code), code, n_bits, complete=complete
    )


def decoder_for(style: str, n_bits: int, name: str):
    """Instantiate the registered decoder style."""
    return DECODERS.get(style)(n_bits, name)


def resolve_code(text: str):
    """Parse a code spec string through the registered code parsers.

    >>> resolve_code("3-out-of-5").name
    '3-out-of-5'
    """
    for name in CODES.names():
        code = CODES.get(name)(text)
        if code is not None:
            return code
    raise ValueError(
        f"unrecognised code spec {text!r}; known families: {CODES.names()}"
    )


# -- default registrations ---------------------------------------------------

_M_OUT_OF_N_RE = re.compile(r"^(\d+)-out-of-(\d+)$")


@CODES.register("m-out-of-n")
def _parse_m_out_of_n(text: str):
    match = _M_OUT_OF_N_RE.match(text.strip())
    if not match:
        return None
    return MOutOfNCode(int(match.group(1)), int(match.group(2)))


CHECKERS.register(
    "MOutOfNCode",
    lambda mapping, structural: MOutOfNChecker(
        mapping.code.m, mapping.code.n, structural=structural
    ),
)
# Berger-style mappings (the §III.1 ablation) carry no .code attribute;
# they register under their own class name.
CHECKERS.register(
    "TruncatedBergerMapping",
    lambda mapping, structural: BergerChecker(mapping.info_bits),
)

MAPPINGS.register(
    "parity", lambda code, n_bits, complete=True: ParityMapping(n_bits)
)
MAPPINGS.register(
    "mod",
    lambda code, n_bits, complete=True: ModAMapping(
        code, n_bits, complete=complete
    ),
)
MAPPINGS.register(
    "identity",
    lambda code, n_bits, complete=True: IdentityMapping(code, n_bits),
)
MAPPINGS.register(
    "truncated-berger",
    lambda code, n_bits, k=1, **_: TruncatedBergerMapping(n_bits, k),
)

register_mapping_selector(
    "mod", lambda code: isinstance(code, MOutOfNCode)
)
register_mapping_selector(
    "parity",
    lambda code: isinstance(code, MOutOfNCode)
    and (code.m, code.n) == (1, 2),
)

DECODERS.register("tree", lambda n_bits, name: DecoderTree(n_bits, name=name))
DECODERS.register("flat", lambda n_bits, name: FlatDecoder(n_bits, name=name))
