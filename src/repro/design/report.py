"""`DesignReport` — machine-readable outcome of one sized design.

The structured counterpart of :func:`repro.core.report.design_report`:
selection outcomes for both decoders, the guarantees they buy, the area
bill under both models and the §II safety consequence — as frozen
dataclasses with ``to_dict``/``to_json``/``from_json`` round-tripping
plus :meth:`DesignReport.render`, the text page the legacy function now
delegates to.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from fractions import Fraction
from io import StringIO
from typing import Optional, Union

from repro.core.latency import (
    detection_quantile,
    expected_detection_cycles,
)
from repro.core.selection import CodeSelection
from repro.design.spec import DesignSpec

__all__ = [
    "DecoderCheckReport",
    "AreaReport",
    "SafetyReport",
    "EmpiricalReport",
    "DesignReport",
    "decoder_check_report",
]


@dataclass(frozen=True)
class DecoderCheckReport:
    """One decoder's code assignment and the guarantees it achieves."""

    code: str
    mapping_kind: str
    a_final: int
    rom_lines: int
    rom_width: int
    c: int
    pndc_target: float
    #: exact worst-case per-cycle escape (0 for zero-latency mappings)
    escape_per_cycle: Fraction
    pndc_achieved: float
    meets_target: bool
    expected_detection_cycles: Optional[float]
    detection_quantile_999: Optional[int]

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["escape_per_cycle"] = str(self.escape_per_cycle)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DecoderCheckReport":
        data = dict(data)
        data["escape_per_cycle"] = Fraction(data["escape_per_cycle"])
        return cls(**data)


@dataclass(frozen=True)
class AreaReport:
    """The area bill under both models, as percent of the RAM macro."""

    stdcell_overhead_percent: float
    decoder_check_percent: float
    parity_bit_percent: float
    parity_checker_percent: float
    total_percent: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AreaReport":
        return cls(**data)


@dataclass(frozen=True)
class SafetyReport:
    """The §II system-safety consequence of the sized scheme."""

    fault_rate_per_hour: float
    decoder_area_fraction: float
    residual_rate_per_hour: float
    baseline_rate_per_hour: float
    improvement_factor: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SafetyReport":
        return cls(**data)


@dataclass(frozen=True)
class EmpiricalReport:
    """Measured fault-injection outcome backing the analytic guarantees.

    Produced by ``DesignEngine.empirical`` (or ``evaluate(...,
    empirical=True)``): an exhaustive stuck-at campaign on the built
    scheme's row checked decoder, run on the packed engine by default.
    """

    engine: str
    cycles: int
    seed: int
    faults: int
    detected: int
    coverage: float
    #: None when nothing was detected within the horizon
    mean_detection_cycle: Optional[float]
    max_detection_cycle: Optional[int]
    #: measured counterpart of Pndc at the spec's c
    escape_fraction_at_c: float
    zero_latency_sa0: bool
    wall_time_s: float
    faults_per_sec: float
    #: label of the Workload that drove the campaign (1.3+)
    workload: Optional[str] = None
    #: content-addressed ResultStore key of the backing ResultSet, when
    #: the engine ran with a store (1.4+) — ``repro results show KEY``
    #: reopens the full record-level artifact
    result_key: Optional[str] = None
    #: True when the campaign was served from the store (verified hit)
    store_hit: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EmpiricalReport":
        return cls(**data)


def decoder_check_report(
    selection: CodeSelection, rom_lines: int
) -> DecoderCheckReport:
    """Summarise one decoder's :class:`CodeSelection` for the report."""
    escape = selection.achieved_escape
    expected = None
    quantile = None
    if escape != 0:
        expected = expected_detection_cycles(escape)
        if escape < 1:
            quantile = detection_quantile(Fraction(escape), 0.999)
    return DecoderCheckReport(
        code=selection.code_name,
        mapping_kind=selection.mapping_kind,
        a_final=selection.a_final,
        rom_lines=rom_lines,
        rom_width=selection.rom_width,
        c=selection.c,
        pndc_target=selection.pndc_target,
        escape_per_cycle=Fraction(escape),
        pndc_achieved=selection.achieved_pndc,
        meets_target=selection.meets_target,
        expected_detection_cycles=expected,
        detection_quantile_999=quantile,
    )


@dataclass(frozen=True)
class DesignReport:
    """Everything a design review wants from one (spec -> scheme) run."""

    spec: DesignSpec
    row: DecoderCheckReport
    column: DecoderCheckReport
    area: AreaReport
    safety: SafetyReport
    #: measured campaign outcome, when evaluate ran with empirical=True
    empirical: Optional[EmpiricalReport] = None

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "spec": self.spec.to_dict(),
            "row": self.row.to_dict(),
            "column": self.column.to_dict(),
            "area": self.area.to_dict(),
            "safety": self.safety.to_dict(),
        }
        if self.empirical is not None:
            data["empirical"] = self.empirical.to_dict()
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "DesignReport":
        empirical = data.get("empirical")
        return cls(
            spec=DesignSpec.from_dict(data["spec"]),
            row=DecoderCheckReport.from_dict(data["row"]),
            column=DecoderCheckReport.from_dict(data["column"]),
            area=AreaReport.from_dict(data["area"]),
            safety=SafetyReport.from_dict(data["safety"]),
            empirical=(
                EmpiricalReport.from_dict(empirical)
                if empirical is not None
                else None
            ),
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "DesignReport":
        return cls.from_dict(json.loads(text))

    # -- text rendering ------------------------------------------------------

    @staticmethod
    def _latency_lines(out: StringIO, side: DecoderCheckReport) -> None:
        escape = side.escape_per_cycle
        if escape == 0:
            out.write(
                "    detection latency     : 0 cycles (every fault)\n"
            )
            return
        out.write(
            f"    escape per cycle      : {float(escape):.4g} "
            f"(= {escape})\n"
        )
        out.write(
            f"    Pndc at c={side.c:<4d}        : "
            f"{side.pndc_achieved:.3g} "
            f"({'meets' if side.meets_target else 'MISSES'} "
            f"{side.pndc_target:g})\n"
        )
        out.write(
            f"    expected detection    : "
            f"{side.expected_detection_cycles:.2f} cycles\n"
        )
        if side.detection_quantile_999 is not None:
            out.write(
                f"    99.9% detection       : "
                f"<= {side.detection_quantile_999} cycles\n"
            )

    def _decoder_section(
        self, out: StringIO, title: str, side: DecoderCheckReport
    ) -> None:
        out.write(f"{title}\n")
        out.write(
            f"    code                  : {side.code} "
            f"(mapping '{side.mapping_kind}', a={side.a_final})\n"
        )
        out.write(
            f"    ROM                   : {side.rom_lines} lines x "
            f"{side.rom_width} bits\n"
        )
        self._latency_lines(out, side)

    def render(self) -> str:
        """The full human-readable design-review page."""
        organization = self.spec.organization
        out = StringIO()

        out.write("self-checking memory design report\n")
        out.write("==================================\n\n")
        out.write(
            f"memory           : {organization.label()} "
            f"({organization.words} words x {organization.bits} bits, "
            f"1-out-of-{organization.column_mux} column mux)\n"
        )
        out.write(
            f"address split    : n={organization.n} = p={organization.p}"
            f" (row) + s={organization.s} (column)\n"
        )
        out.write(
            f"requirement      : detect decoder faults within "
            f"c={self.spec.c} cycles, Pndc <= {self.spec.pndc:g} "
            f"[{self.spec.policy.value} sizing]\n\n"
        )

        self._decoder_section(out, "row decoder check", self.row)
        out.write("\n")
        self._decoder_section(out, "column decoder check", self.column)

        out.write("\narea bill\n")
        out.write(
            f"    decoder check (std-cell model) : "
            f"{self.area.stdcell_overhead_percent:.2f} % of the "
            f"RAM macro\n"
        )
        out.write(
            f"    decoder check (analytic, k=0.3): "
            f"{self.area.decoder_check_percent:.2f} %\n"
        )
        out.write(
            f"    data parity bit                : "
            f"{self.area.parity_bit_percent:.2f} %\n"
        )
        out.write(
            f"    parity checker                 : "
            f"{self.area.parity_checker_percent:.2f} %\n"
        )
        out.write(
            f"    total (analytic)               : "
            f"{self.area.total_percent:.2f} %\n"
        )

        out.write("\nsystem safety (SII model)\n")
        out.write(
            f"    memory fault rate              : "
            f"{self.safety.fault_rate_per_hour:g} /h, decoders "
            f"{100 * self.safety.decoder_area_fraction:.0f} % of area\n"
        )
        out.write(
            f"    undetectable-fault rate        : "
            f"{self.safety.residual_rate_per_hour:.3g} /h "
            f"(vs {self.safety.baseline_rate_per_hour:.3g} /h with "
            f"unchecked decoders)\n"
        )
        out.write(
            f"    improvement                    : "
            f"x{self.safety.improvement_factor:.3g}\n"
        )

        if self.empirical is not None:
            emp = self.empirical
            out.write("\nempirical validation (fault injection)\n")
            out.write(
                f"    campaign                       : {emp.faults} row-"
                f"decoder faults x {emp.cycles} cycles "
                f"({emp.engine} engine, {emp.faults_per_sec:.0f} "
                f"faults/s)\n"
            )
            if emp.workload is not None:
                out.write(
                    f"    workload                       : "
                    f"{emp.workload}\n"
                )
            out.write(
                f"    coverage within horizon        : "
                f"{emp.coverage:.3f}\n"
            )
            out.write(
                f"    measured escape at c={self.spec.c:<4d}      : "
                f"{emp.escape_fraction_at_c:.4f}\n"
            )
            out.write(
                "    stuck-at-0 zero latency        : "
                + ("holds" if emp.zero_latency_sa0 else "VIOLATED")
                + "\n"
            )
        return out.getvalue()
