"""The unified design-flow API: ``DesignSpec -> DesignEngine -> DesignReport``.

This package is the canonical front door for the library::

    from repro.design import DesignSpec, DesignEngine

    spec   = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)
    engine = DesignEngine()
    memory = engine.build(spec)       # figure-3 SelfCheckingMemory
    report = engine.evaluate(spec)    # structured DesignReport
    print(report.render())            # the classic text page
    grid = engine.sweep(
        DesignSpec.grid(PAPER_ORGS, [(2, 1e-9), (10, 1e-9)]), workers=4
    )

Codes, checkers, address mappings and decoder styles plug in by name
through :mod:`repro.design.registry` — no edits to the core scheme.
"""

from repro.design.engine import DesignEngine
from repro.design.registry import (
    CHECKERS,
    CODES,
    DECODERS,
    MAPPINGS,
    Registry,
    checker_for,
    decoder_for,
    mapping_for_code,
    mapping_kind_for,
    register_mapping_selector,
    resolve_code,
)
from repro.design.report import (
    AreaReport,
    DecoderCheckReport,
    DesignReport,
    SafetyReport,
    decoder_check_report,
)
from repro.design.spec import CHECKER_STYLES, DesignSpec

__all__ = [
    "DesignSpec",
    "DesignEngine",
    "DesignReport",
    "DecoderCheckReport",
    "AreaReport",
    "SafetyReport",
    "decoder_check_report",
    "CHECKER_STYLES",
    "Registry",
    "CODES",
    "CHECKERS",
    "MAPPINGS",
    "DECODERS",
    "checker_for",
    "decoder_for",
    "mapping_for_code",
    "mapping_kind_for",
    "register_mapping_selector",
    "resolve_code",
]
