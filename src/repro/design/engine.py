"""`DesignEngine` — the canonical front door of the library.

One object owns the paper's whole design flow::

    spec   = DesignSpec(words=2048, bits=16, c=10, pndc=1e-9)
    engine = DesignEngine()
    memory = engine.build(spec)       # a working SelfCheckingMemory
    report = engine.evaluate(spec)    # a structured DesignReport
    grid   = engine.sweep(specs, workers=4)   # parallel exploration

``build`` assembles the figure-3 scheme through the registries (so
plugin codes work), ``evaluate`` produces the machine-readable
:class:`~repro.design.report.DesignReport`, and ``sweep`` batches
evaluations over many specs with :mod:`concurrent.futures` — the
trade-off-exploration hot path.

``evaluate(spec, empirical=True)`` additionally *measures* the analytic
guarantees: an exhaustive stuck-at campaign on the built scheme's row
checked decoder, driven by the packed engine of
:mod:`repro.faultsim.fastsim`, attached to the report as
:class:`~repro.design.report.EmpiricalReport`.
"""

from __future__ import annotations

import math
import time
from concurrent import futures
from typing import Iterable, List, Optional, Sequence

from repro.area.model import PaperAreaModel
from repro.area.stdcell import StdCellAreaModel
from repro.core.plan import MemoryCodePlan, plan_memory_codes
from repro.core.safety import SafetyModel
from repro.core.scheme import SelfCheckingMemory
from repro.core.selection import (
    evaluate_code,
    select_zero_latency_code,
)
from repro.design.report import (
    AreaReport,
    DesignReport,
    EmpiricalReport,
    SafetyReport,
    decoder_check_report,
)
from repro.design.spec import DesignSpec

__all__ = ["DesignEngine"]

#: seed of the default empirical measurement — part of the report-cache
#: key, so it lives once (evaluate/empirical defaults and report_key
#: all reference it)
DEFAULT_EMPIRICAL_SEED = 7


class DesignEngine:
    """Executes the design flow: plan, build, evaluate, sweep.

    The engine carries the evaluation context that is *not* part of the
    design problem itself: the two area models and the §II safety
    parameters.  Specs stay pure data; engines stay cheap to construct.
    """

    def __init__(
        self,
        std_model: Optional[StdCellAreaModel] = None,
        analytic_model: Optional[PaperAreaModel] = None,
        fault_rate_per_hour: float = 1e-5,
        decoder_area_fraction: float = 0.1,
        store=None,
        cache: bool = True,
    ):
        self.std_model = std_model or StdCellAreaModel()
        self.analytic_model = analytic_model or PaperAreaModel()
        self.fault_rate_per_hour = fault_rate_per_hour
        self.decoder_area_fraction = decoder_area_fraction
        # artifact policy (1.4): a repro.results.ResultStore (or root
        # path) caches empirical campaigns content-addressed and whole
        # DesignReports in its side table; cache=False refreshes entries
        from repro.results import ResultStore

        self.store = ResultStore.coerce(store)
        self.cache = cache

    # -- the flow ------------------------------------------------------------

    def plan(self, spec: DesignSpec) -> MemoryCodePlan:
        """Size both decoders' codes for a spec (§III.2)."""
        organization = spec.organization
        if spec.row_code is not None:
            from repro.design.registry import resolve_code

            row = evaluate_code(
                resolve_code(spec.row_code), spec.c, spec.pndc
            )
            if spec.column_zero_latency:
                column = select_zero_latency_code(organization.s)
            else:
                column = row
            return MemoryCodePlan(
                organization=organization, row=row, column=column
            )
        return plan_memory_codes(
            organization,
            spec.c,
            spec.pndc,
            policy=spec.policy,
            column_zero_latency=spec.column_zero_latency,
        )

    def build(
        self,
        spec: DesignSpec,
        plan: Optional[MemoryCodePlan] = None,
        lint: bool = False,
    ) -> SelfCheckingMemory:
        """Assemble the figure-3 self-checking memory for a spec.

        ``lint=True`` statically analyzes the built memory and raises
        :class:`~repro.analysis.AnalysisError` on any error finding —
        catching a mis-wired design before a single cycle is simulated.
        """
        plan = plan or self.plan(spec)
        memory = SelfCheckingMemory(
            spec.organization,
            plan.row_mapping(),
            plan.column_mapping(),
            structural_checkers=spec.structural_checkers,
            decoder_style=spec.decoder_style,
        )
        memory.selection = plan.row
        if lint:
            from repro.analysis import AnalysisError, analyze

            report = analyze(memory)
            if not report.ok:
                raise AnalysisError(report)
        return memory

    def empirical(
        self,
        spec: DesignSpec,
        plan: Optional[MemoryCodePlan] = None,
        memory: Optional[SelfCheckingMemory] = None,
        cycles: int = 256,
        seed: int = DEFAULT_EMPIRICAL_SEED,
        engine: str = "packed",
        workers: Optional[int] = None,
    ) -> EmpiricalReport:
        """Measure the guarantees by exhaustive row-decoder fault injection.

        Builds the scheme (unless ``memory`` is given), injects every
        stuck-at fault of the row decoder tree + ROM, drives the spec's
        workload against the row decoder (``spec.workload``; default
        ``cycles`` uniform random addresses), and summarises detection —
        the empirical counterpart of the report's analytic ``Pndc``
        column.

        The campaign routes through :class:`repro.scenarios.
        CampaignEngine` under this engine's artifact policy: with a
        ``store`` configured, identical measurements are served from
        disk (``EmpiricalReport.store_hit``) and the report carries the
        ``result_key`` of the full record-level artifact.
        """
        from repro.faultsim.injector import decoder_fault_list
        from repro.scenarios.engine import CampaignEngine
        from repro.scenarios.workload import Workload, named_workload

        memory = memory or self.build(spec, plan)
        checked = memory.row
        faults = decoder_fault_list(checked)
        space = 1 << spec.organization.p
        if spec.workload is None:
            workload = Workload.uniform(space, cycles, seed=seed)
        elif isinstance(spec.workload, str):
            workload = named_workload(spec.workload, space, cycles, seed)
        else:
            workload = spec.workload
        addresses = workload.address_list()
        if addresses and max(addresses) >= space:
            raise ValueError(
                f"workload {workload.label()} addresses exceed the "
                f"{space}-line row decoder of {spec.organization.label()}"
            )
        driver = CampaignEngine(
            engine=engine,
            workers=workers,
            store=self.store,
            cache=self.cache,
        )
        start = time.perf_counter()
        result = driver.decoder(
            checked,
            memory.row_checker,
            faults,
            workload,
            attach_analytic=False,
            spec=spec.to_dict(),
        )
        wall = time.perf_counter() - start

        sa0 = [r for r in result.records if r.kind == "sa0" and r.detected]
        mean = result.mean_detection_cycle()
        return EmpiricalReport(
            engine=engine,
            cycles=len(addresses),
            seed=seed,
            workload=workload.label(),
            faults=result.total,
            detected=result.detected,
            coverage=result.coverage,
            mean_detection_cycle=None if math.isnan(mean) else mean,
            max_detection_cycle=result.max_detection_cycle(),
            escape_fraction_at_c=result.escape_fraction_at(spec.c),
            zero_latency_sa0=all(r.latency == 0 for r in sa0),
            wall_time_s=wall,
            faults_per_sec=result.total / wall if wall > 0 else 0.0,
            result_key=result.store_key,
            store_hit=result.from_store,
        )

    def evaluate(
        self,
        spec: DesignSpec,
        plan: Optional[MemoryCodePlan] = None,
        empirical: bool = False,
        empirical_cycles: int = 256,
        empirical_seed: int = DEFAULT_EMPIRICAL_SEED,
        engine: str = "packed",
        workers: Optional[int] = None,
    ) -> DesignReport:
        """Size a spec and report guarantees, area and safety.

        With ``empirical=True`` the report also carries a measured
        fault-injection summary (see :meth:`empirical`); ``engine`` and
        ``workers`` select the campaign engine for that measurement.

        With a ``store`` configured on the engine, whole reports cache
        in the store's side table keyed on (spec, evaluation policy,
        engine context): re-evaluating an unchanged spec — including
        every spec of a repeated :meth:`sweep` — is served from disk.
        An explicit ``plan`` override bypasses the report cache (the
        plan is an arbitrary object the key cannot capture).
        """
        report_key = None
        if self.store is not None and plan is None:
            report_key = self.report_key(
                spec,
                empirical=empirical,
                empirical_cycles=empirical_cycles,
                empirical_seed=empirical_seed,
                engine=engine,
            )
            if self.cache:
                cached = self.store.get_report(report_key)
                if cached is not None:
                    return DesignReport.from_dict(cached)
        plan = plan or self.plan(spec)
        organization = spec.organization

        breakdown = self.analytic_model.breakdown(
            organization, r_row=plan.r_row, r_column=plan.r_column
        )
        area = AreaReport(
            stdcell_overhead_percent=plan.overhead_percent(self.std_model),
            decoder_check_percent=100 * breakdown.decoder_check,
            parity_bit_percent=100 * breakdown.parity_bit,
            parity_checker_percent=100 * breakdown.parity_checker,
            total_percent=100 * breakdown.total,
        )

        safety_model = SafetyModel(
            fault_rate_per_hour=self.fault_rate_per_hour,
            decoder_area_fraction=self.decoder_area_fraction,
        )
        residual = safety_model.rate_with_scheme(plan.row.achieved_pndc)
        safety = SafetyReport(
            fault_rate_per_hour=self.fault_rate_per_hour,
            decoder_area_fraction=self.decoder_area_fraction,
            residual_rate_per_hour=residual,
            baseline_rate_per_hour=safety_model.rate_unprotected_decoders(),
            improvement_factor=safety_model.improvement_factor(
                plan.row.achieved_pndc
            ),
        )

        measured = None
        if empirical:
            measured = self.empirical(
                spec,
                plan=plan,
                cycles=empirical_cycles,
                seed=empirical_seed,
                engine=engine,
                workers=workers,
            )

        report = DesignReport(
            spec=spec,
            row=decoder_check_report(plan.row, 1 << organization.p),
            column=decoder_check_report(plan.column, 1 << organization.s),
            area=area,
            safety=safety,
            empirical=measured,
        )
        if report_key is not None:
            self.store.put_report(report_key, report.to_dict())
        return report

    def report_key(
        self,
        spec: DesignSpec,
        empirical: bool = False,
        empirical_cycles: int = 256,
        empirical_seed: int = DEFAULT_EMPIRICAL_SEED,
        engine: str = "packed",
    ) -> str:
        """Content address of one evaluation: the spec, the evaluation
        policy and the engine's analytic context (area models, safety
        parameters) — everything a report's numbers depend on.  The
        defaults mirror :meth:`evaluate`, so callers that key an
        evaluation they ran with defaults get the same address."""
        from repro.results import campaign_key

        return campaign_key(
            {
                "format": 1,
                "kind": "design-report",
                "spec": spec.to_dict(),
                "empirical": {
                    "enabled": empirical,
                    "cycles": empirical_cycles,
                    "seed": empirical_seed,
                    "engine": engine,
                },
                "context": {
                    "fault_rate_per_hour": self.fault_rate_per_hour,
                    "decoder_area_fraction": self.decoder_area_fraction,
                    "std_model": vars(self.std_model),
                    "analytic_model": vars(self.analytic_model),
                },
            }
        )

    # -- batch exploration ---------------------------------------------------

    def sweep(
        self,
        specs: Iterable[DesignSpec],
        workers: Optional[int] = None,
        executor: str = "thread",
    ) -> List[DesignReport]:
        """Evaluate many specs; results keep the input order.

        ``workers=None`` (or <= 1) evaluates serially.  ``workers=N``
        fans out over a :class:`concurrent.futures` pool —
        ``executor="thread"`` (default; zero pickling cost) or
        ``executor="process"`` (true CPU parallelism; specs and the
        engine must stay picklable, which the built-in types are).

        Caveat for ``executor="process"``: runtime registrations in
        :mod:`repro.design.registry` (plugin codes/mappings/checkers)
        are not shipped to workers on spawn-start platforms
        (Windows/macOS) — workers re-import the registry module fresh.
        Register plugins at import time of a module the workers also
        import, or stay on the thread executor for plugin sweeps.
        """
        spec_list: Sequence[DesignSpec] = list(specs)
        if workers is None or workers <= 1:
            return [self.evaluate(spec) for spec in spec_list]
        if executor == "thread":
            pool_cls = futures.ThreadPoolExecutor
        elif executor == "process":
            pool_cls = futures.ProcessPoolExecutor
        else:
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        with pool_cls(max_workers=workers) as pool:
            return list(pool.map(self.evaluate, spec_list))
