"""`SuiteSpec` — a declarative, JSON-round-trippable campaign matrix.

A suite is a list of :class:`MatrixBlock`\\ s; each block crosses its
axes — **targets** (``DesignSpec`` dicts or RAM organisations) x
**workloads** (family names resolved against the target, pinned
``Workload`` dicts, or march-test references) x one **scenario
population** (a registered builder, see
:mod:`repro.suite.populations`) x **engine policies** — into concrete
:class:`CampaignCell`\\ s.  Every cell is plain JSON: picklable for the
runner's process pool, hashable into the :class:`~repro.results.store.
ResultStore` key that makes suite re-runs resume from disk.

>>> block = MatrixBlock(
...     family="transient",
...     targets=({"words": 32, "bits": 8, "column_mux": 4},),
...     workloads=({"family": "uniform", "cycles": 64, "seed": 1},),
...     scenarios={"population": "upset-stride", "stride": 16},
... )
>>> suite = SuiteSpec(name="tiny", blocks=(block,))
>>> SuiteSpec.from_json(suite.to_json()) == suite
True
>>> [cell.family for cell in suite.cells()]
['transient']
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["FAMILIES", "CampaignCell", "MatrixBlock", "SuiteSpec"]

#: campaign families a cell can belong to.  ``design`` cells evaluate a
#: DesignReport (analytic, or empirical with ``policy["empirical"]``);
#: the rest run the matching :class:`~repro.scenarios.CampaignEngine`
#: campaign.
FAMILIES = ("design", "decoder", "scheme", "transient", "march")

#: families whose target is a ``DesignSpec`` dict (the rest take a RAM
#: organisation dict: words/bits/column_mux)
SPEC_TARGET_FAMILIES = ("design", "decoder", "scheme")

#: recognised policy knobs per cell (everything else is rejected so a
#: typo'd ``"colapse"`` fails at spec load, not silently at run time)
POLICY_KEYS = ("engine", "collapse", "workers", "chunk", "empirical",
               "empirical_cycles")


def _frozen_dict(value: Optional[dict], what: str) -> Optional[dict]:
    if value is None:
        return None
    if not isinstance(value, dict):
        raise ValueError(f"{what} must be a JSON object, got {value!r}")
    return dict(value)


def _validate_workload(workload: Optional[dict], where: str) -> None:
    """Reject workload dicts that could never run — unknown march test,
    workload kind or family names — at spec load, with a one-line
    diagnostic instead of a run-time traceback."""
    if workload is None:
        return
    if "test" in workload:
        from repro.memory.march import MARCH_TESTS

        if workload["test"] not in MARCH_TESTS:
            raise ValueError(
                f"block {where}: unknown march test "
                f"{workload['test']!r}; known: {sorted(MARCH_TESTS)}"
            )
        return
    if "kind" in workload:
        from repro.scenarios.workload import workload_kinds

        if workload["kind"] not in workload_kinds():
            raise ValueError(
                f"block {where}: unknown workload kind "
                f"{workload['kind']!r}; known: {workload_kinds()}"
            )
        return
    if "family" in workload:
        from repro.scenarios.workload import NAMED_WORKLOADS

        if workload["family"] not in NAMED_WORKLOADS:
            raise ValueError(
                f"block {where}: unknown workload family "
                f"{workload['family']!r}; known: {NAMED_WORKLOADS}"
            )
        return
    raise ValueError(
        f"block {where}: a workload dict needs a 'family', 'kind' or "
        f"'test' key, got {sorted(workload)}"
    )


@dataclass(frozen=True)
class CampaignCell:
    """One concrete campaign: the unit the runner schedules and the
    store keys.

    All fields are plain JSON values — a cell round-trips through
    ``to_dict``/``from_dict`` and pickles into the runner's process
    pool unchanged.
    """

    cell_id: str
    family: str
    #: DesignSpec dict (design/decoder/scheme) or RAM organisation dict
    target: dict
    #: ``{"family": name, "cycles": N, "seed": S}``, a full
    #: ``Workload.to_dict()`` (has a ``"kind"`` key), or
    #: ``{"test": march-test-name}``; ``None`` for design cells
    workload: Optional[dict] = None
    #: ``{"population": registered-name, **params}``; ``None`` for
    #: design cells
    scenarios: Optional[dict] = None
    #: engine policy overrides (see :data:`POLICY_KEYS`)
    policy: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown campaign family {self.family!r}; "
                f"known: {FAMILIES}"
            )
        unknown = set(self.policy) - set(POLICY_KEYS)
        if unknown:
            raise ValueError(
                f"cell {self.cell_id!r}: unknown policy keys "
                f"{sorted(unknown)}; known: {POLICY_KEYS}"
            )
        if self.family != "design" and self.scenarios is not None:
            if "population" not in self.scenarios:
                raise ValueError(
                    f"cell {self.cell_id!r}: scenarios need a "
                    f"'population' name"
                )

    def to_dict(self) -> dict:
        return {
            "cell": self.cell_id,
            "family": self.family,
            "target": dict(self.target),
            "workload": self.workload,
            "scenarios": self.scenarios,
            "policy": dict(self.policy),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCell":
        return cls(
            cell_id=data["cell"],
            family=data["family"],
            target=dict(data["target"]),
            workload=_frozen_dict(data.get("workload"), "workload"),
            scenarios=_frozen_dict(data.get("scenarios"), "scenarios"),
            policy=dict(data.get("policy") or {}),
        )


def _target_label(family: str, target: dict) -> str:
    if family in SPEC_TARGET_FAMILIES:
        words = target.get("words", "?")
        bits = target.get("bits", "?")
        parts = [f"{bits}x{words}"]
        if "c" in target:
            parts.append(f"c{target['c']}")
        if "pndc" in target:
            parts.append(f"p{target['pndc']:g}")
        return "-".join(parts)
    return f"{target.get('words', '?')}x{target.get('bits', '?')}"


def _workload_label(workload: Optional[dict]) -> str:
    if workload is None:
        return ""
    if "test" in workload:
        return str(workload["test"]).replace(" ", "").lower()
    if "family" in workload:
        return str(workload["family"])
    if "kind" in workload:
        label = str(workload["kind"])
        period = workload.get("scrub_period")
        return f"{label}{period}" if period is not None else label
    return "workload"


def _policy_label(policy: dict) -> str:
    parts = []
    engine = policy.get("engine")
    if engine and engine != "packed":
        parts.append(str(engine))
    if policy.get("collapse") is False:
        parts.append("nocollapse")
    if policy.get("empirical"):
        parts.append("empirical")
    return "+".join(parts)


@dataclass(frozen=True)
class MatrixBlock:
    """One axis-product of a suite: family x targets x workloads x
    policies, sharing one scenario population."""

    family: str
    targets: Tuple[dict, ...]
    workloads: Tuple[Optional[dict], ...] = (None,)
    scenarios: Optional[dict] = None
    policies: Tuple[dict, ...] = ({},)
    label: str = ""

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown campaign family {self.family!r}; "
                f"known: {FAMILIES}"
            )
        object.__setattr__(
            self, "targets", tuple(dict(t) for t in self.targets)
        )
        object.__setattr__(
            self,
            "workloads",
            tuple(
                dict(w) if w is not None else None for w in self.workloads
            ),
        )
        object.__setattr__(
            self, "policies", tuple(dict(p) for p in self.policies)
        )
        if not self.targets:
            raise ValueError(f"block {self.label!r} has no targets")
        if self.family != "design" and self.scenarios is None:
            raise ValueError(
                f"block {self.label!r} ({self.family}): campaign blocks "
                f"need a scenario population"
            )
        if self.family != "design":
            from repro.suite.populations import check_population

            check_population(self.scenarios["population"])
        where = self.label or self.family
        for workload in self.workloads:
            _validate_workload(workload, where)

    def cells(self) -> List[CampaignCell]:
        """The block expanded to concrete cells (stable order: targets
        outermost, policies innermost)."""
        out: List[CampaignCell] = []
        for target in self.targets:
            for workload in self.workloads:
                for policy in self.policies:
                    parts = [self.label or self.family]
                    parts.append(_target_label(self.family, target))
                    for extra in (
                        _workload_label(workload), _policy_label(policy)
                    ):
                        if extra:
                            parts.append(extra)
                    out.append(
                        CampaignCell(
                            cell_id="/".join(parts),
                            family=self.family,
                            target=target,
                            workload=workload,
                            scenarios=self.scenarios,
                            policy=policy,
                        )
                    )
        return out

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "label": self.label,
            "targets": [dict(t) for t in self.targets],
            "workloads": [
                dict(w) if w is not None else None for w in self.workloads
            ],
            "scenarios": self.scenarios,
            "policies": [dict(p) for p in self.policies],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MatrixBlock":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown MatrixBlock fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(
            family=data["family"],
            targets=tuple(data["targets"]),
            workloads=tuple(data.get("workloads") or (None,)),
            scenarios=_frozen_dict(data.get("scenarios"), "scenarios"),
            policies=tuple(data.get("policies") or ({},)),
            label=data.get("label", ""),
        )


@dataclass(frozen=True)
class SuiteSpec:
    """A named, declarative campaign suite: blocks + metadata.

    ``cells()`` expands every block and guarantees unique cell ids
    (duplicate matrix coordinates get a ``#N`` suffix), so outcomes,
    progress events and store artifacts are unambiguous per cell.
    """

    name: str
    blocks: Tuple[MatrixBlock, ...]
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("a suite needs a name")
        object.__setattr__(self, "blocks", tuple(self.blocks))
        if not self.blocks:
            raise ValueError(f"suite {self.name!r} has no blocks")

    def cells(self) -> List[CampaignCell]:
        out: List[CampaignCell] = []
        seen: Dict[str, int] = {}
        for block in self.blocks:
            for cell in block.cells():
                count = seen.get(cell.cell_id, 0)
                seen[cell.cell_id] = count + 1
                if count:
                    cell = dataclasses.replace(
                        cell, cell_id=f"{cell.cell_id}#{count + 1}"
                    )
                out.append(cell)
        return out

    def families(self) -> Tuple[str, ...]:
        return tuple(sorted({block.family for block in self.blocks}))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": 1,
            "name": self.name,
            "description": self.description,
            "blocks": [block.to_dict() for block in self.blocks],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteSpec":
        if not isinstance(data, dict) or "blocks" not in data:
            raise ValueError(
                "not a suite spec: expected a JSON object with a "
                "'blocks' list (write one with SuiteSpec.to_json())"
            )
        return cls(
            name=data.get("name", ""),
            blocks=tuple(
                MatrixBlock.from_dict(block) for block in data["blocks"]
            ),
            description=data.get("description", ""),
        )

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "SuiteSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed suite spec: {exc}") from None
        return cls.from_dict(data)
