"""`SuiteRunner` — schedule campaign cells over a bounded process pool.

Execution contract per cell:

* the cell's store key is looked up first — a hit is served from disk,
  hash-verified, and the simulator is never invoked (this is what makes
  a re-run of a suite against the same store a *resume*);
* a miss runs the campaign through the matching
  :class:`~repro.scenarios.CampaignEngine` /
  :class:`~repro.design.engine.DesignEngine` path and stores the
  artifact;
* failures are captured **fail-soft**: one bad cell becomes an
  ``error`` outcome with a one-line diagnostic, and the rest of the
  suite still runs.

``workers=N`` schedules cells over a bounded
:class:`concurrent.futures.ProcessPoolExecutor` (each worker opens the
store at the same root; the content-addressed protocol makes concurrent
writers safe).  A ``progress`` callable streams per-cell events as the
suite advances.
"""

from __future__ import annotations

import time
from concurrent import futures
from typing import Callable, List, Optional, Sequence, Union

from repro.results import ResultStore
from repro.suite.report import CellOutcome, SuiteReport
from repro.suite.spec import CampaignCell, SuiteSpec

__all__ = ["SuiteRunner", "execute_cell"]

#: progress callback signature: receives dicts like
#: ``{"event": "done", "cell": id, "index": 3, "total": 46,
#:    "status": "hit", "wall_time_s": 0.01}``.  Serial runs emit a
#: ``"start"``/``"done"`` pair per cell; pooled runs (``workers=N``)
#: emit completion (``"done"``) events only — every cell is submitted
#: up front, so there is no meaningful per-cell start instant.
ProgressFn = Callable[[dict], None]


# -- workload / policy resolution ---------------------------------------------


def _resolve_workload(workload: Optional[dict], space: int):
    """A cell's workload dict -> a live Workload against ``space``."""
    from repro.scenarios import Workload, named_workload

    if workload is None:
        raise ValueError("this campaign family needs a workload")
    if "kind" in workload:
        return Workload.from_dict(workload)
    if "family" in workload:
        return named_workload(
            workload["family"],
            space,
            int(workload.get("cycles", 256)),
            seed=int(workload.get("seed", 0)),
        )
    raise ValueError(
        f"workload {workload!r} is neither a named family "
        f"({{'family': ..., 'cycles': ...}}) nor a full workload dict"
    )


def _campaign_engine(cell: CampaignCell, store, cache: bool):
    from repro.scenarios import CampaignEngine

    policy = cell.policy
    return CampaignEngine(
        engine=policy.get("engine", "packed"),
        collapse=policy.get("collapse", True),
        workers=policy.get("workers"),
        chunk=policy.get("chunk"),
        store=store,
        cache=cache,
    )


def _ram_target(target: dict):
    from repro.memory.organization import MemoryOrganization
    from repro.memory.ram import BehavioralRAM

    return BehavioralRAM(
        MemoryOrganization(
            words=int(target["words"]),
            bits=int(target["bits"]),
            column_mux=int(target.get("column_mux", 8)),
        ),
        with_parity=bool(target.get("parity", True)),
    )


def _population(cell: CampaignCell, target) -> List:
    from repro.suite.populations import build_population

    spec = cell.scenarios or {}
    name = spec.get("population")
    if not name:
        raise ValueError(f"cell {cell.cell_id!r} names no population")
    params = {k: v for k, v in spec.items() if k != "population"}
    return build_population(name, target, params)


# -- per-family execution -----------------------------------------------------


def _run_design(cell: CampaignCell, store, cache: bool):
    from repro.design.engine import DesignEngine
    from repro.design.spec import DesignSpec

    spec = DesignSpec.from_dict(cell.target)
    policy = cell.policy
    engine = DesignEngine(store=store, cache=cache)
    empirical = bool(policy.get("empirical", False))
    report = engine.evaluate(
        spec,
        empirical=empirical,
        empirical_cycles=int(policy.get("empirical_cycles", 256)),
        engine=policy.get("engine", "packed"),
        workers=policy.get("workers"),
    )
    summary = {
        "code": report.row.code,
        "a_final": report.row.a_final,
        "escape_per_cycle": str(report.row.escape_per_cycle),
        "area_overhead_percent": round(
            report.area.stdcell_overhead_percent, 4
        ),
    }
    key = None
    if store is not None:
        key = engine.report_key(
            spec,
            empirical=empirical,
            empirical_cycles=int(policy.get("empirical_cycles", 256)),
            engine=policy.get("engine", "packed"),
        )
    if report.empirical is not None:
        summary["empirical"] = {
            "faults": report.empirical.faults,
            "detected": report.empirical.detected,
            "coverage": report.empirical.coverage,
            "result_key": report.empirical.result_key,
        }
    provenance = {
        "campaign": "design",
        "spec": spec.to_dict(),
        "key": key,
    }
    # served-from-store is visible only through the counters: a pure
    # hit is requests == hits with nothing recomputed
    stats = store.stats if store is not None else None
    hit = (
        stats is not None
        and stats.hits > 0
        and stats.misses == 0
        and stats.puts == 0
    )
    return summary, provenance, key, hit


def _run_decoder(cell: CampaignCell, store, cache: bool):
    from repro.design.engine import DesignEngine
    from repro.design.registry import checker_for
    from repro.design.spec import DesignSpec
    from repro.rom.nor_matrix import CheckedDecoder

    spec = DesignSpec.from_dict(cell.target)
    plan = DesignEngine().plan(spec)
    mapping = plan.row_mapping()
    checked = CheckedDecoder(mapping)
    checker = checker_for(mapping, structural=spec.structural_checkers)
    workload = _resolve_workload(cell.workload, 1 << spec.organization.p)
    faults = _population(cell, checked)
    result = _campaign_engine(cell, store, cache).decoder(
        checked,
        checker,
        faults,
        workload,
        attach_analytic=False,
        spec=spec.to_dict(),
    )
    return result


def _run_scheme(cell: CampaignCell, store, cache: bool):
    from repro.design.engine import DesignEngine
    from repro.design.spec import DesignSpec

    spec = DesignSpec.from_dict(cell.target)
    memory = DesignEngine().build(spec)
    workload = _resolve_workload(cell.workload, 1 << spec.organization.n)
    scenarios = _population(cell, memory)
    return _campaign_engine(cell, store, cache).scheme(
        memory, workload, scenarios
    )


def _run_transient(cell: CampaignCell, store, cache: bool):
    ram = _ram_target(cell.target)
    workload = _resolve_workload(cell.workload, ram.organization.words)
    scenarios = _population(cell, ram)
    return _campaign_engine(cell, store, cache).transient(
        ram, scenarios, workload
    )


def _run_march(cell: CampaignCell, store, cache: bool):
    from repro.memory.march import MARCH_TESTS

    ram = _ram_target(cell.target)
    name = (cell.workload or {}).get("test")
    if name not in MARCH_TESTS:
        raise ValueError(
            f"unknown march test {name!r}; known: {sorted(MARCH_TESTS)}"
        )
    scenarios = _population(cell, ram)
    return _campaign_engine(cell, store, cache).march(
        ram, scenarios, MARCH_TESTS[name]
    )


_CAMPAIGN_RUNNERS = {
    "decoder": _run_decoder,
    "scheme": _run_scheme,
    "transient": _run_transient,
    "march": _run_march,
}


def execute_cell(
    cell_dict: dict, store_root: Optional[str], cache: bool = True
) -> dict:
    """Run (or serve) one cell; always returns an outcome dict.

    Module-level and dict-in/dict-out so the process pool can ship it;
    every worker opens its own :class:`ResultStore` at ``store_root``,
    which doubles as the per-cell hit/miss/verified counter.
    """
    cell = CampaignCell.from_dict(cell_dict)
    store = ResultStore(store_root) if store_root else None
    start = time.perf_counter()
    try:
        if cell.family == "design":
            summary, provenance, key, hit = _run_design(cell, store, cache)
            status = "hit" if hit else "ran"
        else:
            result = _CAMPAIGN_RUNNERS[cell.family](cell, store, cache)
            summary = result.summary()
            provenance = (
                result.provenance.to_dict() if result.provenance else None
            )
            key = result.store_key
            status = "hit" if result.from_store else "ran"
    except Exception as exc:  # fail-soft: the suite must outlive a cell
        message = " ".join(str(exc).split()) or type(exc).__name__
        return CellOutcome(
            cell_id=cell.cell_id,
            family=cell.family,
            status="error",
            error=f"{type(exc).__name__}: {message}",
            wall_time_s=round(time.perf_counter() - start, 6),
            store=store.stats.to_dict() if store else None,
        ).to_dict()
    stats = store.stats if store is not None else None
    return CellOutcome(
        cell_id=cell.cell_id,
        family=cell.family,
        status=status,
        store_key=key,
        verified=(
            status == "hit"
            and stats is not None
            and stats.verified == stats.hits > 0
        ),
        summary=summary,
        provenance=provenance,
        wall_time_s=round(time.perf_counter() - start, 6),
        store=stats.to_dict() if stats is not None else None,
    ).to_dict()


# -- the runner ---------------------------------------------------------------


class SuiteRunner:
    """Run every cell of a :class:`SuiteSpec` under one artifact policy.

    ``store`` (a :class:`ResultStore` or its root path) makes the suite
    **resumable**: completed cells are served from disk on re-runs and
    after interruptions.  ``cache=False`` re-runs every cell but still
    refreshes the store.  ``workers=N`` bounds the process pool
    (``None``/1 = in-process serial, the default).  ``progress`` is
    called with one event dict per cell transition; a callback that
    raises is counted in :attr:`progress_errors` and never aborts the
    suite (observers are fail-soft, like cells).  ``should_stop`` is a
    zero-argument callable polled between cells — when it turns true
    the runner stops scheduling and returns the outcomes so far (the
    service layer's cooperative job cancellation).
    """

    def __init__(
        self,
        store: Optional[Union[ResultStore, str]] = None,
        cache: bool = True,
        workers: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        store = ResultStore.coerce(store)
        self.store_root = store.root if store is not None else None
        self.cache = cache
        self.workers = workers
        self.progress = progress
        self.should_stop = should_stop
        #: progress callbacks that raised (counted, never propagated)
        self.progress_errors = 0

    def _emit(self, event: dict) -> None:
        if self.progress is None:
            return
        try:
            self.progress(event)
        except Exception:
            # fail-soft: a broken observer must not abort the suite
            self.progress_errors += 1

    def _stopping(self) -> bool:
        return self.should_stop is not None and bool(self.should_stop())

    def run(
        self,
        suite: SuiteSpec,
        only: Optional[str] = None,
        engine: Optional[str] = None,
        lint: bool = False,
    ) -> SuiteReport:
        """Execute the suite and aggregate a :class:`SuiteReport`.

        ``only`` filters cells to one family; ``engine`` overrides
        every cell's engine policy (the CLI's ``--engine``, any of
        ``serial|packed|vector|auto``) — cell ids stay stable because
        the override is applied after expansion, not in the policy
        label.
        ``lint=True`` statically analyzes the suite first and raises
        :class:`~repro.analysis.AnalysisError` on any error finding
        (a cell that can never run, a target that does not build)
        before any campaign starts.
        Outcomes keep the suite's cell order regardless of pool
        completion order.
        """
        if lint:
            from repro.analysis import AnalysisError, analyze

            lint_report = analyze(suite)
            if not lint_report.ok:
                raise AnalysisError(lint_report)
        cells = suite.cells()
        if only is not None:
            cells = [cell for cell in cells if cell.family == only]
            if not cells:
                raise ValueError(
                    f"suite {suite.name!r} has no {only!r} cells "
                    f"(families: {suite.families()})"
                )
        if engine is not None:
            cells = [
                CampaignCell.from_dict(
                    {
                        **cell.to_dict(),
                        "policy": {**cell.policy, "engine": engine},
                    }
                )
                for cell in cells
            ]
        start = time.perf_counter()
        if self.workers is None or self.workers <= 1:
            outcomes = self._run_serial(cells)
        else:
            outcomes = self._run_pooled(cells)
        return SuiteReport(
            suite=suite.name,
            cells=outcomes,
            store_root=self.store_root,
            wall_time_s=round(time.perf_counter() - start, 6),
        )

    def _run_serial(self, cells: Sequence[CampaignCell]) -> List[CellOutcome]:
        outcomes: List[CellOutcome] = []
        total = len(cells)
        for index, cell in enumerate(cells):
            if self._stopping():
                break
            self._emit(
                {
                    "event": "start",
                    "cell": cell.cell_id,
                    "index": index,
                    "total": total,
                }
            )
            outcome = CellOutcome.from_dict(
                execute_cell(cell.to_dict(), self.store_root, self.cache)
            )
            outcomes.append(outcome)
            self._emit(
                {
                    "event": "done",
                    "cell": cell.cell_id,
                    "index": index,
                    "total": total,
                    "status": outcome.status,
                    "wall_time_s": outcome.wall_time_s,
                }
            )
        return outcomes

    def _run_pooled(self, cells: Sequence[CampaignCell]) -> List[CellOutcome]:
        total = len(cells)
        if self._stopping():
            return []
        outcomes: List[Optional[CellOutcome]] = [None] * total
        pool_size = min(self.workers, total) or 1
        with futures.ProcessPoolExecutor(max_workers=pool_size) as pool:
            pending = {
                pool.submit(
                    execute_cell,
                    cell.to_dict(),
                    self.store_root,
                    self.cache,
                ): index
                for index, cell in enumerate(cells)
            }
            for future in futures.as_completed(pending):
                index = pending[future]
                cell = cells[index]
                try:
                    outcome = CellOutcome.from_dict(future.result())
                except Exception as exc:  # a worker died: fail-soft too
                    message = " ".join(str(exc).split()) or "worker died"
                    outcome = CellOutcome(
                        cell_id=cell.cell_id,
                        family=cell.family,
                        status="error",
                        error=f"{type(exc).__name__}: {message}",
                    )
                outcomes[index] = outcome
                self._emit(
                    {
                        "event": "done",
                        "cell": cell.cell_id,
                        "index": index,
                        "total": total,
                        "status": outcome.status,
                        "wall_time_s": outcome.wall_time_s,
                    }
                )
                if self._stopping():
                    for queued in pending:
                        queued.cancel()
                    break
        return [outcome for outcome in outcomes if outcome is not None]
