"""Named scenario-population builders for suite cells.

A cell's ``scenarios`` entry names a builder registered here plus its
JSON parameters; the runner resolves the name against the *built*
target, so populations stay declarative ("every decoder stuck-at",
"one upset every STRIDE words") while the concrete fault lists are
derived from the target's real geometry at run time.

Plug in new populations the same way the design registries work::

    from repro.suite.populations import POPULATIONS

    @POPULATIONS.register("my-upsets")
    def _my_upsets(target, params):
        return [TransientScenario.single(0, bit=0, cycle=5)]

Builders take ``(target, params)`` — the built campaign target (a
checked decoder, a behavioural RAM, a self-checking memory) and the
cell's parameter dict — and return the scenario list the matching
:class:`~repro.scenarios.CampaignEngine` method consumes.
"""

from __future__ import annotations

from typing import List

from repro.design.registry import Registry

__all__ = ["POPULATIONS", "build_population", "check_population"]

POPULATIONS = Registry("scenario population")


def check_population(name: str) -> None:
    """Validate a population name at spec-load time (raises
    ``ValueError`` so malformed specs fail with a one-line
    diagnostic)."""
    if name not in POPULATIONS:
        raise ValueError(
            f"unknown scenario population {name!r}; "
            f"known: {POPULATIONS.names()}"
        )


def build_population(name: str, target, params: dict) -> List:
    check_population(name)
    return POPULATIONS.get(name)(target, params)


@POPULATIONS.register("decoder-stuck-ats")
def _decoder_stuck_ats(target, params: dict) -> List:
    """Exhaustive stuck-at list of a checked decoder (tree + ROM)."""
    from repro.faultsim.injector import decoder_fault_list

    return decoder_fault_list(target)


@POPULATIONS.register("upset-stride")
def _upset_stride(target, params: dict) -> List:
    """One single-event upset every ``stride`` words of a RAM, striking
    at ``cycle`` (the X6 population, geometry-derived)."""
    from repro.scenarios import TransientScenario

    stride = int(params.get("stride", 5))
    cycle = int(params.get("cycle", 16))
    words = target.organization.words
    stored_bits = target.word_width
    return [
        TransientScenario.single(
            address, bit=address % stored_bits, cycle=cycle
        )
        for address in range(0, words, stride)
    ]


@POPULATIONS.register("double-upset")
def _double_upset(target, params: dict) -> List:
    """Two flips in one word at the same cycle — the single-parity-bit
    escape (error observed, never detected)."""
    from repro.faultsim.transient import TransientUpset
    from repro.scenarios import TransientScenario

    address = int(params.get("address", 7))
    cycle = int(params.get("cycle", 16))
    bits = params.get("bits", (1, 4))
    return [
        TransientScenario(
            upsets=tuple(
                TransientUpset(address=address, bit=int(bit), cycle=cycle)
                for bit in bits
            )
        )
    ]


@POPULATIONS.register("march-classes")
def _march_classes(target, params: dict) -> List:
    """The X7 behavioural fault-class population, derived from the
    RAM's geometry: cell / data-line / mux-way stuck-ats plus coupling
    faults in both the read-state and write-triggered (CFid) models."""
    from repro.memory.faults import (
        CellStuckAt,
        CouplingFault,
        DataLineStuckAt,
        MuxLineStuckAt,
    )
    from repro.scenarios import MemoryScenario

    organization = target.organization
    words = organization.words
    bits = organization.bits
    mid = min(13, words - 1)
    faults = [
        CellStuckAt(address, bit, value)
        for address in (0, mid, words - 1)
        for bit in (0, bits - 1)
        for value in (0, 1)
    ]
    faults += [
        DataLineStuckAt(bit, value)
        for bit in (1, bits - 2)
        for value in (0, 1)
    ]
    faults += [
        MuxLineStuckAt(column, 2 % bits, value)
        for column in (0, organization.column_mux - 1)
        for value in (0, 1)
    ]
    aggressor, victim = 3 % words, 9 % words
    faults += [
        CouplingFault(aggressor, 0, victim, 0),
        CouplingFault(aggressor, 0, victim, 0, write_triggered=True),
        CouplingFault(
            victim, 1, aggressor, 1,
            trigger=0, forced=0, write_triggered=True,
        ),
    ]
    return [MemoryScenario(faults=(fault,)) for fault in faults]


@POPULATIONS.register("memory-stuck-ats")
def _memory_stuck_ats(target, params: dict) -> List:
    """A small behavioural stuck-at population for scheme cells."""
    from repro.memory.faults import CellStuckAt, DataLineStuckAt
    from repro.scenarios import MemoryScenario

    organization = target.organization
    words = organization.words
    bits = organization.bits
    scenarios = [
        MemoryScenario(faults=(CellStuckAt(address % words, bit, value),))
        for address, bit, value in (
            (5, 1, 1), (words - 1, 0, 0), (words // 2, bits - 1, 1)
        )
    ]
    scenarios.append(
        MemoryScenario(faults=(DataLineStuckAt(bits // 2, 1),))
    )
    return scenarios
