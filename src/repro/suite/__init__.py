"""`repro.suite` — the declarative campaign-suite orchestrator (1.5).

The batch layer over the campaign engine and the artifact store:

* :class:`SuiteSpec` — a JSON-round-trippable matrix of targets x
  workloads x scenario populations x engine policies, expanded into
  concrete :class:`CampaignCell`\\ s;
* :class:`SuiteRunner` — schedules cells over a bounded process pool
  with per-cell store lookup first (a hit skips the simulator),
  streaming progress callbacks and fail-soft error capture;
* :class:`SuiteReport` — per-cell outcomes + aggregate coverage /
  latency statistics and hit/miss/error counters, with the
  re-run-invariant payload under ``to_dict(stable_only=True)``;
* built-ins — :func:`builtin_suite`\\ (``"paper_grid"``) reproduces the
  paper's full result grid in one resumable invocation.

Quick path::

    from repro.suite import SuiteRunner, builtin_suite

    report = SuiteRunner(store=".repro-store").run(
        builtin_suite("paper_grid")
    )
    print(report.render())      # second run: all verified store hits

CLI: ``repro suite run|ls|show``.
"""

from repro.suite.builtin import (
    BUILTIN_SUITES,
    builtin_names,
    builtin_suite,
    load_suite,
)
from repro.suite.populations import POPULATIONS, build_population
from repro.suite.report import CellOutcome, SuiteReport
from repro.suite.runner import SuiteRunner, execute_cell
from repro.suite.spec import (
    FAMILIES,
    CampaignCell,
    MatrixBlock,
    SuiteSpec,
)

__all__ = [
    "FAMILIES",
    "CampaignCell",
    "MatrixBlock",
    "SuiteSpec",
    "POPULATIONS",
    "build_population",
    "SuiteRunner",
    "execute_cell",
    "CellOutcome",
    "SuiteReport",
    "BUILTIN_SUITES",
    "builtin_names",
    "builtin_suite",
    "load_suite",
]
