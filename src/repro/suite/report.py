"""`SuiteReport` — the aggregate outcome of one suite run.

The report separates what a suite *produced* (per-cell result
summaries, provenance, store keys — identical between a cold run and a
resumed run) from how the run *executed* (hit/miss/error status,
store counters, wall times).  Everything execution-dependent lives
under ``"execution"`` keys, at the cell level and at the top level, so

    SuiteReport.to_dict(stable_only=True)

is the re-run-invariant payload: running the same suite twice against
one store yields byte-identical stable dicts while the execution blocks
flip from misses to verified hits.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["CellOutcome", "SuiteReport"]


@dataclass
class CellOutcome:
    """One cell's result + how it was obtained.

    ``status`` is ``"hit"`` (served from the store, simulator never
    invoked), ``"ran"`` (computed fresh) or ``"error"`` (fail-soft
    capture; ``error`` holds the one-line diagnostic).
    """

    cell_id: str
    family: str
    status: str
    store_key: Optional[str] = None
    #: the hit was hash-verified against the stored digest
    verified: bool = False
    #: ``result.summary()`` for campaign cells; code/area/escape for
    #: design cells
    summary: Optional[dict] = None
    provenance: Optional[dict] = None
    error: Optional[str] = None
    wall_time_s: float = 0.0
    #: per-cell store counter deltas (requests/hits/misses/puts/verified)
    store: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.status != "error"

    def to_dict(self, stable_only: bool = False) -> dict:
        stable = {
            "cell": self.cell_id,
            "family": self.family,
            "store_key": self.store_key,
            "summary": self.summary,
            "provenance": self.provenance,
            "error": self.error,
        }
        if stable_only:
            return stable
        stable["execution"] = {
            "status": self.status,
            "verified": self.verified,
            "wall_time_s": self.wall_time_s,
            "store": self.store,
        }
        return stable

    @classmethod
    def from_dict(cls, data: dict) -> "CellOutcome":
        execution = data.get("execution") or {}
        return cls(
            cell_id=data["cell"],
            family=data["family"],
            status=execution.get("status", "ran"),
            store_key=data.get("store_key"),
            verified=bool(execution.get("verified", False)),
            summary=data.get("summary"),
            provenance=data.get("provenance"),
            error=data.get("error"),
            wall_time_s=float(execution.get("wall_time_s", 0.0)),
            store=execution.get("store"),
        )


@dataclass
class SuiteReport:
    """Every cell's outcome plus suite-level aggregation."""

    suite: str
    cells: List[CellOutcome] = field(default_factory=list)
    store_root: Optional[str] = None
    wall_time_s: float = 0.0

    # -- counters ------------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(1 for cell in self.cells if cell.status == "hit")

    @property
    def simulated(self) -> int:
        """Cells that actually computed (the resume assertion: a fully
        resumed suite has ``simulated == 0``)."""
        return sum(1 for cell in self.cells if cell.status == "ran")

    @property
    def errors(self) -> int:
        return sum(1 for cell in self.cells if cell.status == "error")

    @property
    def verified_hits(self) -> int:
        return sum(
            1 for cell in self.cells
            if cell.status == "hit" and cell.verified
        )

    # -- aggregation ---------------------------------------------------------

    def totals(self) -> Dict[str, object]:
        """Coverage / latency statistics over every campaign cell's
        summary, overall and per family."""
        counts = {"faults": 0, "detected": 0}
        family_counts: Dict[str, Dict[str, int]] = {}
        worst: Optional[int] = None
        latency_sum = 0.0
        latency_cells = 0
        for cell in self.cells:
            summary = cell.summary or {}
            if "faults" not in summary:
                continue
            bucket = family_counts.setdefault(
                cell.family, {"faults": 0, "detected": 0}
            )
            for scope in (counts, bucket):
                scope["faults"] += summary.get("faults", 0)
                scope["detected"] += summary.get("detected", 0)
            mean = summary.get("mean_detection_cycle")
            if mean is not None:
                latency_sum += mean
                latency_cells += 1
            peak = summary.get("max_detection_cycle")
            if peak is not None:
                worst = peak if worst is None else max(worst, peak)

        def rollup(scope: Dict[str, int]) -> Dict[str, object]:
            faults = scope["faults"]
            coverage = (
                round(scope["detected"] / faults, 6) if faults else None
            )
            return {**scope, "coverage": coverage}

        overall: Dict[str, object] = rollup(counts)
        overall["mean_detection_cycle"] = (
            round(latency_sum / latency_cells, 4) if latency_cells else None
        )
        overall["max_detection_cycle"] = worst
        overall["by_family"] = {
            family: rollup(bucket)
            for family, bucket in family_counts.items()
        }
        return overall

    # -- serialisation -------------------------------------------------------

    def to_dict(self, stable_only: bool = False) -> dict:
        """The full payload; ``stable_only=True`` drops every
        execution/timing field (see module docstring)."""
        data = {
            "suite": self.suite,
            "cells": [
                cell.to_dict(stable_only=stable_only)
                for cell in self.cells
            ],
            "totals": self.totals(),
        }
        if not stable_only:
            data["execution"] = {
                "cells": len(self.cells),
                "hits": self.hits,
                "simulated": self.simulated,
                "errors": self.errors,
                "verified_hits": self.verified_hits,
                "store_root": self.store_root,
                "wall_time_s": self.wall_time_s,
            }
        return data

    def to_json(
        self, indent: Optional[int] = 2, stable_only: bool = False
    ) -> str:
        return json.dumps(
            self.to_dict(stable_only=stable_only), indent=indent
        )

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteReport":
        execution = data.get("execution") or {}
        return cls(
            suite=data.get("suite", ""),
            cells=[
                CellOutcome.from_dict(cell)
                for cell in data.get("cells", ())
            ],
            store_root=execution.get("store_root"),
            wall_time_s=float(execution.get("wall_time_s", 0.0)),
        )

    def render(self) -> str:
        from repro.experiments.common import format_table

        totals = self.totals()
        out = io.StringIO()
        out.write(
            f"suite {self.suite} — {len(self.cells)} cells: "
            f"{self.hits} store hit(s) "
            f"({self.verified_hits} verified), "
            f"{self.simulated} simulated, {self.errors} error(s) "
            f"in {self.wall_time_s:.2f}s\n"
        )
        if self.store_root:
            out.write(f"store: {self.store_root}\n")
        rows = []
        for cell in self.cells:
            summary = cell.summary or {}
            if cell.status == "error":
                detail = cell.error or "?"
            elif "faults" in summary:
                coverage = summary.get("coverage")
                detail = (
                    f"{summary.get('detected')}/{summary.get('faults')} "
                    f"detected"
                    + (f" ({coverage})" if coverage is not None else "")
                )
            else:
                detail = ", ".join(
                    f"{key}={value}"
                    for key, value in summary.items()
                    if not isinstance(value, dict)
                )
            rows.append(
                [
                    cell.cell_id,
                    cell.status + ("*" if cell.verified else ""),
                    (cell.store_key or "")[:12],
                    f"{cell.wall_time_s * 1e3:.0f}ms",
                    detail,
                ]
            )
        out.write(format_table(
            ["cell", "status", "key", "time", "result"], rows
        ))
        coverage = totals.get("coverage")
        out.write(
            f"\ntotals: {totals['detected']}/{totals['faults']} detected"
            + (f" (coverage {coverage})" if coverage is not None else "")
            + "\n(status 'hit*' = hash-verified store hit, simulator "
            "never invoked)\n"
        )
        return out.getvalue()
