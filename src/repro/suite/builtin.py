"""Built-in suites, most importantly ``paper_grid`` — the paper's full
result grid as one declarative, resumable invocation.

``paper_grid`` covers:

* **Table 1** — Pndc = 1e-9, c swept over {2, 5, 10, 20, 30, 40}, on
  all three paper RAMs (analytic design reports);
* **Table 2** — c = 10, Pndc swept down to 1e-30, same organisations
  (the (10, 1e-9) row is Table 1's c=10 column and is not duplicated);
* **decoder campaigns** — the empirical counterpart: exhaustive
  row-decoder stuck-at injection on each paper organisation's built
  scheme under uniform traffic;
* **transient campaigns** — the X6 upset population across the
  workload families (uniform / sequential / bursty / two scrub rates)
  plus the double-upset parity escape;
* **march campaigns** — the X7 fault classes under all four classical
  march algorithms.

``smoke`` is a seconds-scale miniature of the same shape, used by the
example, the bench and the tests.

Suites are plain :class:`~repro.suite.spec.SuiteSpec` values —
``repro suite show paper_grid`` prints the expanded matrix, and
``SuiteSpec.to_json()`` of a built-in is a valid starting point for a
custom spec file.
"""

from __future__ import annotations

from typing import List

from repro.design.registry import Registry
from repro.suite.spec import MatrixBlock, SuiteSpec

__all__ = ["BUILTIN_SUITES", "builtin_names", "builtin_suite", "load_suite"]

BUILTIN_SUITES = Registry("suite")


def builtin_names() -> List[str]:
    return BUILTIN_SUITES.names()


def builtin_suite(name: str) -> SuiteSpec:
    """A built-in suite by name (``ValueError`` with the known names on
    a miss, so the CLI prints a one-line diagnostic)."""
    if name not in BUILTIN_SUITES:
        raise ValueError(
            f"unknown suite {name!r}; built-ins: {builtin_names()} "
            f"(or pass a spec-file path)"
        )
    return BUILTIN_SUITES.get(name)()


def load_suite(name_or_path: str) -> SuiteSpec:
    """Resolve the CLI's suite argument: a spec-file path if one exists
    at that location, else a built-in name."""
    import os

    if os.path.isfile(name_or_path):
        with open(name_or_path) as handle:
            text = handle.read()
        try:
            return SuiteSpec.from_json(text)
        except ValueError as exc:
            raise ValueError(f"{name_or_path}: {exc}") from None
    return builtin_suite(name_or_path)


def _spec_dicts(requirements, **common) -> List[dict]:
    from repro.design.spec import DesignSpec
    from repro.memory.organization import PAPER_ORGS

    return [
        DesignSpec.for_organization(
            org, c=c, pndc=pndc, **common
        ).to_dict()
        for org in PAPER_ORGS
        for c, pndc in requirements
    ]


@BUILTIN_SUITES.register("paper_grid")
def _paper_grid() -> SuiteSpec:
    from repro.scenarios import Workload

    table1 = MatrixBlock(
        family="design",
        label="table1",
        targets=tuple(
            _spec_dicts([(c, 1e-9) for c in (2, 5, 10, 20, 30, 40)])
        ),
    )
    # Table 2's (c=10, 1e-9) row is already covered by Table 1's c=10
    # column — the same content address — so it is not repeated here:
    # a cold run stays a clean all-miss run
    table2 = MatrixBlock(
        family="design",
        label="table2",
        targets=tuple(
            _spec_dicts(
                [
                    (10, pndc)
                    for pndc in (1e-2, 1e-5, 1e-15, 1e-20, 1e-30)
                ]
            )
        ),
    )
    decoder = MatrixBlock(
        family="decoder",
        label="decoder",
        targets=tuple(_spec_dicts([(10, 1e-9)])),
        workloads=({"family": "uniform", "cycles": 192, "seed": 7},),
        scenarios={"population": "decoder-stuck-ats"},
    )
    transient_words, transient_cycles, seed = 256, 2048, 5
    transient = MatrixBlock(
        family="transient",
        label="transient",
        targets=({"words": transient_words, "bits": 8, "column_mux": 8},),
        workloads=(
            {"family": "uniform", "cycles": transient_cycles, "seed": seed},
            {
                "family": "sequential",
                "cycles": transient_cycles,
                "seed": seed,
            },
            {"family": "bursty", "cycles": transient_cycles, "seed": seed},
            Workload.scrubbed(
                transient_words, transient_cycles, scrub_period=8, seed=seed
            ).to_dict(),
            Workload.scrubbed(
                transient_words, transient_cycles, scrub_period=2, seed=seed
            ).to_dict(),
        ),
        scenarios={"population": "upset-stride", "stride": 5, "cycle": 16},
    )
    escape = MatrixBlock(
        family="transient",
        label="escape",
        targets=({"words": transient_words, "bits": 8, "column_mux": 8},),
        workloads=(
            {"family": "uniform", "cycles": transient_cycles, "seed": seed},
        ),
        scenarios={"population": "double-upset"},
    )
    march = MatrixBlock(
        family="march",
        label="march",
        targets=({"words": 64, "bits": 8, "column_mux": 4},),
        workloads=(
            {"test": "MATS+"},
            {"test": "March X"},
            {"test": "March Y"},
            {"test": "March C-"},
        ),
        scenarios={"population": "march-classes"},
    )
    return SuiteSpec(
        name="paper_grid",
        description=(
            "Table 1 + Table 2 design sweep, empirical decoder "
            "campaigns, transient workload grid and march coverage "
            "matrix — the paper's full result grid in one run"
        ),
        blocks=(table1, table2, decoder, transient, escape, march),
    )


@BUILTIN_SUITES.register("smoke")
def _smoke() -> SuiteSpec:
    """A seconds-scale miniature exercising every family (example,
    bench and CI material)."""
    design = MatrixBlock(
        family="design",
        label="design",
        targets=(
            {"words": 256, "bits": 8, "c": 10, "pndc": 1e-9},
            {"words": 256, "bits": 8, "c": 2, "pndc": 1e-9},
        ),
    )
    decoder = MatrixBlock(
        family="decoder",
        label="decoder",
        targets=({"words": 256, "bits": 8, "c": 10, "pndc": 1e-9},),
        workloads=({"family": "uniform", "cycles": 96, "seed": 3},),
        scenarios={"population": "decoder-stuck-ats"},
    )
    scheme = MatrixBlock(
        family="scheme",
        label="scheme",
        targets=({"words": 64, "bits": 8, "column_mux": 4, "c": 10},),
        workloads=({"family": "uniform", "cycles": 96, "seed": 3},),
        scenarios={"population": "memory-stuck-ats"},
    )
    transient = MatrixBlock(
        family="transient",
        label="transient",
        targets=({"words": 32, "bits": 8, "column_mux": 4},),
        workloads=(
            {"family": "uniform", "cycles": 256, "seed": 1},
            {"family": "scrubbed", "cycles": 256, "seed": 1},
        ),
        scenarios={"population": "upset-stride", "stride": 4, "cycle": 8},
    )
    march = MatrixBlock(
        family="march",
        label="march",
        targets=({"words": 32, "bits": 8, "column_mux": 4},),
        workloads=({"test": "MATS+"}, {"test": "March C-"}),
        scenarios={"population": "march-classes"},
    )
    return SuiteSpec(
        name="smoke",
        description="fast end-to-end suite across every campaign family",
        blocks=(design, decoder, scheme, transient, march),
    )
