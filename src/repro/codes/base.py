"""Abstract interface shared by every error-detecting code in the library.

A *code* here is a finite set of bit vectors (code words) of a fixed
length, together with (optionally) an encoder from information words.  The
paper manipulates codes both ways:

* as a *code space* — "is this output vector a code word?" (checkers),
* as an *encoder* — "what code word does this information word map to?"
  (the ROM matrix programming, the parity bit of the data path).

Concrete subclasses: :class:`~repro.codes.parity.ParityCode`,
:class:`~repro.codes.berger.BergerCode`,
:class:`~repro.codes.m_out_of_n.MOutOfNCode`,
:class:`~repro.codes.two_rail.TwoRailCode`,
:class:`~repro.codes.hamming.HammingCode`.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence, Tuple

BitVector = Tuple[int, ...]

__all__ = ["BitVector", "Code", "validate_bits"]


def validate_bits(bits: Sequence[int]) -> BitVector:
    """Normalise a bit sequence to a tuple and reject non-binary entries."""
    vec = tuple(bits)
    for bit in vec:
        if bit not in (0, 1):
            raise ValueError(f"bit vector may contain only 0/1, got {bit!r}")
    return vec


class Code(abc.ABC):
    """A finite block code over GF(2), seen as a set of code words."""

    #: total length of each code word in bits
    length: int

    @abc.abstractmethod
    def is_codeword(self, word: Sequence[int]) -> bool:
        """True iff ``word`` belongs to the code."""

    @abc.abstractmethod
    def words(self) -> Iterator[BitVector]:
        """Iterate over every code word (order is implementation-defined)."""

    def cardinality(self) -> int:
        """Number of code words.  Subclasses override with a closed form."""
        return sum(1 for _ in self.words())

    # -- properties the paper relies on ------------------------------------

    def is_unordered(self) -> bool:
        """True iff no code word covers another (see :mod:`repro.codes.unordered`).

        Unorderedness is the property that makes the NOR-matrix scheme
        work: the bitwise AND of two *distinct* unordered code words is
        covered by both, hence cannot itself be a code word.
        """
        from repro.codes.unordered import is_unordered_code

        return is_unordered_code(self.words())

    def minimum_distance(self) -> int:
        """Minimum pairwise Hamming distance (exhaustive; small codes only)."""
        from repro.utils.bitops import hamming_distance

        words = list(self.words())
        if len(words) < 2:
            raise ValueError("minimum distance needs at least two code words")
        return min(
            hamming_distance(a, b)
            for i, a in enumerate(words)
            for b in words[i + 1 :]
        )

    def assert_contains(self, word: Sequence[int]) -> None:
        """Raise ``ValueError`` unless ``word`` is a code word."""
        if not self.is_codeword(word):
            raise ValueError(f"{tuple(word)} is not a code word of {self!r}")

    def noncode_words(self) -> Iterable[BitVector]:
        """Iterate every *non*-code word of the ambient space (2^length words).

        Only sensible for short codes; used by the checker property
        verifiers (code-disjointness needs the full non-code space).
        """
        from repro.utils.bitops import all_bit_vectors

        members = set(self.words())
        for vec in all_bit_vectors(self.length):
            if vec not in members:
                yield vec
