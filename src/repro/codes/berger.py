"""Berger code — the unordered systematic code referenced in §III.

A Berger code word is ``information bits + check bits``, where the check
bits are the binary count of the *zeros* in the information bits.  Berger
codes are the cheapest *systematic* unordered codes: any 0->1 error
strictly decreases the zero count while possibly increasing the stored
count, so no code word can cover another.

The paper cites the Berger variant of Nicolaidis'94 (check bits over the
decoder *inputs*) as the zero-latency endpoint of the trade-off, and the
mod-a construction uses ``(n-k) + ceil(log2(n-k))`` ROM outputs when built
from a truncated Berger mapping (§III.1).
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.codes.base import BitVector, Code, validate_bits
from repro.utils.bitops import all_bit_vectors, bits_to_int, int_to_bits

__all__ = ["BergerCode", "berger_check_width"]


def berger_check_width(info_bits: int) -> int:
    """Number of check bits: ``ceil(log2(info_bits + 1))``.

    The zero count ranges over ``0 .. info_bits`` inclusive, hence needs
    ``ceil(log2(info_bits + 1))`` bits.

    >>> berger_check_width(4)
    3
    >>> berger_check_width(3)
    2
    """
    if info_bits < 1:
        raise ValueError(f"info_bits must be >= 1, got {info_bits}")
    return max(1, math.ceil(math.log2(info_bits + 1)))


class BergerCode(Code):
    """Berger code over ``info_bits`` information bits.

    >>> code = BergerCode(3)
    >>> code.encode((0, 1, 0))       # two zeros -> check bits 10
    (0, 1, 0, 1, 0)
    >>> code.is_unordered()
    True
    """

    def __init__(self, info_bits: int):
        self.info_bits = info_bits
        self.check_bits = berger_check_width(info_bits)
        self.length = self.info_bits + self.check_bits

    def __repr__(self) -> str:
        return f"BergerCode(info_bits={self.info_bits})"

    def check_value(self, info: Sequence[int]) -> int:
        """Zero count of the information part."""
        info = validate_bits(info)
        if len(info) != self.info_bits:
            raise ValueError(
                f"expected {self.info_bits} information bits, got {len(info)}"
            )
        return self.info_bits - sum(info)

    def encode(self, info: Sequence[int]) -> BitVector:
        info = validate_bits(info)
        check = int_to_bits(self.check_value(info), self.check_bits)
        return info + check

    def is_codeword(self, word: Sequence[int]) -> bool:
        word = validate_bits(word)
        if len(word) != self.length:
            return False
        info, check = word[: self.info_bits], word[self.info_bits :]
        return bits_to_int(check) == self.info_bits - sum(info)

    def words(self) -> Iterator[BitVector]:
        for info in all_bit_vectors(self.info_bits):
            yield self.encode(info)

    def cardinality(self) -> int:
        return 1 << self.info_bits
