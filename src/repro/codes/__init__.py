"""Error-detecting codes used by the self-checking memory scheme.

* :class:`ParityCode` — single parity bit protecting the data path (§II).
* :class:`MOutOfNCode` — q-out-of-r unordered codes for the decoder-check
  ROM (§III), with a canonical dense indexing used by the mod-a mapping.
* :class:`BergerCode` — systematic unordered code (cited variants of the
  zero-latency endpoint).
* :class:`TwoRailCode` — checker-internal code.
* :class:`HammingCode` — SEC / SEC-DED baseline for comparisons.
* :mod:`repro.codes.unordered` — predicates proving the covering
  properties the scheme relies on.
"""

from repro.codes.base import BitVector, Code, validate_bits
from repro.codes.berger import BergerCode, berger_check_width
from repro.codes.hamming import DecodeResult, HammingCode, hamming_check_bits
from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.codes.parity import ParityCode
from repro.codes.two_rail import TwoRailCode
from repro.codes.unordered import (
    and_of_distinct_words_is_noncode,
    bitwise_and,
    covers,
    is_unordered_code,
    violating_pairs,
)

__all__ = [
    "BitVector",
    "Code",
    "validate_bits",
    "ParityCode",
    "BergerCode",
    "berger_check_width",
    "MOutOfNCode",
    "maximal_code_for_width",
    "TwoRailCode",
    "HammingCode",
    "DecodeResult",
    "hamming_check_bits",
    "covers",
    "bitwise_and",
    "is_unordered_code",
    "violating_pairs",
    "and_of_distinct_words_is_noncode",
]
