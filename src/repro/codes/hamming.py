"""Hamming SEC and SEC-DED codes — the classical ECC baseline.

The paper's scheme is *error detecting* (parity on the data path, unordered
codes on the decoders).  The standard industrial alternative for memory
protection is a Hamming single-error-correcting (SEC) code, optionally
extended with an overall parity bit for double-error detection (SEC-DED,
Hsiao-style).  We implement it as a baseline so the trade-off benches can
compare check-bit overheads (an ECC word of m data bits needs
``ceil(log2(m)) + 1``-ish check bits versus the single parity bit of the
paper) and so the memory substrate can model corrected-vs-detected
behaviour.

Layout convention: systematic — ``word = data + check`` with check bits
appended.  Internally the encoder uses the textbook positional Hamming
construction (check bits at power-of-two positions) and permutes to the
systematic layout.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.codes.base import BitVector, Code, validate_bits
from repro.utils.bitops import all_bit_vectors

__all__ = ["HammingCode", "hamming_check_bits", "DecodeResult"]


def hamming_check_bits(data_bits: int) -> int:
    """Minimum ``p`` with ``2**p >= data_bits + p + 1`` (SEC check bits).

    >>> hamming_check_bits(4)
    3
    >>> hamming_check_bits(16)
    5
    >>> hamming_check_bits(64)
    7
    """
    if data_bits < 1:
        raise ValueError(f"data_bits must be >= 1, got {data_bits}")
    p = 1
    while (1 << p) < data_bits + p + 1:
        p += 1
    return p


class DecodeResult:
    """Outcome of decoding a possibly corrupted ECC word."""

    __slots__ = ("data", "corrected", "detected_uncorrectable")

    def __init__(
        self,
        data: Optional[BitVector],
        corrected: bool,
        detected_uncorrectable: bool,
    ):
        self.data = data
        self.corrected = corrected
        self.detected_uncorrectable = detected_uncorrectable

    def __repr__(self) -> str:
        return (
            f"DecodeResult(data={self.data}, corrected={self.corrected}, "
            f"detected_uncorrectable={self.detected_uncorrectable})"
        )


class HammingCode(Code):
    """Hamming SEC code, optionally extended to SEC-DED.

    >>> code = HammingCode(4)
    >>> word = code.encode((1, 0, 1, 1))
    >>> code.is_codeword(word)
    True
    >>> flipped = list(word); flipped[2] ^= 1
    >>> code.decode(flipped).data
    (1, 0, 1, 1)
    """

    def __init__(self, data_bits: int, extended: bool = False):
        if data_bits < 1:
            raise ValueError(f"data_bits must be >= 1, got {data_bits}")
        self.data_bits = data_bits
        self.extended = extended
        self.sec_check_bits = hamming_check_bits(data_bits)
        self.check_bits = self.sec_check_bits + (1 if extended else 0)
        self.length = data_bits + self.check_bits
        # Positional layout of the inner SEC code (1-indexed positions).
        self._positional_len = data_bits + self.sec_check_bits
        self._data_positions = [
            pos
            for pos in range(1, self._positional_len + 1)
            if pos & (pos - 1) != 0  # not a power of two
        ]
        self._check_positions = [
            1 << i for i in range(self.sec_check_bits)
        ]

    def __repr__(self) -> str:
        kind = "SEC-DED" if self.extended else "SEC"
        return f"HammingCode(data_bits={self.data_bits}, {kind})"

    # -- encoding ------------------------------------------------------------

    def _positional_encode(self, data: Sequence[int]) -> List[int]:
        """Fill data bits, then compute check bits at power-of-two slots."""
        word = [0] * (self._positional_len + 1)  # 1-indexed; word[0] unused
        for bit, pos in zip(data, self._data_positions):
            word[pos] = bit
        for check_pos in self._check_positions:
            acc = 0
            for pos in range(1, self._positional_len + 1):
                if pos != check_pos and pos & check_pos:
                    acc ^= word[pos]
            word[check_pos] = acc
        return word

    def encode(self, data: Sequence[int]) -> BitVector:
        """Systematic code word ``data + check (+ overall parity)``."""
        data = validate_bits(data)
        if len(data) != self.data_bits:
            raise ValueError(
                f"expected {self.data_bits} data bits, got {len(data)}"
            )
        word = self._positional_encode(data)
        check = tuple(word[pos] for pos in self._check_positions)
        out = data + check
        if self.extended:
            out = out + (sum(out) & 1,)
        return out

    def _syndrome(self, word: Sequence[int]) -> Tuple[int, int]:
        """(syndrome, overall_parity_error) of a systematic word."""
        data = word[: self.data_bits]
        check = word[self.data_bits : self.data_bits + self.sec_check_bits]
        positional = [0] * (self._positional_len + 1)
        for bit, pos in zip(data, self._data_positions):
            positional[pos] = bit
        for bit, pos in zip(check, self._check_positions):
            positional[pos] = bit
        syndrome = 0
        for check_pos in self._check_positions:
            acc = 0
            for pos in range(1, self._positional_len + 1):
                if pos & check_pos:
                    acc ^= positional[pos]
            if acc:
                syndrome |= check_pos
        parity_error = 0
        if self.extended:
            parity_error = sum(word) & 1
        return syndrome, parity_error

    def is_codeword(self, word: Sequence[int]) -> bool:
        word = validate_bits(word)
        if len(word) != self.length:
            return False
        syndrome, parity_error = self._syndrome(word)
        return syndrome == 0 and parity_error == 0

    def decode(self, word: Sequence[int]) -> DecodeResult:
        """Correct single-bit errors; flag double errors when extended.

        Returns the corrected data (or None when an uncorrectable error is
        detected in SEC-DED mode).
        """
        word = validate_bits(word)
        if len(word) != self.length:
            raise ValueError(f"expected {self.length} bits, got {len(word)}")
        syndrome, parity_error = self._syndrome(word)
        if syndrome == 0 and parity_error == 0:
            return DecodeResult(word[: self.data_bits], False, False)
        if self.extended and syndrome != 0 and parity_error == 0:
            # Nonzero syndrome with even overall parity => double error.
            return DecodeResult(None, False, True)
        if syndrome == 0 and parity_error == 1:
            # Error confined to the overall parity bit itself.
            return DecodeResult(word[: self.data_bits], True, False)
        # Single-bit error at positional index `syndrome`.
        if syndrome > self._positional_len:
            return DecodeResult(None, False, True)
        fixed = list(word)
        if syndrome in self._check_positions:
            idx = self.data_bits + self._check_positions.index(syndrome)
        else:
            idx = self._data_positions.index(syndrome)
        fixed[idx] ^= 1
        return DecodeResult(tuple(fixed[: self.data_bits]), True, False)

    def words(self) -> Iterator[BitVector]:
        for data in all_bit_vectors(self.data_bits):
            yield self.encode(data)

    def cardinality(self) -> int:
        return 1 << self.data_bits
