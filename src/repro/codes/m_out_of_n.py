"""m-out-of-n (constant-weight) codes — the unordered codes of the scheme.

An m-out-of-n code word is an n-bit vector with exactly m ones.  These are
the non-systematic unordered codes the paper selects for the decoder-check
ROM: for a given number of code words they need the minimum width, attained
at ``m = floor(n/2)`` (or ``ceil``), whose cardinality is the central
binomial coefficient.

The module also fixes a canonical *indexing* of the code words
(colexicographic, i.e. combinations in sorted order), which is what the
mod-a mapping of §III.1 needs: "let us associate, with each value
0 <= B < a, a code word of the q-out-of-r code".
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Sequence, Tuple

from repro.codes.base import BitVector, Code, validate_bits
from repro.utils.combinatorics import binomial

__all__ = ["MOutOfNCode", "maximal_code_for_width"]


class MOutOfNCode(Code):
    """The m-out-of-n constant-weight code.

    >>> code = MOutOfNCode(3, 5)
    >>> code.cardinality()
    10
    >>> code.is_codeword((1, 1, 1, 0, 0))
    True
    >>> code.is_codeword((1, 1, 0, 0, 0))
    False
    >>> code.is_unordered()
    True
    """

    def __init__(self, m: int, n: int):
        if n < 1:
            raise ValueError(f"code width n must be >= 1, got {n}")
        if not 0 < m < n:
            raise ValueError(
                f"weight m must satisfy 0 < m < n, got m={m}, n={n}"
            )
        self.m = m
        self.n = n
        self.length = n

    def __repr__(self) -> str:
        return f"MOutOfNCode({self.m}-out-of-{self.n})"

    @property
    def name(self) -> str:
        """Human-readable name, e.g. ``'3-out-of-5'`` as printed in the tables."""
        return f"{self.m}-out-of-{self.n}"

    def is_codeword(self, word: Sequence[int]) -> bool:
        word = validate_bits(word)
        return len(word) == self.n and sum(word) == self.m

    def words(self) -> Iterator[BitVector]:
        """Code words in canonical (index) order; see :meth:`word_at`."""
        for index in range(self.cardinality()):
            yield self.word_at(index)

    def cardinality(self) -> int:
        return binomial(self.n, self.m)

    # -- canonical indexing --------------------------------------------------

    def word_at(self, index: int) -> BitVector:
        """The ``index``-th code word under the canonical combination order.

        Positions of the 1s enumerate ``itertools.combinations(range(n), m)``
        in lexicographic order of the position tuples.  This ordering is
        stable, dense and cheap to invert, which is all the mod-a mapping
        requires.

        >>> MOutOfNCode(2, 4).word_at(0)
        (1, 1, 0, 0)
        >>> MOutOfNCode(2, 4).word_at(5)
        (0, 0, 1, 1)
        """
        size = self.cardinality()
        if not 0 <= index < size:
            raise ValueError(f"index {index} out of range [0, {size})")
        positions = self._unrank(index)
        word = [0] * self.n
        for pos in positions:
            word[pos] = 1
        return tuple(word)

    def index_of(self, word: Sequence[int]) -> int:
        """Inverse of :meth:`word_at`.

        >>> code = MOutOfNCode(3, 5)
        >>> all(code.index_of(code.word_at(i)) == i for i in range(10))
        True
        """
        word = validate_bits(word)
        self.assert_contains(word)
        positions = tuple(i for i, bit in enumerate(word) if bit)
        return self._rank(positions)

    def _rank(self, positions: Tuple[int, ...]) -> int:
        """Lexicographic rank of a sorted m-tuple of positions."""
        rank = 0
        prev = -1
        for slot, pos in enumerate(positions):
            for skipped in range(prev + 1, pos):
                rank += binomial(self.n - skipped - 1, self.m - slot - 1)
            prev = pos
        return rank

    def _unrank(self, rank: int) -> List[int]:
        """Inverse of :meth:`_rank` without materialising all combinations."""
        positions: List[int] = []
        candidate = 0
        remaining = rank
        for slot in range(self.m):
            while True:
                block = binomial(self.n - candidate - 1, self.m - slot - 1)
                if remaining < block:
                    positions.append(candidate)
                    candidate += 1
                    break
                remaining -= block
                candidate += 1
        return positions

    # -- convenience ---------------------------------------------------------

    def all_words_list(self) -> List[BitVector]:
        """All code words as a list (small codes only; used in tests)."""
        return [
            tuple(1 if i in combo else 0 for i in range(self.n))
            for combo in combinations(range(self.n), self.m)
        ]


def maximal_code_for_width(r: int) -> MOutOfNCode:
    """The densest constant-weight code of width ``r``: floor(r/2)-out-of-r.

    For odd r the paper writes q = ceil(r/2) or floor(r/2) interchangeably
    (same cardinality); we normalise to the *paper's table convention*,
    which prints the larger weight for odd r (3-out-of-5, 5-out-of-9,
    7-out-of-13, 9-out-of-18 is even r).  Cardinality is identical either
    way; only the printed name changes.

    >>> maximal_code_for_width(5).name
    '3-out-of-5'
    >>> maximal_code_for_width(4).name
    '2-out-of-4'
    """
    if r < 2:
        raise ValueError(f"need width >= 2 for a non-trivial code, got {r}")
    q = (r + 1) // 2 if r % 2 else r // 2
    return MOutOfNCode(q, r)
