"""Unordered-code predicates — the combinatorial heart of the scheme.

A code is *unordered* when no code word covers another: there is no pair
(u, v), u != v, with u having 1s in every position where v has 1s.  The
paper's §III rationale reduces decoder-fault detection to two facts about
unordered codes, both provided here as checkable predicates:

* the all-ones vector is never a code word of an unordered code with more
  than one word (stuck-at-0 faults deselect every line, the NOR matrix
  emits all 1s, detection is immediate);
* the bitwise AND of two distinct code words is covered by both, hence is
  a non-code word (stuck-at-1 faults select two lines, the NOR matrix
  emits the AND of their code words).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.codes.base import BitVector, validate_bits

__all__ = [
    "covers",
    "bitwise_and",
    "is_unordered_code",
    "violating_pairs",
    "and_of_distinct_words_is_noncode",
]


def covers(u: Sequence[int], v: Sequence[int]) -> bool:
    """True iff ``u`` covers ``v`` (u has a 1 wherever v does).

    >>> covers((1, 1, 0), (1, 0, 0))
    True
    >>> covers((1, 0, 0), (0, 1, 0))
    False
    """
    u, v = validate_bits(u), validate_bits(v)
    if len(u) != len(v):
        raise ValueError(f"length mismatch: {len(u)} vs {len(v)}")
    return all(ub >= vb for ub, vb in zip(u, v))


def bitwise_and(u: Sequence[int], v: Sequence[int]) -> BitVector:
    """Bitwise AND of two bit vectors — what a NOR matrix emits when a
    stuck-at-1 decoder fault selects two word lines at once."""
    u, v = validate_bits(u), validate_bits(v)
    if len(u) != len(v):
        raise ValueError(f"length mismatch: {len(u)} vs {len(v)}")
    return tuple(ub & vb for ub, vb in zip(u, v))


def violating_pairs(
    words: Iterable[Sequence[int]],
) -> List[Tuple[BitVector, BitVector]]:
    """All ordered pairs (u, v), u != v, where u covers v.

    Empty iff the code is unordered.  Exhaustive O(|C|^2 * n) — intended
    for the code sizes of this paper (up to a few thousand words).
    """
    ws = [validate_bits(w) for w in words]
    out: List[Tuple[BitVector, BitVector]] = []
    for i, u in enumerate(ws):
        for j, v in enumerate(ws):
            if i != j and covers(u, v):
                out.append((u, v))
    return out


def is_unordered_code(words: Iterable[Sequence[int]]) -> bool:
    """True iff no code word covers another.

    >>> is_unordered_code([(1, 1, 0), (0, 1, 1), (1, 0, 1)])
    True
    >>> is_unordered_code([(1, 1, 0), (1, 0, 0)])
    False
    """
    ws = [validate_bits(w) for w in words]
    for i, u in enumerate(ws):
        for j, v in enumerate(ws):
            if i != j and covers(u, v):
                return False
    return True


def and_of_distinct_words_is_noncode(words: Iterable[Sequence[int]]) -> bool:
    """Verify the stuck-at-1 detection property exhaustively.

    For every pair of *distinct* code words u != v, ``u AND v`` must not be
    a code word.  True for every unordered code (Lemma of §III); this
    function proves it by enumeration for a concrete code, and is the
    property the ablation X5 shows failing for ordered codes.
    """
    ws = [validate_bits(w) for w in words]
    member = set(ws)
    for i, u in enumerate(ws):
        for v in ws[i + 1 :]:
            if u != v and bitwise_and(u, v) in member:
                return False
    return True
