"""Single-bit parity code — the data-path code of the paper's scheme.

The paper protects the memory cell array, MUX and data register with one
parity bit per word: every cell and MUX line drives exactly one output, so
any single stuck-at fault flips at most one output bit and parity detects
it with zero latency (this is what gives the data path the Strongly Fault
Secure property, §II).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.codes.base import BitVector, Code, validate_bits

__all__ = ["ParityCode"]


class ParityCode(Code):
    """Even- or odd-parity code over ``data_bits`` information bits.

    A code word is ``data + (parity_bit,)``.  With ``even=True`` (the
    default) the appended bit makes the total number of 1s even.

    >>> code = ParityCode(3)
    >>> code.encode((1, 0, 1))
    (1, 0, 1, 0)
    >>> code.is_codeword((1, 0, 1, 1))
    False
    """

    def __init__(self, data_bits: int, even: bool = True):
        if data_bits < 1:
            raise ValueError(f"data_bits must be >= 1, got {data_bits}")
        self.data_bits = data_bits
        self.even = even
        self.length = data_bits + 1

    def __repr__(self) -> str:
        kind = "even" if self.even else "odd"
        return f"ParityCode(data_bits={self.data_bits}, {kind})"

    def parity_bit(self, data: Sequence[int]) -> int:
        """The check bit for an information word."""
        data = validate_bits(data)
        if len(data) != self.data_bits:
            raise ValueError(
                f"expected {self.data_bits} data bits, got {len(data)}"
            )
        ones = sum(data) & 1
        return ones if self.even else ones ^ 1

    def encode(self, data: Sequence[int]) -> BitVector:
        """Append the parity bit to ``data``."""
        data = validate_bits(data)
        return data + (self.parity_bit(data),)

    def is_codeword(self, word: Sequence[int]) -> bool:
        word = validate_bits(word)
        if len(word) != self.length:
            return False
        want_even = 0 if self.even else 1
        return (sum(word) & 1) == want_even

    def words(self) -> Iterator[BitVector]:
        from repro.utils.bitops import all_bit_vectors

        for data in all_bit_vectors(self.data_bits):
            yield self.encode(data)

    def cardinality(self) -> int:
        return 1 << self.data_bits

    def detects(self, fault_flips: Sequence[int]) -> bool:
        """True iff flipping the given bit positions is always detected.

        Parity detects exactly the error patterns of odd weight; the
        positions themselves are irrelevant.
        """
        flips = set(fault_flips)
        if any(not 0 <= p < self.length for p in flips):
            raise ValueError(f"flip positions out of range: {sorted(flips)}")
        return len(flips) % 2 == 1
