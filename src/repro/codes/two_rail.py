"""Two-rail code — the backbone of self-checking checker design.

A two-rail code word of ``pairs`` rails is a vector
``(x1, y1, x2, y2, ..., xk, yk)`` with ``yi = not xi`` for every pair.  The
classical TSC two-rail checker compresses k pairs into one pair; chains of
such checkers implement the final error-indication stage of nearly every
self-checking design, including the m-out-of-n checkers of the paper's
figure 3 (via Anderson's translation of constant-weight codes into
two-rail pairs).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.codes.base import BitVector, Code, validate_bits
from repro.utils.bitops import all_bit_vectors

__all__ = ["TwoRailCode"]


class TwoRailCode(Code):
    """Two-rail code of ``pairs`` complementary rail pairs.

    Words are laid out pairwise: ``(x1, ~x1, x2, ~x2, ...)``.

    >>> code = TwoRailCode(2)
    >>> code.is_codeword((0, 1, 1, 0))
    True
    >>> code.is_codeword((0, 1, 1, 1))
    False
    >>> code.cardinality()
    4
    """

    def __init__(self, pairs: int):
        if pairs < 1:
            raise ValueError(f"pairs must be >= 1, got {pairs}")
        self.pairs = pairs
        self.length = 2 * pairs

    def __repr__(self) -> str:
        return f"TwoRailCode(pairs={self.pairs})"

    def encode(self, rails: Sequence[int]) -> BitVector:
        """Expand a plain bit vector into its two-rail representation.

        >>> TwoRailCode(2).encode((1, 0))
        (1, 0, 0, 1)
        """
        rails = validate_bits(rails)
        if len(rails) != self.pairs:
            raise ValueError(f"expected {self.pairs} rails, got {len(rails)}")
        word: list = []
        for bit in rails:
            word.extend((bit, bit ^ 1))
        return tuple(word)

    def is_codeword(self, word: Sequence[int]) -> bool:
        word = validate_bits(word)
        if len(word) != self.length:
            return False
        return all(word[2 * i] != word[2 * i + 1] for i in range(self.pairs))

    def words(self) -> Iterator[BitVector]:
        for rails in all_bit_vectors(self.pairs):
            yield self.encode(rails)

    def cardinality(self) -> int:
        return 1 << self.pairs
