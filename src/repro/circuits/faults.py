"""Single stuck-at fault model and fault-list enumeration.

The paper's analysis (§III.2) considers single stuck-at faults on the
nodes of the decoder's 2-input-gate network.  Two flavours are modelled:

* :class:`NetStuckAt` — a net (gate output or primary input) is stuck,
  affecting every reader of the net (stem fault);
* :class:`PinStuckAt` — a single gate input pin is stuck (branch fault),
  which matters in the decoder tree because decoding blocks share gates.

A :class:`FaultBase` knows how to register itself into the two override
maps the evaluator consults, keeping :class:`~repro.circuits.netlist.Circuit`
immutable across a campaign.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "FaultBase",
    "NetStuckAt",
    "PinStuckAt",
    "enumerate_stuck_at_faults",
]


class FaultBase(abc.ABC):
    """A single structural fault injectable at evaluation time."""

    @abc.abstractmethod
    def register(
        self,
        net_faults: Dict[int, int],
        pin_faults: Dict[Tuple[int, int], int],
    ) -> None:
        """Record this fault into the evaluator override maps."""

    @abc.abstractmethod
    def key(self) -> Tuple:
        """Hashable identity used for dedup and reporting."""

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultBase) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class NetStuckAt(FaultBase):
    """Net ``net`` permanently at ``value`` (stem stuck-at)."""

    __slots__ = ("net", "value")

    def __init__(self, net: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.net = net
        self.value = value

    def register(self, net_faults, pin_faults) -> None:
        net_faults[self.net] = self.value

    def key(self) -> Tuple:
        return ("net", self.net, self.value)

    def __repr__(self) -> str:
        return f"NetStuckAt(n{self.net}/sa{self.value})"


class PinStuckAt(FaultBase):
    """Input pin ``pin`` of gate ``gate_index`` permanently at ``value``."""

    __slots__ = ("gate_index", "pin", "value")

    def __init__(self, gate_index: int, pin: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.gate_index = gate_index
        self.pin = pin
        self.value = value

    def register(self, net_faults, pin_faults) -> None:
        pin_faults[(self.gate_index, self.pin)] = self.value

    def key(self) -> Tuple:
        return ("pin", self.gate_index, self.pin, self.value)

    def __repr__(self) -> str:
        return f"PinStuckAt(g{self.gate_index}.{self.pin}/sa{self.value})"


def enumerate_stuck_at_faults(
    circuit,
    include_inputs: bool = True,
    include_pins: bool = False,
    values: Iterable[int] = (0, 1),
) -> List[FaultBase]:
    """Full single-stuck-at fault list for a circuit.

    By default: every gate output net and (optionally) every primary input
    net, for both polarities.  ``include_pins`` additionally enumerates
    branch faults on every gate input pin — only meaningful where nets fan
    out, but we enumerate uniformly and let the caller collapse
    equivalences.
    """
    faults: List[FaultBase] = []
    values = tuple(values)
    if include_inputs:
        for net in circuit.input_nets:
            for value in values:
                faults.append(NetStuckAt(net, value))
    for gate in circuit.gates:
        for value in values:
            faults.append(NetStuckAt(gate.output, value))
    if include_pins:
        for gate in circuit.gates:
            for pin in range(len(gate.inputs)):
                for value in values:
                    faults.append(PinStuckAt(gate.index, pin, value))
    return faults
