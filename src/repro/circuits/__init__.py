"""Gate-level circuit substrate: netlists, faults, builders, simulation."""

from repro.circuits.builders import (
    and_tree,
    literal_pair,
    or_tree,
    reduce_tree,
    xor_tree,
)
from repro.circuits.equivalence import (
    FaultClasses,
    collapse_faults,
    representative_faults,
)
from repro.circuits.faults import (
    FaultBase,
    NetStuckAt,
    PinStuckAt,
    enumerate_stuck_at_faults,
)
from repro.circuits.gates import GATE_ARITY, GateType, evaluate_gate
from repro.circuits.netlist import Circuit, Gate
from repro.circuits.parallel import (
    evaluate_packed,
    first_set_lane,
    lanes_equal_const,
    pack_addresses,
    pack_stimuli,
    packed_rom_words,
    popcount_lanes,
    unpack_outputs,
    xor_fold_lanes,
)
from repro.circuits.simulator import (
    coverage,
    detects,
    fault_free_responses,
    first_difference,
)

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "GATE_ARITY",
    "evaluate_gate",
    "FaultBase",
    "NetStuckAt",
    "PinStuckAt",
    "enumerate_stuck_at_faults",
    "and_tree",
    "or_tree",
    "xor_tree",
    "reduce_tree",
    "literal_pair",
    "coverage",
    "detects",
    "fault_free_responses",
    "first_difference",
    "FaultClasses",
    "collapse_faults",
    "representative_faults",
    "evaluate_packed",
    "pack_stimuli",
    "pack_addresses",
    "packed_rom_words",
    "unpack_outputs",
    "popcount_lanes",
    "lanes_equal_const",
    "xor_fold_lanes",
    "first_set_lane",
]
