"""Netlist representation and levelized evaluation.

A :class:`Circuit` is a DAG of gates over integer net ids.  Primary inputs
are declared nets; every gate drives exactly one new net.  Evaluation is
levelized (topological order is the insertion order, enforced at
construction: a gate may only read nets that already exist), which keeps
simulation a simple linear pass — fast enough in pure Python for the
decoder sizes of the paper (up to ~2^10 outputs, a few thousand gates).

Faults are *not* stored in the circuit; they are passed to
:meth:`Circuit.evaluate` so one immutable netlist serves a whole
fault-injection campaign.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.gates import GATE_ARITY, GateType, evaluate_gate
from repro.circuits.faults import FaultBase

__all__ = ["Gate", "Circuit"]


class Gate:
    """One gate instance: ``output_net = type(inputs...)``."""

    __slots__ = ("index", "gate_type", "inputs", "output", "name")

    def __init__(
        self,
        index: int,
        gate_type: GateType,
        inputs: Tuple[int, ...],
        output: int,
        name: str,
    ):
        self.index = index
        self.gate_type = gate_type
        self.inputs = inputs
        self.output = output
        self.name = name

    def __repr__(self) -> str:
        ins = ",".join(map(str, self.inputs))
        return (
            f"Gate#{self.index} {self.name}: "
            f"n{self.output} = {self.gate_type.value}({ins})"
        )


class Circuit:
    """A combinational netlist with named primary inputs and outputs."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.gates: List[Gate] = []
        self._num_nets = 0
        self._input_nets: List[int] = []
        self._input_names: List[str] = []
        self._output_nets: List[int] = []
        self._output_names: List[str] = []
        self._net_driver: Dict[int, int] = {}  # net -> gate index

    # -- construction --------------------------------------------------------

    def add_input(self, name: str) -> int:
        """Declare a primary input; returns its net id."""
        net = self._new_net()
        self._input_nets.append(net)
        self._input_names.append(name)
        return net

    def add_inputs(self, names: Iterable[str]) -> List[int]:
        return [self.add_input(n) for n in names]

    def add_gate(
        self,
        gate_type: GateType,
        inputs: Sequence[int],
        name: str = "",
    ) -> int:
        """Append a gate reading existing nets; returns its output net id."""
        inputs = tuple(inputs)
        lo, hi = GATE_ARITY[gate_type]
        if len(inputs) < lo or (hi is not None and len(inputs) > hi):
            raise ValueError(
                f"{gate_type.value} arity must be in [{lo}, {hi}], "
                f"got {len(inputs)}"
            )
        for net in inputs:
            if not 0 <= net < self._num_nets:
                raise ValueError(f"gate reads undeclared net {net}")
        output = self._new_net()
        gate = Gate(
            len(self.gates),
            gate_type,
            inputs,
            output,
            name or f"{gate_type.value}{len(self.gates)}",
        )
        self.gates.append(gate)
        self._net_driver[output] = gate.index
        return output

    def mark_output(self, net: int, name: str = "") -> None:
        """Declare a net as a primary output (order of calls = output order)."""
        if not 0 <= net < self._num_nets:
            raise ValueError(f"cannot mark undeclared net {net} as output")
        self._output_nets.append(net)
        self._output_names.append(name or f"out{len(self._output_nets) - 1}")

    def _new_net(self) -> int:
        net = self._num_nets
        self._num_nets += 1
        return net

    # -- introspection --------------------------------------------------------

    @property
    def num_nets(self) -> int:
        return self._num_nets

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def input_nets(self) -> Tuple[int, ...]:
        return tuple(self._input_nets)

    @property
    def output_nets(self) -> Tuple[int, ...]:
        return tuple(self._output_nets)

    @property
    def input_names(self) -> Tuple[str, ...]:
        return tuple(self._input_names)

    @property
    def output_names(self) -> Tuple[str, ...]:
        return tuple(self._output_names)

    def driver_of(self, net: int) -> Optional[Gate]:
        """The gate driving ``net``; None for primary inputs."""
        idx = self._net_driver.get(net)
        return None if idx is None else self.gates[idx]

    def fanout_of(self, net: int) -> List[Tuple[int, int]]:
        """(gate index, pin index) pairs reading ``net``."""
        return [
            (gate.index, pin)
            for gate in self.gates
            for pin, src in enumerate(gate.inputs)
            if src == net
        ]

    def stats(self) -> Dict[str, int]:
        """Gate-count summary per type plus totals (used by area models)."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.gate_type.value] = counts.get(gate.gate_type.value, 0) + 1
        counts["gates"] = len(self.gates)
        counts["nets"] = self._num_nets
        counts["inputs"] = len(self._input_nets)
        counts["outputs"] = len(self._output_nets)
        return counts

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self._input_nets)}, "
            f"outputs={len(self._output_nets)}, gates={len(self.gates)})"
        )

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        input_values: Sequence[int],
        faults: Sequence[FaultBase] = (),
    ) -> Tuple[int, ...]:
        """Evaluate the circuit, optionally with injected stuck-at faults.

        ``input_values`` follows the order primary inputs were added.
        Returns the primary outputs in :meth:`mark_output` order.
        """
        if len(input_values) != len(self._input_nets):
            raise ValueError(
                f"expected {len(self._input_nets)} input values, "
                f"got {len(input_values)}"
            )
        values: List[int] = [0] * self._num_nets
        for net, bit in zip(self._input_nets, input_values):
            if bit not in (0, 1):
                raise ValueError(f"input bits must be 0/1, got {bit!r}")
            values[net] = bit

        net_faults: Dict[int, int] = {}
        pin_faults: Dict[Tuple[int, int], int] = {}
        for fault in faults:
            fault.register(net_faults, pin_faults)

        for net, forced in net_faults.items():
            if net in self._input_nets or self._net_driver.get(net) is None:
                values[net] = forced

        for gate in self.gates:
            ins = []
            for pin, src in enumerate(gate.inputs):
                forced = pin_faults.get((gate.index, pin))
                ins.append(values[src] if forced is None else forced)
            out_value = evaluate_gate(gate.gate_type, ins)
            forced = net_faults.get(gate.output)
            values[gate.output] = out_value if forced is None else forced

        return tuple(values[net] for net in self._output_nets)

    def evaluate_named(
        self,
        input_values: Sequence[int],
        faults: Sequence[FaultBase] = (),
    ) -> Dict[str, int]:
        """Like :meth:`evaluate` but returns ``{output_name: bit}``."""
        outs = self.evaluate(input_values, faults)
        return dict(zip(self._output_names, outs))
