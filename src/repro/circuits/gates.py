"""Gate primitives for the structural (gate-level) circuit substrate.

The decoder trees of §III.2 are built from inverters and 2-input AND
gates; NOR matrices, parity checkers and two-rail checkers add NOR, XOR
and NOT.  Every gate type evaluates a tuple of input bits to one output
bit.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Sequence

__all__ = ["GateType", "evaluate_gate", "GATE_ARITY"]


class GateType(enum.Enum):
    """Supported combinational primitives."""

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    CONST0 = "const0"
    CONST1 = "const1"


#: Arity constraints per gate type: (min_inputs, max_inputs or None).
GATE_ARITY: Dict[GateType, tuple] = {
    GateType.BUF: (1, 1),
    GateType.NOT: (1, 1),
    GateType.AND: (2, None),
    GateType.OR: (2, None),
    GateType.NAND: (2, None),
    GateType.NOR: (1, None),
    GateType.XOR: (2, None),
    GateType.XNOR: (2, None),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
}


def _xor_all(bits: Sequence[int]) -> int:
    acc = 0
    for bit in bits:
        acc ^= bit
    return acc


_EVALUATORS: Dict[GateType, Callable[[Sequence[int]], int]] = {
    GateType.BUF: lambda bits: bits[0],
    GateType.NOT: lambda bits: bits[0] ^ 1,
    GateType.AND: lambda bits: int(all(bits)),
    GateType.OR: lambda bits: int(any(bits)),
    GateType.NAND: lambda bits: int(not all(bits)),
    GateType.NOR: lambda bits: int(not any(bits)),
    GateType.XOR: _xor_all,
    GateType.XNOR: lambda bits: _xor_all(bits) ^ 1,
    GateType.CONST0: lambda bits: 0,
    GateType.CONST1: lambda bits: 1,
}


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate one gate.

    >>> evaluate_gate(GateType.NOR, (0, 0, 0))
    1
    >>> evaluate_gate(GateType.XOR, (1, 1, 1))
    1
    """
    lo, hi = GATE_ARITY[gate_type]
    if len(inputs) < lo or (hi is not None and len(inputs) > hi):
        raise ValueError(
            f"{gate_type.value} expects arity in [{lo}, {hi}], "
            f"got {len(inputs)} inputs"
        )
    return _EVALUATORS[gate_type](inputs)
