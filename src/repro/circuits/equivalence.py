"""Structural stuck-at fault collapsing (equivalence classes).

Standard EDA machinery: many single stuck-at faults are provably
indistinguishable at the gate whose pin they sit on, so campaigns only
need one representative per class.  The classical local rules:

* NOT/BUF: input s-a-v ≡ output s-a-(v xor inverted);
* AND:  any input s-a-0 ≡ output s-a-0 (controlling value);
* NAND: any input s-a-0 ≡ output s-a-1;
* OR:   any input s-a-1 ≡ output s-a-1;
* NOR:  any input s-a-1 ≡ output s-a-0;
* XOR/XNOR: no input/output equivalence;
* a net with a single reader: the stem fault ≡ that reader's pin fault —
  unless the net is a primary output, where the stem fault is directly
  observable and the branch fault is not.

Classes are built with union-find over fault keys.  Collapsing is purely
structural and conservative: two faults in one class are *guaranteed*
functionally equivalent at every primary output (the test suite re-proves
this by exhaustive simulation on randomly built circuits).  Output
equivalence is exactly what a campaign observes, which is what lets the
packed engine (:mod:`repro.faultsim.fastsim`) simulate one representative
per class and fan the measured latencies back out to every member.

For the paper's decoder trees the collapse ratio is substantial — the
AND-tree structure chains controlling values level to level — which is
what makes exhaustive campaigns on wider decoders affordable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.circuits.faults import FaultBase, NetStuckAt, PinStuckAt
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

__all__ = [
    "FaultClasses",
    "collapse_faults",
    "representative_faults",
]

#: controlling input value and the output value it forces, per gate type
_CONTROLLING: Dict[GateType, Tuple[int, int]] = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


class _UnionFind:
    def __init__(self):
        self.parent: Dict[Tuple, Tuple] = {}

    def add(self, key: Tuple) -> None:
        self.parent.setdefault(key, key)

    def find(self, key: Tuple) -> Tuple:
        root = key
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[key] != root:  # path compression
            self.parent[key], key = root, self.parent[key]
        return root

    def union(self, a: Tuple, b: Tuple) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class FaultClasses:
    """The result of collapsing: classes of equivalent stuck-at faults."""

    def __init__(self, classes: List[List[FaultBase]], total: int):
        self.classes = classes
        self.total = total

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def collapse_ratio(self) -> float:
        """collapsed / original fault count (lower = more collapsing)."""
        return self.num_classes / self.total if self.total else 1.0

    def representatives(self) -> List[FaultBase]:
        """One fault per class (the class's first member)."""
        return [cls[0] for cls in self.classes]

    def class_of(self, fault: FaultBase) -> List[FaultBase]:
        for cls in self.classes:
            if any(f.key() == fault.key() for f in cls):
                return cls
        raise KeyError(f"fault {fault!r} not in any class")


def _full_fault_universe(circuit: Circuit) -> List[FaultBase]:
    """Every net fault and every pin fault, both polarities."""
    faults: List[FaultBase] = []
    for net in circuit.input_nets:
        for value in (0, 1):
            faults.append(NetStuckAt(net, value))
    for gate in circuit.gates:
        for value in (0, 1):
            faults.append(NetStuckAt(gate.output, value))
        for pin in range(len(gate.inputs)):
            for value in (0, 1):
                faults.append(PinStuckAt(gate.index, pin, value))
    return faults


def _universe_keys(circuit: Circuit) -> List[Tuple]:
    """Every net/pin fault key, both polarities — no fault objects.

    The keys alone drive union-find; materialising
    :func:`_full_fault_universe`'s objects is only needed when the
    caller wants full classes back.
    """
    keys: List[Tuple] = []
    for net in circuit.input_nets:
        keys.append(("net", net, 0))
        keys.append(("net", net, 1))
    for gate in circuit.gates:
        output = gate.output
        keys.append(("net", output, 0))
        keys.append(("net", output, 1))
        for pin in range(len(gate.inputs)):
            keys.append(("pin", gate.index, pin, 0))
            keys.append(("pin", gate.index, pin, 1))
    return keys


def collapse_faults(
    circuit: Circuit, faults: Sequence[FaultBase] = None
) -> FaultClasses:
    """Partition the fault universe into structural equivalence classes.

    When ``faults`` is given, only those faults are classified (the
    union-find still runs over the full key universe, so equivalences
    through unlisted faults still merge — but no universe fault objects
    are materialised, which keeps per-campaign collapsing cheap).
    """
    uf = _UnionFind()
    for key in _universe_keys(circuit):
        uf.add(key)

    fanout: Dict[int, List[Tuple[int, int]]] = {}
    for gate in circuit.gates:
        for pin, net in enumerate(gate.inputs):
            fanout.setdefault(net, []).append((gate.index, pin))

    # Rule 1: single-reader stems — stem fault ≡ the lone pin fault.
    # Guarded by observability: if the stem net is itself a primary
    # output (e.g. a decoder word line also feeding one ROM column), the
    # stem fault flips that output while the branch fault does not, so
    # the two are distinguishable and must stay in separate classes.
    observable = set(circuit.output_nets)
    for net, readers in fanout.items():
        if len(readers) == 1 and net not in observable:
            gate_index, pin = readers[0]
            for value in (0, 1):
                uf.union(
                    ("net", net, value),
                    ("pin", gate_index, pin, value),
                )

    for gate in circuit.gates:
        # Rule 2: inverting/buffering single-input gates.
        if gate.gate_type in (GateType.NOT, GateType.BUF):
            invert = 1 if gate.gate_type is GateType.NOT else 0
            for value in (0, 1):
                uf.union(
                    ("pin", gate.index, 0, value),
                    ("net", gate.output, value ^ invert),
                )
        # Rule 3: controlling values.
        control = _CONTROLLING.get(gate.gate_type)
        if control is not None:
            in_value, out_value = control
            for pin in range(len(gate.inputs)):
                uf.union(
                    ("pin", gate.index, pin, in_value),
                    ("net", gate.output, out_value),
                )

    by_root: Dict[Tuple, List[FaultBase]] = {}
    if faults is not None:
        seen = set()
        for fault in faults:
            key = fault.key()
            if key in seen:
                continue
            seen.add(key)
            by_root.setdefault(uf.find(key), []).append(fault)
        return FaultClasses(list(by_root.values()), len(seen))

    universe = _full_fault_universe(circuit)
    for fault in universe:
        by_root.setdefault(uf.find(fault.key()), []).append(fault)
    return FaultClasses(list(by_root.values()), len(universe))


def representative_faults(circuit: Circuit) -> List[FaultBase]:
    """Convenience: one representative per equivalence class."""
    return collapse_faults(circuit).representatives()
