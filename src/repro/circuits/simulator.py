"""Fault-simulation driver over a :class:`~repro.circuits.netlist.Circuit`.

Serial fault simulation: for each fault, re-evaluate the circuit on each
stimulus and compare against the fault-free response.  Pure Python, but the
circuits of this paper (decoder trees + NOR matrices, a few thousand gates)
simulate at the rate the experiments need; campaigns sub-sample addresses
where exhaustive sweeps would be quadratic.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.faults import FaultBase
from repro.circuits.netlist import Circuit

__all__ = ["fault_free_responses", "first_difference", "detects", "coverage"]


def fault_free_responses(
    circuit: Circuit, stimuli: Iterable[Sequence[int]]
) -> List[Tuple[int, ...]]:
    """Golden responses for a stimulus list."""
    return [circuit.evaluate(vec) for vec in stimuli]


def first_difference(
    circuit: Circuit,
    fault: FaultBase,
    stimuli: Sequence[Sequence[int]],
    golden: Optional[Sequence[Tuple[int, ...]]] = None,
) -> Optional[int]:
    """Index of the first stimulus whose response differs under ``fault``.

    Returns None if the fault is never excited/observed by the stimuli.
    This is the raw measurement behind *detection latency*: with one
    stimulus per clock cycle, the returned index is the number of cycles
    that elapse before the output first diverges.
    """
    if golden is None:
        golden = fault_free_responses(circuit, stimuli)
    for idx, vec in enumerate(stimuli):
        if circuit.evaluate(vec, faults=(fault,)) != golden[idx]:
            return idx
    return None


def detects(
    circuit: Circuit,
    fault: FaultBase,
    stimuli: Sequence[Sequence[int]],
    checker: Callable[[Tuple[int, ...]], bool],
) -> Optional[int]:
    """First stimulus index where the faulty response violates ``checker``.

    Unlike :func:`first_difference` this is *concurrent-checking* detection:
    the observer does not know the golden response, only whether the output
    is a code word (``checker`` returns True for code words).  Returns the
    cycle index of first detection, or None.
    """
    for idx, vec in enumerate(stimuli):
        response = circuit.evaluate(vec, faults=(fault,))
        if not checker(response):
            return idx
    return None


def coverage(
    circuit: Circuit,
    faults: Sequence[FaultBase],
    stimuli: Sequence[Sequence[int]],
    checker: Callable[[Tuple[int, ...]], bool],
) -> Dict[str, object]:
    """Concurrent-detection coverage of a fault list over a stimulus stream.

    Returns a summary dict with per-fault first-detection cycles, the list
    of undetected faults, and the coverage ratio.
    """
    first_detect: Dict[FaultBase, Optional[int]] = {}
    for fault in faults:
        first_detect[fault] = detects(circuit, fault, stimuli, checker)
    undetected = [f for f, cyc in first_detect.items() if cyc is None]
    detected = len(faults) - len(undetected)
    return {
        "total": len(faults),
        "detected": detected,
        "undetected": undetected,
        "coverage": detected / len(faults) if faults else 1.0,
        "first_detection": first_detect,
    }
