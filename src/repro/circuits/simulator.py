"""Fault-simulation driver over a :class:`~repro.circuits.netlist.Circuit`.

Fault simulation over explicit stimulus lists.  Every entry point takes
an ``engine`` argument:

* ``"packed"`` (default) — bit-parallel: the stimulus list is packed
  once (lane ``k`` = stimulus ``k``) and each fault costs **one**
  netlist traversal (:func:`repro.circuits.parallel.evaluate_packed`)
  instead of one per stimulus;
* ``"serial"`` — the original per-stimulus loops, kept as the reference
  oracle (the test suite proves the engines agree).

:func:`coverage` additionally caches the golden packed responses once
per stimulus list and shares them across the whole fault loop, so
unexcited faults are disposed of with a handful of word compares.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuits.faults import FaultBase
from repro.circuits.netlist import Circuit
from repro.circuits.parallel import (
    evaluate_packed,
    first_set_lane,
    pack_stimuli,
    unpack_outputs,
)

__all__ = [
    "ENGINES",
    "check_engine",
    "fault_free_responses",
    "first_difference",
    "detects",
    "coverage",
]

#: the two simulation engines every campaign/simulation driver accepts
ENGINES = ("packed", "serial")


def check_engine(engine: str) -> None:
    """Validate an ``engine=`` argument (shared by all drivers)."""
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )


def fault_free_responses(
    circuit: Circuit,
    stimuli: Iterable[Sequence[int]],
    engine: str = "packed",
) -> List[Tuple[int, ...]]:
    """Golden responses for a stimulus list (one packed pass)."""
    check_engine(engine)
    stimuli = list(stimuli)
    if engine == "serial" or not stimuli:
        return [circuit.evaluate(vec) for vec in stimuli]
    packed, lanes = pack_stimuli(stimuli)
    return unpack_outputs(evaluate_packed(circuit, packed, lanes), lanes)


def first_difference(
    circuit: Circuit,
    fault: FaultBase,
    stimuli: Sequence[Sequence[int]],
    golden: Optional[Sequence[Tuple[int, ...]]] = None,
    engine: str = "packed",
) -> Optional[int]:
    """Index of the first stimulus whose response differs under ``fault``.

    Returns None if the fault is never excited/observed by the stimuli.
    This is the raw measurement behind *detection latency*: with one
    stimulus per clock cycle, the returned index is the number of cycles
    that elapse before the output first diverges.

    Pass ``golden`` (from :func:`fault_free_responses`) when sweeping
    many faults over one stimulus list, so it is computed once.
    """
    check_engine(engine)
    if engine == "serial":
        if golden is None:
            golden = fault_free_responses(circuit, stimuli, engine=engine)
        for idx, vec in enumerate(stimuli):
            if circuit.evaluate(vec, faults=(fault,)) != golden[idx]:
                return idx
        return None
    if not stimuli:
        return None
    packed, lanes = pack_stimuli(stimuli)
    if golden is None:
        golden_words = evaluate_packed(circuit, packed, lanes)
    else:
        if len(golden) != len(stimuli):
            raise ValueError(
                f"golden has {len(golden)} responses for "
                f"{len(stimuli)} stimuli"
            )
        golden_words, _ = pack_stimuli(golden)
    faulty = evaluate_packed(circuit, packed, lanes, faults=(fault,))
    diff = 0
    for faulty_word, golden_word in zip(faulty, golden_words):
        diff |= faulty_word ^ golden_word
    return first_set_lane(diff)


def detects(
    circuit: Circuit,
    fault: FaultBase,
    stimuli: Sequence[Sequence[int]],
    checker: Callable[[Tuple[int, ...]], bool],
    engine: str = "packed",
) -> Optional[int]:
    """First stimulus index where the faulty response violates ``checker``.

    Unlike :func:`first_difference` this is *concurrent-checking* detection:
    the observer does not know the golden response, only whether the output
    is a code word (``checker`` returns True for code words).  Returns the
    cycle index of first detection, or None.

    The packed engine runs one traversal for all stimuli, then judges the
    unpacked responses in order (``checker`` is an arbitrary callable;
    for packed judgement without unpacking use a
    :class:`repro.checkers.base.Checker` and its ``accepts_packed``).
    """
    check_engine(engine)
    if engine == "serial":
        for idx, vec in enumerate(stimuli):
            response = circuit.evaluate(vec, faults=(fault,))
            if not checker(response):
                return idx
        return None
    if not stimuli:
        return None
    packed, lanes = pack_stimuli(stimuli)
    outputs = evaluate_packed(circuit, packed, lanes, faults=(fault,))
    for idx, response in enumerate(unpack_outputs(outputs, lanes)):
        if not checker(response):
            return idx
    return None


def coverage(
    circuit: Circuit,
    faults: Sequence[FaultBase],
    stimuli: Sequence[Sequence[int]],
    checker: Callable[[Tuple[int, ...]], bool],
    engine: str = "packed",
) -> Dict[str, object]:
    """Concurrent-detection coverage of a fault list over a stimulus stream.

    Returns a summary dict with per-fault first-detection cycles, the list
    of undetected faults, and the coverage ratio.

    The packed engine packs the stimuli and computes the golden packed
    responses **once per stimulus list**; a fault whose packed responses
    equal the golden words is judged from the (cached) golden detection
    outcome without re-running the checker loop.
    """
    check_engine(engine)
    first_detect: Dict[FaultBase, Optional[int]] = {}
    if engine == "serial" or not stimuli:
        for fault in faults:
            first_detect[fault] = detects(
                circuit, fault, stimuli, checker, engine="serial"
            )
    else:
        packed, lanes = pack_stimuli(stimuli)
        golden_words = evaluate_packed(circuit, packed, lanes)
        golden_outcome: Dict[str, Optional[int]] = {}

        def golden_detection() -> Optional[int]:
            # what the checker says about the fault-free stream, computed
            # at most once and shared by every unexcited fault
            if "value" not in golden_outcome:
                outcome = None
                for idx, response in enumerate(
                    unpack_outputs(golden_words, lanes)
                ):
                    if not checker(response):
                        outcome = idx
                        break
                golden_outcome["value"] = outcome
            return golden_outcome["value"]

        for fault in faults:
            outputs = evaluate_packed(
                circuit, packed, lanes, faults=(fault,)
            )
            if outputs == golden_words:
                first_detect[fault] = golden_detection()
                continue
            found = None
            for idx, response in enumerate(unpack_outputs(outputs, lanes)):
                if not checker(response):
                    found = idx
                    break
            first_detect[fault] = found

    undetected = [f for f, cyc in first_detect.items() if cyc is None]
    detected = len(faults) - len(undetected)
    return {
        "total": len(faults),
        "detected": detected,
        "undetected": undetected,
        "coverage": detected / len(faults) if faults else 1.0,
        "first_detection": first_detect,
    }
