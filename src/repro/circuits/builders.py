"""Structural builders: balanced gate trees and buffered literals.

These helpers compose the repeated structures of the paper's hardware:
AND trees (decoder blocks), XOR trees (parity checkers and generators),
OR/NOR reductions (error indication collection).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

__all__ = ["reduce_tree", "and_tree", "or_tree", "xor_tree", "literal_pair"]


def reduce_tree(
    circuit: Circuit,
    gate_type: GateType,
    nets: Sequence[int],
    name: str = "tree",
) -> int:
    """Balanced binary reduction of ``nets`` with 2-input gates.

    Returns the root net.  A single input is passed through unchanged
    (no buffer inserted) so callers can reduce any non-empty list.

    Note: only valid for associative gate functions (AND/OR/XOR and their
    duals via De Morgan handled by callers); a plain NOR tree would *not*
    compute an n-input NOR, so NOR is rejected.
    """
    if gate_type not in (GateType.AND, GateType.OR, GateType.XOR):
        raise ValueError(
            f"reduce_tree supports AND/OR/XOR, got {gate_type.value}"
        )
    layer: List[int] = list(nets)
    if not layer:
        raise ValueError("cannot reduce an empty net list")
    level = 0
    while len(layer) > 1:
        nxt: List[int] = []
        for i in range(0, len(layer) - 1, 2):
            nxt.append(
                circuit.add_gate(
                    gate_type,
                    (layer[i], layer[i + 1]),
                    name=f"{name}_l{level}_{i // 2}",
                )
            )
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
        level += 1
    return layer[0]


def and_tree(circuit: Circuit, nets: Sequence[int], name: str = "and") -> int:
    """Balanced 2-input AND tree; returns the root net."""
    return reduce_tree(circuit, GateType.AND, nets, name)


def or_tree(circuit: Circuit, nets: Sequence[int], name: str = "or") -> int:
    """Balanced 2-input OR tree; returns the root net."""
    return reduce_tree(circuit, GateType.OR, nets, name)


def xor_tree(circuit: Circuit, nets: Sequence[int], name: str = "xor") -> int:
    """Balanced 2-input XOR tree; returns the root net."""
    return reduce_tree(circuit, GateType.XOR, nets, name)


def literal_pair(circuit: Circuit, net: int, name: str = "lit") -> tuple:
    """(direct, complement) pair for an input — the 0-level decoding block.

    The paper's 0-level uses one inverter per decoder input to provide the
    true and complemented literals.  The direct literal is the net itself.
    """
    comp = circuit.add_gate(GateType.NOT, (net,), name=f"{name}_n")
    return net, comp
