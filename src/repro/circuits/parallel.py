"""Bit-parallel circuit evaluation (parallel-pattern single-fault style).

Classic logic-simulation acceleration: pack W stimuli into one machine
word per net (lane k of a net's word is the net's value under stimulus
k), and evaluate each gate once per *pass* with bitwise operators instead
of once per stimulus.  Python integers are arbitrary-width, so W is
limited only by memory; campaigns here use W = the whole address stream.

Supports the same stuck-at fault injection as the serial evaluator (a
stuck net/pin is stuck in every lane).  The test suite proves lane-exact
equivalence with :meth:`repro.circuits.netlist.Circuit.evaluate`, and the
bench measures the speedup on decoder-campaign workloads (an order of
magnitude in pure Python).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.faults import FaultBase
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

__all__ = [
    "pack_stimuli",
    "unpack_outputs",
    "packed_gate_word",
    "evaluate_packed",
    "packed_rom_words",
    "pack_addresses",
    "popcount_lanes",
    "lanes_equal_const",
    "xor_fold_lanes",
    "first_set_lane",
]


def packed_gate_word(
    gate_type: GateType, ins: Sequence[int], mask: int
) -> int:
    """One gate's output lane-word from its input lane-words.

    The single definition of per-lane gate semantics shared by
    :func:`evaluate_packed` and the incremental engine in
    :mod:`repro.faultsim.fastsim`; per lane it matches
    :func:`repro.circuits.gates.evaluate_gate`.
    """
    if gate_type is GateType.AND:
        acc = mask
        for word in ins:
            acc &= word
    elif gate_type is GateType.OR or gate_type is GateType.NOR:
        acc = 0
        for word in ins:
            acc |= word
        if gate_type is GateType.NOR:
            acc = ~acc & mask
    elif gate_type is GateType.NAND:
        acc = mask
        for word in ins:
            acc &= word
        acc = ~acc & mask
    elif gate_type is GateType.XOR or gate_type is GateType.XNOR:
        acc = 0
        for word in ins:
            acc ^= word
        if gate_type is GateType.XNOR:
            acc = ~acc & mask
    elif gate_type is GateType.NOT:
        acc = ~ins[0] & mask
    elif gate_type is GateType.BUF:
        acc = ins[0]
    elif gate_type is GateType.CONST0:
        acc = 0
    else:  # CONST1
        acc = mask
    return acc


def pack_stimuli(stimuli: Sequence[Sequence[int]]) -> Tuple[List[int], int]:
    """Pack per-stimulus input vectors into one lane-word per input.

    Returns ``(packed_inputs, num_lanes)`` where
    ``packed_inputs[i] >> k & 1`` is input ``i``'s value under stimulus
    ``k``.

    >>> pack_stimuli([(1, 0), (0, 0), (1, 1)])
    ([5, 4], 3)
    """
    if not stimuli:
        raise ValueError("need at least one stimulus")
    width = len(stimuli[0])
    packed = [0] * width
    for lane, vector in enumerate(stimuli):
        if len(vector) != width:
            raise ValueError("all stimuli must have the same width")
        for i, bit in enumerate(vector):
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0/1, got {bit!r}")
            packed[i] |= bit << lane
    return packed, len(stimuli)


def unpack_outputs(
    packed_outputs: Sequence[int], num_lanes: int
) -> List[Tuple[int, ...]]:
    """Inverse of :func:`pack_stimuli` for the output side."""
    return [
        tuple((word >> lane) & 1 for word in packed_outputs)
        for lane in range(num_lanes)
    ]


def evaluate_packed(
    circuit: Circuit,
    packed_inputs: Sequence[int],
    num_lanes: int,
    faults: Sequence[FaultBase] = (),
) -> List[int]:
    """Evaluate all lanes at once; returns one lane-word per output.

    Semantics per lane are identical to ``circuit.evaluate``; stuck-at
    faults force their net/pin in every lane.
    """
    if len(packed_inputs) != len(circuit.input_nets):
        raise ValueError(
            f"expected {len(circuit.input_nets)} packed inputs, "
            f"got {len(packed_inputs)}"
        )
    mask = (1 << num_lanes) - 1

    net_faults: Dict[int, int] = {}
    pin_faults: Dict[Tuple[int, int], int] = {}
    for fault in faults:
        fault.register(net_faults, pin_faults)

    def forced_word(value: int) -> int:
        return mask if value else 0

    values: List[int] = [0] * circuit.num_nets
    for net, word in zip(circuit.input_nets, packed_inputs):
        if word < 0 or word > mask:
            raise ValueError("packed input exceeds the lane mask")
        forced = net_faults.get(net)
        values[net] = word if forced is None else forced_word(forced)

    for gate in circuit.gates:
        ins: List[int] = []
        for pin, src in enumerate(gate.inputs):
            forced = pin_faults.get((gate.index, pin))
            ins.append(
                values[src] if forced is None else forced_word(forced)
            )
        acc = packed_gate_word(gate.gate_type, ins, mask)
        forced = net_faults.get(gate.output)
        values[gate.output] = acc if forced is None else forced_word(forced)

    return [values[net] for net in circuit.output_nets]


def pack_addresses(
    addresses: Sequence[int], n_bits: int
) -> Tuple[List[int], int]:
    """Pack an address stream into one lane-word per address bit.

    Bit ``i`` of the address maps to input ``i`` (LSB-first, the decoder
    convention); lane ``k`` of the result words is address ``k`` of the
    stream.  Equivalent to :func:`pack_stimuli` over the bit expansion,
    without materialising the intermediate vectors.

    >>> pack_addresses([1, 0, 3], 2)
    ([5, 4], 3)
    """
    top = 1 << n_bits
    packed = [0] * n_bits
    for lane, address in enumerate(addresses):
        if not 0 <= address < top:
            raise ValueError(
                f"address {address} out of range [0, {top})"
            )
        for i in range(n_bits):
            if (address >> i) & 1:
                packed[i] |= 1 << lane
    return packed, len(addresses)


def popcount_lanes(words: Sequence[int], mask: int) -> List[int]:
    """Lane-wise population count over a column of lane-words.

    Carry-save (bit-sliced counter) addition: the result is a list of
    count-slice words, LSB slice first — lane ``k``'s count is
    ``sum(((s >> k) & 1) << i for i, s in enumerate(slices))``.  One
    ripple pass per input word, ``O(len(words) * log len(words))`` word
    operations in total, no unpacking.

    >>> popcount_lanes([0b11, 0b01, 0b01], 0b11)   # lane0: 3 ones, lane1: 1
    [3, 1]
    """
    slices: List[int] = []
    for word in words:
        carry = word & mask
        for i in range(len(slices)):
            if not carry:
                break
            slices[i], carry = slices[i] ^ carry, slices[i] & carry
        if carry:
            slices.append(carry)
    return slices


def lanes_equal_const(
    slices: Sequence[int], value: int, mask: int
) -> int:
    """Lanes whose bit-sliced count equals ``value``; returns a lane-word.

    ``slices`` is the LSB-first output of :func:`popcount_lanes`.

    >>> bin(lanes_equal_const([3, 1], 3, 0b11))   # lane counts are (3, 1)
    '0b1'
    """
    if value < 0 or (value >> len(slices)):
        return 0
    acc = mask
    for i, word in enumerate(slices):
        acc &= word if (value >> i) & 1 else ~word & mask
        if not acc:
            break
    return acc


def xor_fold_lanes(words: Sequence[int]) -> int:
    """Lane-wise parity of a column of lane-words (XOR reduction)."""
    fold = 0
    for word in words:
        fold ^= word
    return fold


def first_set_lane(word: int) -> Optional[int]:
    """Index of the lowest set bit, or None for 0 — the packed
    counterpart of 'first cycle where something happened'."""
    if word <= 0:
        return None
    return (word & -word).bit_length() - 1


def packed_rom_words(
    checked,
    addresses: Sequence[int],
    faults: Sequence[FaultBase] = (),
) -> List[Tuple[int, ...]]:
    """All ROM words of a :class:`~repro.rom.nor_matrix.CheckedDecoder`
    for an address stream, in one packed pass.

    Returns one ROM word per address (stream order) — the fast path for
    long campaigns: one netlist traversal instead of ``len(addresses)``.
    """
    n = checked.n
    stimuli = [
        [(address >> bit) & 1 for bit in range(n)] for address in addresses
    ]
    packed, lanes = pack_stimuli(stimuli)
    outputs = evaluate_packed(
        checked.circuit, packed, lanes, faults=faults
    )
    rom_packed = outputs[1 << n :]
    return unpack_outputs(rom_packed, lanes)
