"""Bit-parallel circuit evaluation (parallel-pattern single-fault style).

Classic logic-simulation acceleration: pack W stimuli into one machine
word per net (lane k of a net's word is the net's value under stimulus
k), and evaluate each gate once per *pass* with bitwise operators instead
of once per stimulus.  Python integers are arbitrary-width, so W is
limited only by memory; campaigns here use W = the whole address stream.

Supports the same stuck-at fault injection as the serial evaluator (a
stuck net/pin is stuck in every lane).  The test suite proves lane-exact
equivalence with :meth:`repro.circuits.netlist.Circuit.evaluate`, and the
bench measures the speedup on decoder-campaign workloads (an order of
magnitude in pure Python).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.circuits.faults import FaultBase
from repro.circuits.gates import GateType
from repro.circuits.netlist import Circuit

__all__ = [
    "pack_stimuli",
    "unpack_outputs",
    "evaluate_packed",
    "packed_rom_words",
]


def pack_stimuli(stimuli: Sequence[Sequence[int]]) -> Tuple[List[int], int]:
    """Pack per-stimulus input vectors into one lane-word per input.

    Returns ``(packed_inputs, num_lanes)`` where
    ``packed_inputs[i] >> k & 1`` is input ``i``'s value under stimulus
    ``k``.

    >>> pack_stimuli([(1, 0), (0, 0), (1, 1)])
    ([5, 4], 3)
    """
    if not stimuli:
        raise ValueError("need at least one stimulus")
    width = len(stimuli[0])
    packed = [0] * width
    for lane, vector in enumerate(stimuli):
        if len(vector) != width:
            raise ValueError("all stimuli must have the same width")
        for i, bit in enumerate(vector):
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0/1, got {bit!r}")
            packed[i] |= bit << lane
    return packed, len(stimuli)


def unpack_outputs(
    packed_outputs: Sequence[int], num_lanes: int
) -> List[Tuple[int, ...]]:
    """Inverse of :func:`pack_stimuli` for the output side."""
    return [
        tuple((word >> lane) & 1 for word in packed_outputs)
        for lane in range(num_lanes)
    ]


def evaluate_packed(
    circuit: Circuit,
    packed_inputs: Sequence[int],
    num_lanes: int,
    faults: Sequence[FaultBase] = (),
) -> List[int]:
    """Evaluate all lanes at once; returns one lane-word per output.

    Semantics per lane are identical to ``circuit.evaluate``; stuck-at
    faults force their net/pin in every lane.
    """
    if len(packed_inputs) != len(circuit.input_nets):
        raise ValueError(
            f"expected {len(circuit.input_nets)} packed inputs, "
            f"got {len(packed_inputs)}"
        )
    mask = (1 << num_lanes) - 1

    net_faults: Dict[int, int] = {}
    pin_faults: Dict[Tuple[int, int], int] = {}
    for fault in faults:
        fault.register(net_faults, pin_faults)

    def forced_word(value: int) -> int:
        return mask if value else 0

    values: List[int] = [0] * circuit.num_nets
    for net, word in zip(circuit.input_nets, packed_inputs):
        if word < 0 or word > mask:
            raise ValueError("packed input exceeds the lane mask")
        forced = net_faults.get(net)
        values[net] = word if forced is None else forced_word(forced)

    for gate in circuit.gates:
        ins: List[int] = []
        for pin, src in enumerate(gate.inputs):
            forced = pin_faults.get((gate.index, pin))
            ins.append(
                values[src] if forced is None else forced_word(forced)
            )
        gate_type = gate.gate_type
        if gate_type is GateType.AND:
            acc = mask
            for word in ins:
                acc &= word
        elif gate_type is GateType.OR or gate_type is GateType.NOR:
            acc = 0
            for word in ins:
                acc |= word
            if gate_type is GateType.NOR:
                acc = ~acc & mask
        elif gate_type is GateType.NAND:
            acc = mask
            for word in ins:
                acc &= word
            acc = ~acc & mask
        elif gate_type is GateType.XOR or gate_type is GateType.XNOR:
            acc = 0
            for word in ins:
                acc ^= word
            if gate_type is GateType.XNOR:
                acc = ~acc & mask
        elif gate_type is GateType.NOT:
            acc = ~ins[0] & mask
        elif gate_type is GateType.BUF:
            acc = ins[0]
        elif gate_type is GateType.CONST0:
            acc = 0
        else:  # CONST1
            acc = mask
        forced = net_faults.get(gate.output)
        values[gate.output] = acc if forced is None else forced_word(forced)

    return [values[net] for net in circuit.output_nets]


def packed_rom_words(
    checked,
    addresses: Sequence[int],
    faults: Sequence[FaultBase] = (),
) -> List[Tuple[int, ...]]:
    """All ROM words of a :class:`~repro.rom.nor_matrix.CheckedDecoder`
    for an address stream, in one packed pass.

    Returns one ROM word per address (stream order) — the fast path for
    long campaigns: one netlist traversal instead of ``len(addresses)``.
    """
    n = checked.n
    stimuli = [
        [(address >> bit) & 1 for bit in range(n)] for address in addresses
    ]
    packed, lanes = pack_stimuli(stimuli)
    outputs = evaluate_packed(
        checked.circuit, packed, lanes, faults=faults
    )
    rom_packed = outputs[1 << n :]
    return unpack_outputs(rom_packed, lanes)
