"""Design report generation — one human-readable page per sized design.

Historical entry point, kept as a thin wrapper: the report itself is now
the structured :class:`repro.design.report.DesignReport` produced by
:class:`repro.design.engine.DesignEngine`; this function renders its
text form.  Prefer ``DesignEngine().evaluate(spec)`` for anything that
wants the numbers rather than the page.
"""

from __future__ import annotations

from typing import Optional

from repro.core.plan import MemoryCodePlan
from repro.core.selection import SelectionPolicy
from repro.memory.organization import MemoryOrganization

__all__ = ["design_report"]


def design_report(
    organization: MemoryOrganization,
    c: int,
    pndc: float,
    policy: SelectionPolicy = SelectionPolicy.EXACT,
    column_zero_latency: bool = True,
    fault_rate_per_hour: float = 1e-5,
    decoder_area_fraction: float = 0.1,
    plan: Optional[MemoryCodePlan] = None,
) -> str:
    """Render the full design report as plain text.

    Thin wrapper over ``DesignEngine().evaluate(spec).render()``; a
    caller-supplied ``plan`` overrides the sizing step (table sweeps).
    """
    from repro.design.engine import DesignEngine
    from repro.design.spec import DesignSpec

    spec = DesignSpec.for_organization(
        organization,
        c=c,
        pndc=pndc,
        policy=policy,
        column_zero_latency=column_zero_latency,
    )
    engine = DesignEngine(
        fault_rate_per_hour=fault_rate_per_hour,
        decoder_area_fraction=decoder_area_fraction,
    )
    return engine.evaluate(spec, plan=plan).render()
