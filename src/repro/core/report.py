"""Design report generation — one human-readable page per sized design.

Turns a (memory organisation, requirement) pair into the report a design
review would want: selected codes, the guarantees they buy (per-cycle
escape, Pndc at the required c, expected and quantile latencies), the
area bill under both models, and the §II system-safety consequence.
"""

from __future__ import annotations

from fractions import Fraction
from io import StringIO
from typing import Optional

from repro.area.model import PaperAreaModel
from repro.area.stdcell import StdCellAreaModel
from repro.core.latency import (
    detection_quantile,
    expected_detection_cycles,
)
from repro.core.plan import MemoryCodePlan, plan_memory_codes
from repro.core.safety import SafetyModel
from repro.core.selection import SelectionPolicy
from repro.memory.organization import MemoryOrganization

__all__ = ["design_report"]


def _latency_lines(out: StringIO, selection) -> None:
    escape = selection.achieved_escape
    if escape == 0:
        out.write("    detection latency     : 0 cycles (every fault)\n")
        return
    out.write(
        f"    escape per cycle      : {float(escape):.4g} "
        f"(= {escape})\n"
    )
    out.write(
        f"    Pndc at c={selection.c:<4d}        : "
        f"{selection.achieved_pndc:.3g} "
        f"({'meets' if selection.meets_target else 'MISSES'} "
        f"{selection.pndc_target:g})\n"
    )
    out.write(
        f"    expected detection    : "
        f"{expected_detection_cycles(escape):.2f} cycles\n"
    )
    if escape < 1:
        out.write(
            f"    99.9% detection       : "
            f"<= {detection_quantile(Fraction(escape), 0.999)} cycles\n"
        )


def design_report(
    organization: MemoryOrganization,
    c: int,
    pndc: float,
    policy: SelectionPolicy = SelectionPolicy.EXACT,
    column_zero_latency: bool = True,
    fault_rate_per_hour: float = 1e-5,
    decoder_area_fraction: float = 0.1,
    plan: Optional[MemoryCodePlan] = None,
) -> str:
    """Render the full design report as plain text."""
    plan = plan or plan_memory_codes(
        organization, c, pndc, policy=policy,
        column_zero_latency=column_zero_latency,
    )
    std = StdCellAreaModel()
    analytic = PaperAreaModel()
    out = StringIO()

    out.write("self-checking memory design report\n")
    out.write("==================================\n\n")
    out.write(f"memory           : {organization.label()} "
              f"({organization.words} words x {organization.bits} bits, "
              f"1-out-of-{organization.column_mux} column mux)\n")
    out.write(f"address split    : n={organization.n} = p={organization.p}"
              f" (row) + s={organization.s} (column)\n")
    out.write(f"requirement      : detect decoder faults within c={c} "
              f"cycles, Pndc <= {pndc:g} [{policy.value} sizing]\n\n")

    out.write("row decoder check\n")
    out.write(f"    code                  : {plan.row.code_name} "
              f"(mapping '{plan.row.mapping_kind}', a={plan.row.a_final})\n")
    out.write(f"    ROM                   : {1 << organization.p} lines x "
              f"{plan.r_row} bits\n")
    _latency_lines(out, plan.row)
    out.write("\ncolumn decoder check\n")
    out.write(f"    code                  : {plan.column.code_name} "
              f"(mapping '{plan.column.mapping_kind}', "
              f"a={plan.column.a_final})\n")
    out.write(f"    ROM                   : {1 << organization.s} lines x "
              f"{plan.r_column} bits\n")
    _latency_lines(out, plan.column)

    std_pct = plan.overhead_percent(std)
    breakdown = analytic.breakdown(
        organization, r_row=plan.r_row, r_column=plan.r_column
    )
    out.write("\narea bill\n")
    out.write(f"    decoder check (std-cell model) : {std_pct:.2f} % of the "
              f"RAM macro\n")
    out.write(f"    decoder check (analytic, k=0.3): "
              f"{100 * breakdown.decoder_check:.2f} %\n")
    out.write(f"    data parity bit                : "
              f"{100 * breakdown.parity_bit:.2f} %\n")
    out.write(f"    parity checker                 : "
              f"{100 * breakdown.parity_checker:.2f} %\n")
    out.write(f"    total (analytic)               : "
              f"{100 * breakdown.total:.2f} %\n")

    safety = SafetyModel(
        fault_rate_per_hour=fault_rate_per_hour,
        decoder_area_fraction=decoder_area_fraction,
    )
    residual = safety.rate_with_scheme(plan.row.achieved_pndc)
    baseline = safety.rate_unprotected_decoders()
    out.write("\nsystem safety (SII model)\n")
    out.write(f"    memory fault rate              : "
              f"{fault_rate_per_hour:g} /h, decoders "
              f"{100 * decoder_area_fraction:.0f} % of area\n")
    out.write(f"    undetectable-fault rate        : {residual:.3g} /h "
              f"(vs {baseline:.3g} /h with unchecked decoders)\n")
    improvement = safety.improvement_factor(plan.row.achieved_pndc)
    out.write(f"    improvement                    : "
              f"x{improvement:.3g}\n")
    return out.getvalue()
