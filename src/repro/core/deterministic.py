"""Deterministic detection-latency bounds under scanning address streams.

The paper's latency model is probabilistic (uniform random addresses).
Real systems often interleave a *scan* — a March-like sweep, a refresh
walk, a background scrubber — and under a deterministic periodic stream
the detection latency of every decoder fault has a hard worst-case bound,
not just a tail probability.  This module computes those bounds exactly.

Model: one address per cycle from a periodic stream (default: the full
ascending sweep 0,1,…,2^n−1 repeating).  A stuck-at-1 fault at block
(lo, width, m1) is *detected* at any cycle whose address X satisfies
``mapping.index(X1) != mapping.index(X)`` where X1 forces bits [lo,hi) to
m1 (the merged-line pair).  A stuck-at-0 is detected at any cycle whose
address excites it (sub-value == m1).  The worst-case latency is the
longest run of non-detecting cycles in the periodic stream, maximised
over the fault's insertion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.mapping import AddressMapping
from repro.decoder.analysis import FaultSite, classify_fault_sites
from repro.decoder.tree import DecoderTree

__all__ = [
    "worst_case_latency_for_site",
    "DeterministicBound",
    "deterministic_bounds",
    "scan_guarantee",
]


def _detecting_cycles(
    mapping: AddressMapping,
    stream: Sequence[int],
    lo: int,
    width: int,
    m1: int,
    stuck_value: int,
) -> List[bool]:
    mask = ((1 << width) - 1) << lo
    forced = m1 << lo
    flags: List[bool] = []
    for address in stream:
        if stuck_value == 0:
            # detected when excited: the faulty line is the addressed one
            flags.append((address & mask) == forced)
        else:
            faulty = (address & ~mask) | forced
            flags.append(
                faulty != address
                and mapping.index(faulty) != mapping.index(address)
            )
    return flags


def worst_case_latency_for_site(
    mapping: AddressMapping,
    lo: int,
    width: int,
    m1: int,
    stuck_value: int,
    stream: Optional[Sequence[int]] = None,
) -> Optional[int]:
    """Exact worst-case cycles-to-detection over all insertion times.

    Returns None when the fault is never detected by the stream (e.g. an
    even-modulus mapping's blind sub-decoder).  Latency 1 means the fault
    is caught within one cycle wherever it appears.
    """
    if stream is None:
        stream = range(1 << mapping.n_bits)
    flags = _detecting_cycles(mapping, stream, lo, width, m1, stuck_value)
    if not any(flags):
        return None
    # longest gap between detecting cycles on the periodic stream
    period = len(flags)
    detect_positions = [i for i, flag in enumerate(flags) if flag]
    worst_gap = 0
    for first, second in zip(
        detect_positions, detect_positions[1:] + [detect_positions[0] + period]
    ):
        worst_gap = max(worst_gap, second - first)
    return worst_gap


@dataclass
class DeterministicBound:
    site: FaultSite
    latency: Optional[int]


def deterministic_bounds(
    tree: DecoderTree,
    mapping: AddressMapping,
    stream: Optional[Sequence[int]] = None,
) -> List[DeterministicBound]:
    """Worst-case bound for every in-model fault site of a decoder tree."""
    bounds: List[DeterministicBound] = []
    for site in classify_fault_sites(tree, include_inputs=False):
        latency = worst_case_latency_for_site(
            mapping,
            site.block_lo,
            site.block_width,
            site.sub_value,
            0 if site.kind == "sa0" else 1,
            stream=stream,
        )
        bounds.append(DeterministicBound(site=site, latency=latency))
    return bounds


def scan_guarantee(
    tree: DecoderTree,
    mapping: AddressMapping,
    stream: Optional[Sequence[int]] = None,
) -> Optional[int]:
    """The hard latency guarantee a periodic scan buys: max over faults.

    Returns None if any fault is undetectable by the stream.  For the
    mod-a mapping with odd a and the full sweep, every fault is covered
    and the guarantee is at most one sweep period plus the in-sweep gap.
    """
    bounds = deterministic_bounds(tree, mapping, stream=stream)
    latencies = [b.latency for b in bounds]
    if any(latency is None for latency in latencies):
        return None
    return max(latencies) if latencies else 0
