"""Code selection from (detection latency, escape probability) — §III.2.

Given the tolerated detection latency ``c`` (clock cycles) and escape
probability ``Pndc``, pick the cheapest unordered code whose mod-a mapping
meets them.  Two sizing policies are provided because the paper itself
uses both (see DESIGN.md §2):

* :attr:`SelectionPolicy.EXACT` — search the smallest odd ``a`` whose
  *exact* worst-case per-cycle escape ``max_i ceil(2^i/a)/2^i`` satisfies
  ``escape^c <= Pndc``.  This guarantees the spec for every decoder block
  width.  Reproduces Table 1 rows c = 2, 10, 20, 40 and Table 2 rows
  1e-2, 1e-5, 1e-9, 1e-15, 1e-30.
* :attr:`SelectionPolicy.APPROXIMATE` — the paper's shortcut
  ``a = ceil(Pndc^(-1/c))`` (bumped to odd), which treats the per-cycle
  escape as ``1/a``.  Reproduces all six Table 2 rows, including 1e-20
  where the exact bound would demand a wider code.

Either way, the q-out-of-r code is the minimal-width maximal constant
weight code with ``C(r, q) >= a``; the final mapping modulus is ``C`` if
odd, ``C - 1`` if even, with the completion remap re-emitting the unused
word (§III.2 last paragraph).  The 1-out-of-2 + parity-mapping special
case is taken whenever it already meets the spec (per-cycle escape is
exactly 1/2 for every block).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from repro.codes.m_out_of_n import MOutOfNCode, maximal_code_for_width
from repro.core.latency import (
    required_a_for,
    worst_escape_over_blocks,
)
from repro.utils.combinatorics import smallest_r_for_cardinality

__all__ = [
    "SelectionPolicy",
    "CodeSelection",
    "select_code",
    "select_zero_latency_code",
    "evaluate_code",
]

#: Default cap on decoder block width considered by the exact worst case.
#: 64 covers any realistic address width; the supremum stabilises long
#: before that (the bound is ~2/2^i once 2^i > a).
DEFAULT_MAX_BLOCK_WIDTH = 64


class SelectionPolicy(enum.Enum):
    """How the modulus ``a`` is sized from (c, Pndc)."""

    EXACT = "exact"
    APPROXIMATE = "approximate"


@dataclass
class CodeSelection:
    """Outcome of the code-selection procedure."""

    c: int
    pndc_target: float
    policy: SelectionPolicy
    #: modulus demanded by the sizing rule, before the code rounds it up
    a_required: int
    #: the selected q-out-of-r code
    code: MOutOfNCode
    #: final mapping modulus (C if odd else C-1); 2 for the parity mapping
    a_final: int
    #: 'parity' for the 1-out-of-2 endpoint, else 'mod'
    mapping_kind: str
    #: exact worst-case per-cycle escape achieved with a_final
    achieved_escape: Fraction = field(default=Fraction(1))
    #: achieved_escape ** c
    achieved_pndc: float = 0.0
    #: True iff achieved_pndc <= pndc_target (can be False under APPROXIMATE)
    meets_target: bool = True

    @property
    def rom_width(self) -> int:
        """ROM bits per decoder output — the ``r`` that drives area."""
        return self.code.n

    @property
    def code_name(self) -> str:
        return self.code.name

    def to_dict(self) -> dict:
        """JSON-safe summary (exact escape carried as a fraction string)."""
        return {
            "c": self.c,
            "pndc_target": self.pndc_target,
            "policy": self.policy.value,
            "a_required": self.a_required,
            "code": self.code_name,
            "a_final": self.a_final,
            "mapping_kind": self.mapping_kind,
            "rom_width": self.rom_width,
            "escape_per_cycle": str(self.achieved_escape),
            "pndc_achieved": self.achieved_pndc,
            "meets_target": self.meets_target,
        }

    def describe(self) -> str:
        return (
            f"c={self.c}, Pndc<={self.pndc_target:g} [{self.policy.value}] "
            f"-> a_req={self.a_required}, code={self.code_name}, "
            f"a={self.a_final}, escape/cycle={float(self.achieved_escape):.4g}, "
            f"Pndc={self.achieved_pndc:.3g} "
            f"({'meets' if self.meets_target else 'MISSES'} target)"
        )


def _parity_candidate(
    c: int, pndc_target: float, policy: SelectionPolicy
) -> bool:
    """Is the 1-out-of-2 endpoint sufficient?

    Its per-cycle escape is exactly 1/2 for every block (parity of the
    inputs splits each block's sub-values evenly).  Under the approximate
    policy the equivalent condition is ``a_req <= 2``.
    """
    if policy is SelectionPolicy.APPROXIMATE:
        return math.ceil(pndc_target ** (-1.0 / c)) <= 2
    return 0.5 ** c <= pndc_target


def _approximate_a(c: int, pndc_target: float) -> int:
    """The paper's shortcut: ``a = ceil(Pndc^{-1/c})``, bumped to odd."""
    a = math.ceil(pndc_target ** (-1.0 / c))
    # Guard against float dust placing us a hair above an exact integer.
    if a > 1 and (a - 1) ** c * pndc_target >= 1.0:
        a -= 1
    if a % 2 == 0:
        a += 1
    return max(a, 3)


def select_code(
    c: int,
    pndc_target: float,
    policy: SelectionPolicy = SelectionPolicy.EXACT,
    max_block_width: int = DEFAULT_MAX_BLOCK_WIDTH,
) -> CodeSelection:
    """Pick the cheapest unordered code meeting (c, Pndc).

    >>> sel = select_code(10, 1e-9)
    >>> sel.code_name, sel.a_final
    ('3-out-of-5', 9)
    >>> select_code(10, 1e-2).code_name
    '1-out-of-2'
    """
    if c < 1:
        raise ValueError(f"c must be >= 1 clock cycle, got {c}")
    if not 0 < pndc_target < 1:
        raise ValueError(
            f"Pndc target must be in (0, 1), got {pndc_target}"
        )

    if _parity_candidate(c, pndc_target, policy):
        code = MOutOfNCode(1, 2)
        escape = Fraction(1, 2)
        achieved = float(escape) ** c
        return CodeSelection(
            c=c,
            pndc_target=pndc_target,
            policy=policy,
            a_required=2,
            code=code,
            a_final=2,
            mapping_kind="parity",
            achieved_escape=escape,
            achieved_pndc=achieved,
            meets_target=achieved <= pndc_target,
        )

    if policy is SelectionPolicy.EXACT:
        a_req = required_a_for(c, pndc_target, max_block_width)
    else:
        a_req = _approximate_a(c, pndc_target)

    r = smallest_r_for_cardinality(a_req)
    code = maximal_code_for_width(r)
    cardinality = code.cardinality()
    a_final = cardinality if cardinality % 2 else cardinality - 1
    escape = worst_escape_over_blocks(a_final, max_block_width)
    achieved = float(escape) ** c
    meets = achieved <= pndc_target

    if policy is SelectionPolicy.EXACT and not meets:
        # a_final >= a_req and the worst-case escape is non-increasing in
        # a, so this should not trigger; widen defensively if it ever does.
        while not meets:  # pragma: no cover - defensive
            r += 1
            code = maximal_code_for_width(r)
            cardinality = code.cardinality()
            a_final = cardinality if cardinality % 2 else cardinality - 1
            escape = worst_escape_over_blocks(a_final, max_block_width)
            achieved = float(escape) ** c
            meets = achieved <= pndc_target

    return CodeSelection(
        c=c,
        pndc_target=pndc_target,
        policy=policy,
        a_required=a_req,
        code=code,
        a_final=a_final,
        mapping_kind="mod",
        achieved_escape=escape,
        achieved_pndc=achieved,
        meets_target=meets,
    )


def select_zero_latency_code(n_bits: int) -> CodeSelection:
    """The [NIC 94] endpoint: one code word per decoder output.

    Detection latency is zero for *every* stuck-at fault; the cost is the
    widest ROM of the trade-off (e.g. 9-out-of-18 already covers 2^15
    outputs).
    """
    if n_bits < 1:
        raise ValueError(f"n_bits must be >= 1, got {n_bits}")
    need = 1 << n_bits
    r = smallest_r_for_cardinality(need)
    code = maximal_code_for_width(r)
    return CodeSelection(
        c=1,
        pndc_target=0.5,  # nominal; zero latency beats any target
        policy=SelectionPolicy.EXACT,
        a_required=need,
        code=code,
        a_final=need,
        mapping_kind="identity",
        achieved_escape=Fraction(0),
        achieved_pndc=0.0,
        meets_target=True,
    )


def evaluate_code(
    code: MOutOfNCode,
    c: int,
    pndc_target: Optional[float] = None,
    max_block_width: int = DEFAULT_MAX_BLOCK_WIDTH,
) -> CodeSelection:
    """Assess a *given* code (e.g. the paper's table rows) against (c, Pndc).

    Used by the table benches to print the paper's own code choices next
    to ours with their achieved escape probabilities.
    """
    if (code.m, code.n) == (1, 2):
        escape = Fraction(1, 2)
        a_final = 2
        kind = "parity"
    else:
        cardinality = code.cardinality()
        a_final = cardinality if cardinality % 2 else cardinality - 1
        escape = worst_escape_over_blocks(a_final, max_block_width)
        kind = "mod"
    achieved = float(escape) ** c
    target = pndc_target if pndc_target is not None else achieved
    return CodeSelection(
        c=c,
        pndc_target=target,
        policy=SelectionPolicy.EXACT,
        a_required=a_final,
        code=code,
        a_final=a_final,
        mapping_kind=kind,
        achieved_escape=escape,
        achieved_pndc=achieved,
        meets_target=achieved <= target,
    )
