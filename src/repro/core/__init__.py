"""The paper's primary contribution: latency-driven code selection,
address mappings, the analytic latency model, the assembled figure-3
scheme, the §II safety model and the trade-off explorer."""

from repro.core.latency import (
    collision_count,
    cycles_to_reach,
    detection_quantile,
    escape_probability,
    expected_detection_cycles,
    pndc,
    required_a_for,
    worst_escape_over_blocks,
    worst_escape_probability,
    worst_pndc,
)
from repro.core.mapping import (
    AddressMapping,
    IdentityMapping,
    ModAMapping,
    ParityMapping,
    TruncatedBergerMapping,
    mapping_for_code,
)
from repro.core.deterministic import (
    DeterministicBound,
    deterministic_bounds,
    scan_guarantee,
    worst_case_latency_for_site,
)
from repro.core.plan import MemoryCodePlan, plan_memory_codes
from repro.core.report import design_report
from repro.core.safety import (
    SafetyModel,
    undetectable_rate_unchecked_decoders,
    undetectable_rate_with_coverage,
)
from repro.core.scheme import ReadResult, SelfCheckingMemory
from repro.core.selection import (
    CodeSelection,
    SelectionPolicy,
    evaluate_code,
    select_code,
    select_zero_latency_code,
)
from repro.core.tradeoff import TradeoffExplorer, TradeoffPoint

__all__ = [
    "collision_count",
    "escape_probability",
    "worst_escape_probability",
    "worst_escape_over_blocks",
    "pndc",
    "worst_pndc",
    "required_a_for",
    "cycles_to_reach",
    "expected_detection_cycles",
    "detection_quantile",
    "AddressMapping",
    "ModAMapping",
    "ParityMapping",
    "IdentityMapping",
    "TruncatedBergerMapping",
    "mapping_for_code",
    "SelectionPolicy",
    "CodeSelection",
    "select_code",
    "select_zero_latency_code",
    "evaluate_code",
    "ReadResult",
    "SelfCheckingMemory",
    "SafetyModel",
    "undetectable_rate_unchecked_decoders",
    "undetectable_rate_with_coverage",
    "TradeoffExplorer",
    "TradeoffPoint",
    "DeterministicBound",
    "deterministic_bounds",
    "scan_guarantee",
    "worst_case_latency_for_site",
    "MemoryCodePlan",
    "plan_memory_codes",
    "design_report",
]
