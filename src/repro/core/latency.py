"""Detection-latency arithmetic (§III.2) — the paper's probability model.

Model recap.  A stuck-at-1 in a decoding block that decodes ``i`` address
bits at offset ``j`` merges the faulty line (sub-value ``m1``) with the
line actually addressed (sub-value ``m2``).  Under the mod-a mapping the
merge escapes iff ``2^j·m1 ≡ 2^j·m2 (mod a)``; with ``a`` odd this reduces
to ``m1 ≡ m2 (mod a)``.  With one uniformly random address per clock
cycle, the per-cycle probability that the fault stays *undetected*
(counting cycles where no error occurs, i.e. ``m2 = m1``) is::

    P_nd(i, a, m1) = #{x in [0, 2^i) : x ≡ m1 (mod a)} / 2^i
                  <= ceil(2^i / a) / 2^i          (the paper's bound)

and the probability of surviving ``c`` cycles is ``P_nd^c`` — the paper's
``Pndc = (⌈2^i/a⌉/2^i)^c``.  For blocks with ``2^i <= a`` only ``x = m1``
collides, so the first *error* is detected (zero detection latency).

This module provides the exact counts, the paper's worst-case bound, its
supremum over block widths, and derived quantities (expected latency,
quantiles of the geometric detection law) used by the benches.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional

__all__ = [
    "collision_count",
    "escape_probability",
    "worst_escape_probability",
    "worst_escape_over_blocks",
    "pndc",
    "worst_pndc",
    "required_a_for",
    "cycles_to_reach",
    "expected_detection_cycles",
    "detection_quantile",
]


def collision_count(i: int, a: int, m1: int, modulus_gcd: int = 1) -> int:
    """#{x in [0, 2^i) : x ≡ m1 (mod a/gcd)} — exact escape count.

    ``modulus_gcd`` models the §III.2 pathology: when ``gcd(2^j, a) = f``,
    the effective modulus seen by a block at offset ``j`` is ``a/f``.  For
    the paper's odd ``a`` the gcd is always 1.
    """
    if i < 0:
        raise ValueError(f"block width must be >= 0, got {i}")
    if a < 1:
        raise ValueError(f"a must be >= 1, got {a}")
    if modulus_gcd < 1 or a % modulus_gcd:
        raise ValueError(f"gcd {modulus_gcd} must divide a={a}")
    eff = a // modulus_gcd
    total = 1 << i
    residue = m1 % eff
    if residue >= total:
        return 0
    return (total - 1 - residue) // eff + 1


def escape_probability(
    i: int, a: int, m1: Optional[int] = None, modulus_gcd: int = 1
) -> Fraction:
    """Exact per-cycle non-detection probability for one fault.

    With ``m1=None`` returns the worst case over the faulty line's
    sub-value, which is the paper's ``ceil(2^i/a) / 2^i``.

    >>> escape_probability(4, 9)      # ceil(16/9)/16
    Fraction(1, 8)
    >>> escape_probability(3, 9)      # 2^3 <= 9: only x = m1 collides
    Fraction(1, 8)
    """
    total = 1 << i
    if m1 is None:
        eff = (a // modulus_gcd) if modulus_gcd > 1 else a
        return Fraction(math.ceil(total / eff), total)
    return Fraction(collision_count(i, a, m1, modulus_gcd), total)


def worst_escape_probability(i: int, a: int) -> Fraction:
    """The paper's bound ``ceil(2^i/a)/2^i`` (worst m1, odd a)."""
    return escape_probability(i, a, m1=None)


def worst_escape_over_blocks(a: int, max_width: int) -> Fraction:
    """Supremum of the per-cycle escape over block widths ``1..max_width``.

    The paper notes the bound is maximised by the smallest ``i`` with
    ``2^i > a``; for smaller blocks the "escape" is just the
    non-excitation probability ``1/2^i`` which can exceed it, so we take
    the honest maximum over *error-producing* regimes: for ``2^i <= a``
    the first error is detected (zero detection latency), and the paper's
    trade-off formula uses only the ``2^i > a`` regime.  If no width
    exceeds ``a`` (tiny decoders), every fault has zero latency and the
    escape is the non-excitation probability of the widest block.
    """
    if max_width < 1:
        raise ValueError(f"max_width must be >= 1, got {max_width}")
    widths = [i for i in range(1, max_width + 1) if (1 << i) > a]
    if not widths:
        return Fraction(1, 1 << max_width)
    return max(worst_escape_probability(i, a) for i in widths)


def pndc(i: int, a: int, c: int, m1: Optional[int] = None) -> Fraction:
    """Probability of escaping ``c`` consecutive cycles: ``P_nd^c``.

    >>> float(pndc(4, 9, 10))   # the paper's worked example: ~9.3e-10
    9.313225746154785e-10
    """
    if c < 1:
        raise ValueError(f"c must be >= 1, got {c}")
    return escape_probability(i, a, m1) ** c


def worst_pndc(a: int, c: int, max_width: int) -> Fraction:
    """Worst-case ``Pndc`` over all block widths of a decoder."""
    return worst_escape_over_blocks(a, max_width) ** c


def required_a_for(c: int, pndc_target: float, max_width: int = 64) -> int:
    """Smallest odd ``a`` meeting ``worst_pndc(a, c) <= pndc_target``.

    This is the exact-search version of the paper's sizing rule (§III.2).
    The paper's shortcut ``a = ceil(Pndc^(-1/c))`` (bumped to odd) is
    implemented in :mod:`repro.core.selection`; the two agree except where
    the ceil-granularity of the exact bound bites (e.g. c=20, Pndc=1e-9
    needs a=5 although 1/3 < the per-cycle target — see DESIGN.md).

    >>> required_a_for(10, 1e-9)
    9
    """
    if not 0 < pndc_target < 1:
        raise ValueError(f"pndc_target must be in (0,1), got {pndc_target}")

    def satisfied(a: int) -> bool:
        worst = worst_escape_over_blocks(a, max_width)
        return float(worst) ** c <= pndc_target

    # Feasibility floor: even as a -> infinity the per-cycle escape never
    # drops below the non-excitation probability of the widest block,
    # 1/2^max_width.  Below that the requirement cannot be met by any
    # finite code under the uniform-traffic model.
    floor = math.log10(0.5) * max_width * c
    if floor > math.log10(pndc_target):
        raise ValueError(
            f"Pndc target {pndc_target:g} within c={c} cycles is below the "
            f"non-excitation floor 2^-{max_width * c} of a width-"
            f"{max_width} decoder block; no finite code satisfies it"
        )

    # The worst-case escape is non-increasing in a (larger modulus =>
    # fewer collisions at every block width), so the predicate is monotone
    # and we can bracket by doubling then binary-search over odd values.
    # Once a exceeds 2^max_width no block can produce a detectable-late
    # error at all (every block is in the zero-latency regime), so the
    # search always terminates by then; the +4 is slack for the doubling.
    limit = 1 << (max_width + 4)
    hi = 3
    while not satisfied(hi):
        hi = hi * 2 + 1  # stays odd
        if hi > limit:  # pragma: no cover - defensive
            raise RuntimeError("no odd a found (target unreachably small?)")
    # Invariant: lo is odd and unsatisfied (a=1 has escape 1), hi is odd
    # and satisfied; narrow to adjacent odd values.
    lo = 1
    while hi - lo > 2:
        mid = (lo + hi) // 2
        if mid % 2 == 0:
            mid += 1
        if mid >= hi:
            mid = hi - 2
        if satisfied(mid):
            hi = mid
        else:
            lo = mid
    return hi


def cycles_to_reach(a: int, pndc_target: float, max_width: int = 64) -> int:
    """Smallest ``c`` such that the worst-case ``Pndc <= target`` for a given a."""
    if not 0 < pndc_target < 1:
        raise ValueError(f"pndc_target must be in (0,1), got {pndc_target}")
    worst = float(worst_escape_over_blocks(a, max_width))
    if worst >= 1.0:
        raise ValueError("per-cycle escape is 1; target unreachable")
    return max(1, math.ceil(math.log(pndc_target) / math.log(worst)))


def expected_detection_cycles(escape: Fraction) -> float:
    """Mean of the geometric detection law: ``1 / (1 - escape)``."""
    if escape >= 1:
        return math.inf
    return float(1 / (1 - escape))


def detection_quantile(escape: Fraction, quantile: float) -> int:
    """Cycles needed so that detection has happened with prob >= quantile.

    >>> detection_quantile(Fraction(1, 8), 0.999)   # 1/8 escape per cycle
    4
    """
    if not 0 < quantile < 1:
        raise ValueError(f"quantile must be in (0,1), got {quantile}")
    if escape == 0:
        return 1
    if escape >= 1:
        raise ValueError("escape probability 1: never detected")
    return max(1, math.ceil(math.log(1 - quantile) / math.log(float(escape))))
