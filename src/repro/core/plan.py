"""Per-decoder code plans — the paper's q1/r1 vs q2/r2 flexibility.

Figure 3 labels the two ROMs with *different* codes (q1-out-of-r1 for the
column decoder, q2-out-of-r2 for the row decoder), and the §IV overhead
formula keeps r1 and r2 separate.  The tables then use one code for both;
this module implements the general case and the optimisation it enables:

* the **column decoder** has only ``2^s`` outputs (8 for the paper's
  mux-8 RAMs).  A zero-latency identity mapping for it needs just
  ``C(r, q) >= 2^s`` — r = 5 for s = 3 — and its ROM is `r·2^s` cells,
  i.e. noise next to the row ROM's ``r·2^p``.  So the plan defaults to a
  **zero-latency column decoder** and spends the latency budget only
  where area is actually at stake, the row decoder.
* asymmetric requirements (different c per decoder) are also supported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.area.stdcell import StdCellAreaModel
from repro.core.mapping import AddressMapping
from repro.core.selection import (
    CodeSelection,
    SelectionPolicy,
    select_code,
    select_zero_latency_code,
)
from repro.memory.organization import MemoryOrganization

__all__ = ["MemoryCodePlan", "plan_memory_codes"]


@dataclass
class MemoryCodePlan:
    """Code assignments for the two decoders of one memory."""

    organization: MemoryOrganization
    row: CodeSelection
    column: CodeSelection

    @property
    def r_row(self) -> int:
        return self.row.rom_width

    @property
    def r_column(self) -> int:
        return self.column.rom_width

    def row_mapping(self) -> AddressMapping:
        return self._mapping(self.row, self.organization.p)

    def column_mapping(self) -> AddressMapping:
        return self._mapping(self.column, self.organization.s)

    @staticmethod
    def _mapping(selection: CodeSelection, n_bits: int) -> AddressMapping:
        from repro.design.registry import build_mapping

        return build_mapping(selection.mapping_kind, selection.code, n_bits)

    def overhead_percent(
        self, model: Optional[StdCellAreaModel] = None
    ) -> float:
        model = model or StdCellAreaModel()
        return model.overhead_percent(
            self.organization, r_row=self.r_row, r_column=self.r_column
        )

    def describe(self) -> str:
        return (
            f"{self.organization.label()}: row {self.row.code_name} "
            f"(a={self.row.a_final}), column {self.column.code_name} "
            f"(a={self.column.a_final}), overhead "
            f"{self.overhead_percent():.2f} %"
        )


def plan_memory_codes(
    organization: MemoryOrganization,
    c: int,
    pndc: float,
    policy: SelectionPolicy = SelectionPolicy.EXACT,
    column_zero_latency: bool = True,
) -> MemoryCodePlan:
    """Size the two decoders independently.

    The row decoder is sized from (c, Pndc) as in §III.2.  The column
    decoder either gets the same treatment (``column_zero_latency=False``,
    the tables' convention) or — the default — a zero-latency identity
    mapping, whose extra cost is bounded by
    ``(r_id - r_row)·2^s`` ROM cells, typically well under 0.1 % of the
    RAM.

    >>> from repro.memory.organization import paper_org
    >>> plan = plan_memory_codes(paper_org('16x2K'), c=10, pndc=1e-9)
    >>> plan.row.code_name, plan.column.mapping_kind
    ('3-out-of-5', 'identity')
    """
    row = select_code(c, pndc, policy=policy)
    if column_zero_latency:
        column = select_zero_latency_code(organization.s)
    else:
        column = row
    return MemoryCodePlan(organization=organization, row=row, column=column)
