"""Trade-off exploration: the paper's contribution as a design-space tool.

The tables of §IV are two 1-D slices of the (c, Pndc, area) surface.
This module generalises them: sweep either knob, list the Pareto frontier
of (detection latency, area overhead), and answer the designer question
the paper's abstract poses — "take the required detection latency and
determine the codes to meet the system requirements" — including the
inverse query (given an area budget, what latency can you afford?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.area.stdcell import StdCellAreaModel
from repro.core.latency import cycles_to_reach
from repro.core.selection import (
    CodeSelection,
    SelectionPolicy,
    select_code,
)
from repro.memory.organization import MemoryOrganization

__all__ = ["TradeoffPoint", "TradeoffExplorer"]


@dataclass
class TradeoffPoint:
    """One design point on the latency/area surface."""

    c: int
    pndc: float
    selection: CodeSelection
    overhead_percent: float

    @property
    def code_name(self) -> str:
        return self.selection.code_name

    def as_row(self) -> tuple:
        return (
            self.c,
            self.pndc,
            self.code_name,
            self.selection.a_final,
            round(self.overhead_percent, 2),
        )


class TradeoffExplorer:
    """Sweep and query the area-vs-latency trade-off for one memory."""

    def __init__(
        self,
        organization: MemoryOrganization,
        area_model: Optional[StdCellAreaModel] = None,
        policy: SelectionPolicy = SelectionPolicy.EXACT,
    ):
        self.organization = organization
        self.area_model = area_model or StdCellAreaModel()
        self.policy = policy

    def point(self, c: int, pndc: float) -> TradeoffPoint:
        selection = select_code(c, pndc, policy=self.policy)
        overhead = self.area_model.overhead_percent(
            self.organization, r_row=selection.rom_width
        )
        return TradeoffPoint(
            c=c, pndc=pndc, selection=selection, overhead_percent=overhead
        )

    def sweep_latency(
        self, cs: Sequence[int], pndc: float
    ) -> List[TradeoffPoint]:
        """Table-1-style sweep: fixed escape target, varying latency."""
        return [self.point(c, pndc) for c in cs]

    def sweep_escape(
        self, c: int, pndcs: Sequence[float]
    ) -> List[TradeoffPoint]:
        """Table-2-style sweep: fixed latency, varying escape target."""
        return [self.point(c, pndc) for pndc in pndcs]

    def pareto_frontier(
        self, cs: Sequence[int], pndc: float
    ) -> List[TradeoffPoint]:
        """Non-dominated (latency, area) points from a latency sweep."""
        points = self.sweep_latency(cs, pndc)
        frontier: List[TradeoffPoint] = []
        best_area = float("inf")
        for pt in sorted(points, key=lambda p: p.c):
            if pt.overhead_percent < best_area - 1e-12:
                frontier.append(pt)
                best_area = pt.overhead_percent
        return frontier

    def max_latency_for_budget(
        self,
        area_budget_percent: float,
        pndc: float,
        c_limit: int = 10_000,
    ) -> Optional[TradeoffPoint]:
        """Inverse query: cheapest latency achievable within an area budget.

        Scans candidate code widths from cheapest up; for each affordable
        code, computes the smallest ``c`` at which the code meets ``pndc``
        and returns the affordable point with the smallest such ``c``.
        Returns None when even the 1-out-of-2 endpoint exceeds the budget.
        """
        best: Optional[TradeoffPoint] = None
        for r in range(2, 40):
            overhead = self.area_model.overhead_percent(
                self.organization, r_row=r
            )
            if overhead > area_budget_percent:
                continue
            from repro.codes.m_out_of_n import maximal_code_for_width

            code = maximal_code_for_width(r)
            cardinality = code.cardinality()
            if (code.m, code.n) == (1, 2):
                a_final = 2
            else:
                a_final = (
                    cardinality if cardinality % 2 else cardinality - 1
                )
            try:
                c_needed = cycles_to_reach(a_final, pndc)
            except ValueError:
                continue
            if c_needed > c_limit:
                continue
            candidate = self.point(c_needed, pndc)
            if best is None or candidate.c < best.c or (
                candidate.c == best.c
                and candidate.overhead_percent < best.overhead_percent
            ):
                if candidate.overhead_percent <= area_budget_percent:
                    best = candidate
        return best
