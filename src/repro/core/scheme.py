"""The assembled self-checking memory of figure 3.

Composition (one instance per memory):

* a behavioural :class:`~repro.memory.ram.BehavioralRAM` (cell array,
  MUX, data register) with one parity bit per word;
* a gate-level **row** decoder tree + NOR matrix + q2-out-of-r2 checker;
* a gate-level **column** decoder tree + NOR matrix + q1-out-of-r1
  checker;
* a parity checker on the data path;
* a two-rail tree merging the three indications into one pair
  (behaviourally merged here; gate counts available for the area model).

Every read returns a :class:`ReadResult` carrying the data and the three
error indications.  Faults are injected on any of the three structural
circuits (decoder/ROM stuck-ats) or behaviourally on the array
(:mod:`repro.memory.faults`), and the campaign driver in
:mod:`repro.faultsim` measures detection latency end to end.

The scheme can be built three ways:

* ``DesignEngine.build(DesignSpec(...))`` — the canonical front door
  (:mod:`repro.design`), which also sizes the column decoder
  independently;
* :meth:`SelfCheckingMemory.from_requirements` — the historical
  shortcut for the paper's flow: give the tolerated detection latency
  ``c`` and escape probability ``Pndc``, the code is selected per
  §III.2 (kept as a thin shim over the same machinery);
* direct construction with explicit codes, for table sweeps and
  ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.area.stdcell import StdCellAreaModel
from repro.checkers.base import indication_valid
from repro.checkers.parity_checker import ParityChecker
from repro.core.mapping import AddressMapping, mapping_for_code
from repro.core.selection import (
    CodeSelection,
    SelectionPolicy,
    select_code,
)
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM
from repro.rom.nor_matrix import CheckedDecoder

__all__ = ["ReadResult", "SelfCheckingMemory"]


@dataclass
class ReadResult:
    """Outcome of one self-checking read access."""

    address: int
    data: Tuple[int, ...]
    #: two-rail indications
    row_indication: Tuple[int, int]
    column_indication: Tuple[int, int]
    parity_indication: Tuple[int, int]

    @property
    def row_ok(self) -> bool:
        return indication_valid(self.row_indication)

    @property
    def column_ok(self) -> bool:
        return indication_valid(self.column_indication)

    @property
    def parity_ok(self) -> bool:
        return indication_valid(self.parity_indication)

    @property
    def error_detected(self) -> bool:
        """Any checker flags a non-code observation."""
        return not (self.row_ok and self.column_ok and self.parity_ok)


class SelfCheckingMemory:
    """Figure-3 self-checking RAM: parity data path + checked decoders."""

    def __init__(
        self,
        organization: MemoryOrganization,
        row_mapping: AddressMapping,
        column_mapping: AddressMapping,
        structural_checkers: bool = False,
        decoder_style: str = "tree",
    ):
        # Checkers and decoder styles resolve through the design
        # registries, so plugin codes work without edits here.  Imported
        # lazily: repro.design imports this module at package-load time.
        from repro.design.registry import checker_for, decoder_for

        if row_mapping.n_bits != organization.p:
            raise ValueError(
                f"row mapping covers {row_mapping.n_bits} bits, "
                f"organization needs p={organization.p}"
            )
        if column_mapping.n_bits != organization.s:
            raise ValueError(
                f"column mapping covers {column_mapping.n_bits} bits, "
                f"organization needs s={organization.s}"
            )
        self.organization = organization
        self.ram = BehavioralRAM(organization, with_parity=True)
        self.row = CheckedDecoder(
            row_mapping,
            name="row",
            decoder=decoder_for(decoder_style, row_mapping.n_bits, "row_tree"),
        )
        self.column = CheckedDecoder(
            column_mapping,
            name="col",
            decoder=decoder_for(
                decoder_style, column_mapping.n_bits, "col_tree"
            ),
        )
        self.row_checker = checker_for(
            row_mapping, structural=structural_checkers
        )
        self.column_checker = checker_for(
            column_mapping, structural=structural_checkers
        )
        self.parity_checker = ParityChecker(organization.bits + 1)
        #: the CodeSelection this memory was sized from, when built via
        #: from_requirements / from_selection / DesignEngine.build
        self.selection: Optional[CodeSelection] = None
        #: structural faults active on the row / column checked decoders
        self.row_faults: list = []
        self.column_faults: list = []

    @classmethod
    def from_requirements(
        cls,
        organization: MemoryOrganization,
        c: int,
        pndc: float,
        policy: SelectionPolicy = SelectionPolicy.EXACT,
        structural_checkers: bool = False,
    ) -> "SelfCheckingMemory":
        """The paper's flow: latency requirement in, sized scheme out.

        Deprecated in favour of
        ``repro.design.DesignEngine().build(DesignSpec(...))``, which
        adds the zero-latency column option and JSON-able reporting.
        """
        selection = select_code(c, pndc, policy=policy)
        return cls.from_selection(
            organization, selection, structural_checkers=structural_checkers
        )

    @classmethod
    def from_selection(
        cls,
        organization: MemoryOrganization,
        selection: CodeSelection,
        structural_checkers: bool = False,
    ) -> "SelfCheckingMemory":
        """Build with one selected code on both decoders (table convention)."""
        row_mapping = mapping_for_code(selection.code, organization.p)
        column_mapping = mapping_for_code(selection.code, organization.s)
        memory = cls(
            organization,
            row_mapping,
            column_mapping,
            structural_checkers=structural_checkers,
        )
        memory.selection = selection
        return memory

    def __repr__(self) -> str:
        return (
            f"SelfCheckingMemory({self.organization.label()}, "
            f"row={self.row.mapping!r}, column={self.column.mapping!r})"
        )

    # -- fault injection -----------------------------------------------------

    def inject_row_fault(self, fault) -> None:
        """Structural stuck-at inside the row decoder tree or its ROM."""
        self.row_faults.append(fault)

    def inject_column_fault(self, fault) -> None:
        self.column_faults.append(fault)

    def inject_memory_fault(self, fault) -> None:
        """Behavioural fault on the array / MUX / data path."""
        self.ram.inject(fault)

    def clear_faults(self) -> None:
        self.row_faults.clear()
        self.column_faults.clear()
        self.ram.clear_faults()

    # -- accesses -------------------------------------------------------------

    def write(self, address: int, data: Sequence[int]) -> None:
        """Plain write: contents stored at the requested address.

        Decoder faults are modelled on the read path by default (writes
        go straight to the array).  Use :meth:`checked_write` to route a
        write through the faulty decoders as real hardware would.
        """
        self.ram.write(address, data)

    def checked_write(self, address: int, data: Sequence[int]) -> ReadResult:
        """Write *through* the (possibly faulty) decoders.

        A stuck-at-1 merge writes the data into **every** selected
        location (the word-line short drives both rows); a stuck-at-0
        drops the write entirely.  The returned :class:`ReadResult`
        carries the decoder-check indications for the write cycle (data
        and parity indication reflect the written word), so concurrent
        checking works for writes exactly as §III intends — the ROM
        observes the word lines regardless of the access type.
        """
        row_value, column_value = self.organization.split_address(address)
        row_lines, row_word = self.row.evaluate(
            row_value, faults=tuple(self.row_faults)
        )
        col_lines, col_word = self.column.evaluate(
            column_value, faults=tuple(self.column_faults)
        )
        for row in (i for i, bit in enumerate(row_lines) if bit):
            for col in (i for i, bit in enumerate(col_lines) if bit):
                self.ram.write(
                    self.organization.join_address(row, col), data
                )
        stored = tuple(data) + (
            self.ram.parity_code.parity_bit(tuple(data)),
        )
        return ReadResult(
            address=address,
            data=tuple(data),
            row_indication=self.row_checker.indication(row_word),
            column_indication=self.column_checker.indication(col_word),
            parity_indication=self.parity_checker.indication(stored),
        )

    def read(self, address: int) -> ReadResult:
        """One checked read: data + the three error indications.

        The word returned to the user follows the *faulty* decoders: if a
        decoder fault redirects or merges word lines, the data comes from
        the line(s) actually selected (merged reads OR... in a real array
        multiple active word lines short bit lines; we model the common
        CMOS behaviour as the bitwise AND of the selected words for
        precharged-high bit lines).
        """
        row_value, column_value = self.organization.split_address(address)

        row_lines, row_word = self.row.evaluate(
            row_value, faults=tuple(self.row_faults)
        )
        col_lines, col_word = self.column.evaluate(
            column_value, faults=tuple(self.column_faults)
        )

        data = self._read_through_lines(row_lines, col_lines, address)

        return ReadResult(
            address=address,
            data=data[: self.organization.bits],
            row_indication=self.row_checker.indication(row_word),
            column_indication=self.column_checker.indication(col_word),
            parity_indication=self.parity_checker.indication(data),
        )

    def _read_through_lines(
        self,
        row_lines: Sequence[int],
        col_lines: Sequence[int],
        requested: int,
    ) -> Tuple[int, ...]:
        """Resolve the (possibly multi-hot) selected lines to a data word."""
        active_rows = [i for i, bit in enumerate(row_lines) if bit]
        active_cols = [i for i, bit in enumerate(col_lines) if bit]
        width = self.ram.word_width
        if not active_rows or not active_cols:
            # Nothing selected: precharged-high bit lines read all-1s.
            return (1,) * width
        word = [1] * width
        for row in active_rows:
            for col in active_cols:
                stored = self.ram.read(
                    self.organization.join_address(row, col)
                )
                word = [w & s for w, s in zip(word, stored)]
        return tuple(word)

    # -- reporting ------------------------------------------------------------

    def area_overhead_percent(
        self, model: Optional[StdCellAreaModel] = None
    ) -> float:
        """Decoder-check overhead under the std-cell model (table metric)."""
        model = model or StdCellAreaModel()
        return model.overhead_percent(
            self.organization,
            r_row=self.row.mapping.rom_width,
            r_column=self.column.mapping.rom_width,
        )
