"""Address-to-code-word mappings (§III.1 and the final mapping of §III.2).

The decoder-check ROM assigns one code word of an unordered code to every
decoder output line.  The mapping determines which stuck-at-1 merges are
detectable: two simultaneously-selected lines escape iff they carry the
*same* code word.  The paper's constructions, all implemented here:

* :class:`ModAMapping` — the paper's final mapping ``B = A mod a`` onto a
  q-out-of-r code, with ``a`` odd (``C(r,q)`` if odd, else ``C(r,q) - 1``)
  and an optional *completion remap* that reassigns one address to the
  otherwise-unused code word so the downstream m-out-of-n checker is fully
  exercised;
* :class:`ParityMapping` — the 1-out-of-2 special case (even parity, odd
  parity of the decoder inputs), replacing mod-2 which would alias with
  the ``2^j`` block offsets;
* :class:`IdentityMapping` — ``a = 2^n`` zero-latency endpoint
  (Nicolaidis'94: one distinct code word per decoder output);
* :class:`TruncatedBergerMapping` — the *preliminary* §III.1 construction
  (Berger code over the low ``n-k`` address bits), kept as the ablation
  baseline: its effective ``a = 2^(n-k)`` is even, so faults in the
  sub-decoder of the high ``k`` bits are never detected.
"""

from __future__ import annotations

import abc
from typing import List

from repro.codes.base import BitVector
from repro.codes.berger import BergerCode
from repro.codes.m_out_of_n import MOutOfNCode
from repro.utils.bitops import parity_of

__all__ = [
    "AddressMapping",
    "ModAMapping",
    "ParityMapping",
    "IdentityMapping",
    "TruncatedBergerMapping",
    "mapping_for_code",
]


class AddressMapping(abc.ABC):
    """Assigns a code word (and a dense *index*) to every decoder output.

    Detection analysis only needs to compare indices: two merged lines are
    detected iff their indices differ (distinct indices denote distinct
    code words of an unordered code).
    """

    #: number of decoder address bits
    n_bits: int
    #: width of the ROM output (bits per code word)
    rom_width: int
    #: number of *distinct* code words actually used (the paper's ``a``
    #: for the mod mapping; 2 for parity; 2^n for identity)
    num_words_used: int

    @abc.abstractmethod
    def index(self, address: int) -> int:
        """Dense code-word index for a decoder output line."""

    @abc.abstractmethod
    def codeword(self, address: int) -> BitVector:
        """The ROM row programmed for a decoder output line."""

    def indices(self) -> List[int]:
        """Index of every address, in address order."""
        return [self.index(addr) for addr in range(1 << self.n_bits)]

    def table(self) -> List[BitVector]:
        """Full ROM programming (one row per decoder output)."""
        return [self.codeword(addr) for addr in range(1 << self.n_bits)]

    def _check_address(self, address: int) -> None:
        if not 0 <= address < (1 << self.n_bits):
            raise ValueError(
                f"address {address} out of range [0, {1 << self.n_bits})"
            )


class ModAMapping(AddressMapping):
    """The paper's ``B = A mod a`` mapping onto a q-out-of-r code.

    ``a`` defaults to ``C(r, q)`` when odd and ``C(r, q) - 1`` when even
    (§III.2: "a must be odd" so that ``gcd(2^j, a) = 1`` for every block
    offset j).  When ``a < C(r, q)`` and ``complete=True``, unused code
    words are assigned to the addresses ``a, a+1, ...`` (one address each,
    when the address space allows) so every code word reaches the checker
    — the paper's completion remap.

    >>> m = ModAMapping(MOutOfNCode(3, 5), n_bits=4)
    >>> m.a
    9
    >>> m.index(13)   # 13 mod 9
    4
    >>> m.index(9)    # completion remap: address 9 takes the unused word
    9
    """

    def __init__(
        self,
        code: MOutOfNCode,
        n_bits: int,
        a: int = None,
        complete: bool = True,
        allow_even_a: bool = False,
    ):
        cardinality = code.cardinality()
        if a is None:
            a = cardinality if cardinality % 2 else cardinality - 1
        if a < 1 or a > cardinality:
            raise ValueError(
                f"a must be within [1, C={cardinality}], got {a}"
            )
        if a % 2 == 0 and not allow_even_a:
            raise ValueError(
                f"a must be odd (got {a}); even a shares a factor with the "
                f"2^j block offsets and leaves sub-decoders unchecked "
                f"(§III.2). Pass allow_even_a=True for ablation studies."
            )
        self.code = code
        self.n_bits = n_bits
        self.a = a
        self.rom_width = code.n
        self.complete = complete
        # Completion remap: address (a + j) -> unused word index (a + j),
        # for each unused index that has a spare address available.
        self._remap = {}
        if complete:
            for unused_index in range(a, cardinality):
                if unused_index < (1 << n_bits):
                    self._remap[unused_index] = unused_index
        self.num_words_used = a + len(self._remap)

    def __repr__(self) -> str:
        return (
            f"ModAMapping(code={self.code.name}, n_bits={self.n_bits}, "
            f"a={self.a}, complete={self.complete})"
        )

    def index(self, address: int) -> int:
        self._check_address(address)
        remapped = self._remap.get(address)
        if remapped is not None:
            return remapped
        return address % self.a

    def codeword(self, address: int) -> BitVector:
        return self.code.word_at(self.index(address))

    def words_emitted(self) -> List[BitVector]:
        """Distinct code words reaching the checker (for self-testing checks)."""
        seen = sorted({self.index(addr) for addr in range(1 << self.n_bits)})
        return [self.code.word_at(i) for i in seen]


class ParityMapping(AddressMapping):
    """1-out-of-2 special case: (even parity, odd parity) of the inputs.

    Word layout: output 0 is the *even-parity* rail (1 iff the address has
    an even number of 1 bits), output 1 the odd rail.  Every address maps
    to one of two complementary 1-out-of-2 words, so ``a = 2``; the parity
    function avoids the gcd pathology a literal ``mod 2`` would have
    (mod 2 looks only at address bit 0; parity mixes all bits, giving
    every block a 1/2 per-cycle detection probability).

    >>> p = ParityMapping(4)
    >>> p.codeword(0)    # parity 0 -> even rail high
    (1, 0)
    >>> p.codeword(7)    # parity 1 -> odd rail high
    (0, 1)
    """

    def __init__(self, n_bits: int):
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = n_bits
        self.rom_width = 2
        self.num_words_used = 2
        self.code = MOutOfNCode(1, 2)

    def __repr__(self) -> str:
        return f"ParityMapping(n_bits={self.n_bits})"

    def index(self, address: int) -> int:
        self._check_address(address)
        return parity_of(address)

    def codeword(self, address: int) -> BitVector:
        return (1, 0) if self.index(address) == 0 else (0, 1)


class IdentityMapping(AddressMapping):
    """Zero-latency endpoint: a distinct code word per decoder output.

    This is the scheme of [NIC 94]: the unordered code has at least as
    many words as the decoder has outputs, so *every* stuck-at-1 merge
    joins two distinct words and is detected on the first erroneous cycle.
    """

    def __init__(self, code: MOutOfNCode, n_bits: int):
        if code.cardinality() < (1 << n_bits):
            raise ValueError(
                f"{code.name} has {code.cardinality()} words; need at least "
                f"{1 << n_bits} for a zero-latency identity mapping"
            )
        self.code = code
        self.n_bits = n_bits
        self.rom_width = code.n
        self.num_words_used = 1 << n_bits

    def __repr__(self) -> str:
        return f"IdentityMapping(code={self.code.name}, n_bits={self.n_bits})"

    def index(self, address: int) -> int:
        self._check_address(address)
        return address

    def codeword(self, address: int) -> BitVector:
        return self.code.word_at(self.index(address))


class TruncatedBergerMapping(AddressMapping):
    """§III.1 preliminary construction (ablation baseline — deliberately flawed).

    The ROM generates the low ``n - k`` address bits plus their Berger
    check bits.  Faults confined to the sub-decoder of the high ``k`` bits
    merge two lines with identical low bits, hence identical code words:
    *infinite* detection latency.  The effective modulus is ``2^(n-k)``
    (even), which is exactly the pathology the final mod-a construction
    removes by requiring odd ``a``.
    """

    def __init__(self, n_bits: int, k: int):
        if not 0 < k < n_bits:
            raise ValueError(
                f"k must satisfy 0 < k < n_bits, got k={k}, n_bits={n_bits}"
            )
        self.n_bits = n_bits
        self.k = k
        self.info_bits = n_bits - k
        self.berger = BergerCode(self.info_bits)
        self.rom_width = self.berger.length
        self.num_words_used = 1 << self.info_bits

    def __repr__(self) -> str:
        return f"TruncatedBergerMapping(n_bits={self.n_bits}, k={self.k})"

    def index(self, address: int) -> int:
        self._check_address(address)
        return address & ((1 << self.info_bits) - 1)

    def codeword(self, address: int) -> BitVector:
        low = self.index(address)
        bits = tuple(
            (low >> (self.info_bits - 1 - i)) & 1
            for i in range(self.info_bits)
        )
        return self.berger.encode(bits)


def mapping_for_code(
    code: MOutOfNCode, n_bits: int, complete: bool = True
) -> AddressMapping:
    """The paper's mapping for a selected code.

    1-out-of-2 gets the parity mapping, other m-out-of-n codes the mod-a
    mapping, plugin codes whatever their registered kind names.  Kept
    here as the historical entry point; the dispatch itself lives in
    :mod:`repro.design.registry` (imported lazily — the design package
    imports this module at load time).
    """
    from repro.design.registry import mapping_for_code as registry_lookup

    return registry_lookup(code, n_bits, complete=complete)
