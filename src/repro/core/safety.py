"""§II safety arithmetic: why unchecked decoders dominate system risk.

The paper's introduction argues with a back-of-envelope model: if the
decoders are fraction ``d`` of the memory area and the whole memory fails
at rate ``lambda`` (faults/hour), then a scheme covering everything but
the decoders leaves an undetected-fault rate of about ``d * lambda``,
while a scheme whose residual escape is ``epsilon`` of real faults leaves
``epsilon * lambda``.  The worked numbers: ``lambda = 1e-5``, a scheme
missing ``1e-4`` of faults gives 1e-9 undetectable faults/hour, whereas
checking only the word array gives roughly
``0.1·1e-5 + 0.9·1e-5·1e-4 ≈ 1e-6`` — three orders worse.

This module wraps that arithmetic so the safety bench (E3) regenerates
the numbers, and extends it with the scheme's own escape model: given a
code selection, the residual rate combines the decoders' probabilistic
escapes with the parity-covered data path.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SafetyModel", "undetectable_rate_unchecked_decoders",
           "undetectable_rate_with_coverage"]


def undetectable_rate_with_coverage(
    fault_rate_per_hour: float, escape_fraction: float
) -> float:
    """Residual rate when the checking scheme misses ``escape_fraction``.

    >>> abs(undetectable_rate_with_coverage(1e-5, 1e-4) - 1e-9) < 1e-24
    True
    """
    if fault_rate_per_hour < 0:
        raise ValueError("fault rate must be non-negative")
    if not 0 <= escape_fraction <= 1:
        raise ValueError("escape fraction must be in [0, 1]")
    return fault_rate_per_hour * escape_fraction


def undetectable_rate_unchecked_decoders(
    fault_rate_per_hour: float,
    decoder_area_fraction: float,
    array_escape_fraction: float,
) -> float:
    """Residual rate when only the word array is checked (§II example).

    Decoder faults (fraction = area share) are entirely uncovered; array
    faults escape at the array scheme's own residual rate.

    >>> rate = undetectable_rate_unchecked_decoders(1e-5, 0.1, 1e-4)
    >>> 9.0e-7 < rate < 1.1e-6
    True
    """
    if not 0 <= decoder_area_fraction <= 1:
        raise ValueError("decoder area fraction must be in [0, 1]")
    decoder_part = decoder_area_fraction * fault_rate_per_hour
    array_part = (
        (1 - decoder_area_fraction)
        * fault_rate_per_hour
        * array_escape_fraction
    )
    return decoder_part + array_part


@dataclass
class SafetyModel:
    """System-level safety for a memory protected by the paper's scheme."""

    #: total memory fault rate (faults/hour)
    fault_rate_per_hour: float
    #: decoders' share of the fault population (≈ area share)
    decoder_area_fraction: float = 0.1
    #: residual escape of the parity-covered array path
    array_escape_fraction: float = 0.0

    def rate_unprotected_decoders(self) -> float:
        """Baseline: parity on the array, nothing on the decoders."""
        return undetectable_rate_unchecked_decoders(
            self.fault_rate_per_hour,
            self.decoder_area_fraction,
            self.array_escape_fraction,
        )

    def rate_with_scheme(self, decoder_escape_fraction: float) -> float:
        """With the ROM scheme: decoder faults escape at the scheme's
        long-run escape (≈ Pndc integrated over the exposure window)."""
        decoder_part = (
            self.decoder_area_fraction
            * self.fault_rate_per_hour
            * decoder_escape_fraction
        )
        array_part = (
            (1 - self.decoder_area_fraction)
            * self.fault_rate_per_hour
            * self.array_escape_fraction
        )
        return decoder_part + array_part

    def improvement_factor(self, decoder_escape_fraction: float) -> float:
        """How much the scheme shrinks the undetectable-fault rate."""
        with_scheme = self.rate_with_scheme(decoder_escape_fraction)
        if with_scheme == 0:
            return float("inf")
        return self.rate_unprotected_decoders() / with_scheme
