"""The paper's analytic area-overhead model (§IV).

For a RAM of ``m``-bit words with row decoder of ``p`` inputs and column
decoder of ``s`` inputs, checking the decoders with codes
``q1-out-of-r1`` (column) and ``q2-out-of-r2`` (row) costs two ROMs of
``r1·2^s`` and ``r2·2^p`` cells.  With ``k`` the ROM-to-RAM cell width
ratio, the paper's overhead is::

    overhead_ROM = k (r1·2^s + r2·2^p) / (m·2^n)

Data-path parity adds ``1/m`` (the extra bit per word) plus a small
parity-checker term.  §IV's worked example (1K×16, mux 8, k = 0.3,
3-out-of-5 on both decoders) quotes 1.9 % for the ROMs; the formula as
printed yields 1.24 % — we reproduce the formula faithfully and record
the discrepancy in EXPERIMENTS.md (the parity numbers 6.25 % and 0.15 %
match exactly, as does the qualitative conclusion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.organization import MemoryOrganization

__all__ = ["PaperAreaModel", "AreaBreakdown"]


@dataclass
class AreaBreakdown:
    """Area overheads as fractions of the bare RAM cell-array area."""

    rom_row: float
    rom_column: float
    parity_bit: float
    parity_checker: float
    code_checkers: float

    @property
    def decoder_check(self) -> float:
        """The trade-off knob: ROMs + q-out-of-r checkers."""
        return self.rom_row + self.rom_column + self.code_checkers

    @property
    def data_check(self) -> float:
        return self.parity_bit + self.parity_checker

    @property
    def total(self) -> float:
        return self.decoder_check + self.data_check

    def percent(self, which: str = "total") -> float:
        return 100.0 * getattr(self, which)


class PaperAreaModel:
    """§IV analytic model with the paper's default constants.

    ``k`` — ROM cell width / RAM cell width (paper: 0.3).
    ``parity_checker_fraction`` — flat checker cost from the §IV example
    (0.15 % of the RAM for a 16-bit word; scaled by 16/m for other
    widths since the XOR tree grows linearly with word width while the
    RAM grows with capacity — callers may override).
    """

    def __init__(
        self,
        k: float = 0.3,
        parity_checker_fraction_16bit: float = 0.0015,
        code_checker_cells_per_gate: float = 1.0,
    ):
        if k <= 0:
            raise ValueError(f"cell ratio k must be positive, got {k}")
        self.k = k
        self.parity_checker_fraction_16bit = parity_checker_fraction_16bit
        self.code_checker_cells_per_gate = code_checker_cells_per_gate

    def rom_overhead(
        self,
        org: MemoryOrganization,
        r_row: int,
        r_column: Optional[int] = None,
    ) -> float:
        """``k (r1·2^s + r2·2^p) / (m·2^n)`` — the headline formula."""
        if r_column is None:
            r_column = r_row
        numerator = self.k * (
            r_column * (1 << org.s) + r_row * (1 << org.p)
        )
        return numerator / (org.bits * (1 << org.n))

    def parity_bit_overhead(self, org: MemoryOrganization) -> float:
        """One extra storage column per word: ``1/m``."""
        return 1.0 / org.bits

    def parity_checker_overhead(self, org: MemoryOrganization) -> float:
        """Scaled from the §IV 16-bit anchor (0.15 %).

        The checker is an (m+1)-input XOR tree (~m gates); the RAM area
        grows with m·2^n, so relative cost scales with the anchor's
        capacity over this organisation's capacity, times m/16.
        """
        anchor_capacity = 16 * 1024  # the §IV example RAM (1K x 16)
        scale = (org.bits / 16.0) * (
            anchor_capacity / float(org.capacity_bits)
        )
        return self.parity_checker_fraction_16bit * scale

    def code_checker_overhead(
        self,
        org: MemoryOrganization,
        checker_gates_row: int,
        checker_gates_column: int,
    ) -> float:
        """q-out-of-r checkers, from gate counts ("insignificant" in §IV)."""
        cells = self.code_checker_cells_per_gate * (
            checker_gates_row + checker_gates_column
        )
        return cells / float(org.capacity_bits)

    def breakdown(
        self,
        org: MemoryOrganization,
        r_row: int,
        r_column: Optional[int] = None,
        checker_gates_row: int = 0,
        checker_gates_column: int = 0,
    ) -> AreaBreakdown:
        if r_column is None:
            r_column = r_row
        rom_row = self.k * r_row * (1 << org.p) / (org.bits * (1 << org.n))
        rom_col = self.k * r_column * (1 << org.s) / (
            org.bits * (1 << org.n)
        )
        return AreaBreakdown(
            rom_row=rom_row,
            rom_column=rom_col,
            parity_bit=self.parity_bit_overhead(org),
            parity_checker=self.parity_checker_overhead(org),
            code_checkers=self.code_checker_overhead(
                org, checker_gates_row, checker_gates_column
            ),
        )
