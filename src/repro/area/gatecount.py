"""Gate counts and gate-area weights for the scheme's logic blocks.

Feeds both area models with the sizes of the non-ROM logic: decoder
trees, q-out-of-r checkers (sorting network), parity checkers and
two-rail trees.  Gate areas are expressed in RAM-cell-equivalents; the
XOR weight is calibrated from the §IV data point (a 17-bit parity checker
= 0.15 % of a 1K×16 RAM ⇒ ≈ 2.2 cells per XOR), the rest follow typical
standard-cell relative sizes.
"""

from __future__ import annotations

from typing import Dict

from repro.circuits.netlist import Circuit

__all__ = [
    "GATE_AREA_CELLS",
    "circuit_area_cells",
    "decoder_gate_count",
    "m_out_of_n_checker_gates",
    "parity_checker_gates",
    "two_rail_tree_gates",
]

#: Area per gate type, in RAM-cell-equivalents (calibrated; see module doc).
GATE_AREA_CELLS: Dict[str, float] = {
    "not": 0.6,
    "buf": 0.6,
    "and": 1.1,
    "or": 1.1,
    "nand": 0.9,
    "nor": 0.9,
    "xor": 2.2,
    "xnor": 2.2,
    "const0": 0.0,
    "const1": 0.0,
}


def circuit_area_cells(circuit: Circuit) -> float:
    """Total gate area of a netlist in RAM-cell-equivalents."""
    total = 0.0
    for gate in circuit.gates:
        weight = GATE_AREA_CELLS.get(gate.gate_type.value)
        if weight is None:
            raise KeyError(
                f"no area weight for gate type {gate.gate_type.value!r}"
            )
        # NOR fan-in grows with ROM lines; charge per input beyond 2.
        extra_inputs = max(0, len(gate.inputs) - 2)
        total += weight * (1.0 + 0.35 * extra_inputs)
    return total


def decoder_gate_count(n_bits: int) -> int:
    """Gates in the §III.2 decoder tree for ``n`` address bits.

    n inverters (0-level) plus one 2-input AND per block output of every
    higher level.  For power-of-two n this is
    ``n + sum over levels of (number of block outputs)``; we count the
    actual construction to stay exact for any n.

    >>> decoder_gate_count(2)   # 2 inverters + 4 ANDs
    6
    """
    from repro.decoder.tree import DecoderTree

    return DecoderTree(n_bits).circuit.num_gates


def m_out_of_n_checker_gates(m: int, n: int) -> int:
    """Gates in the sorting-network m-out-of-n checker.

    Odd-even transposition: n rounds of floor((n - offset) / 2) adjacent
    comparators, 2 gates each.

    >>> m_out_of_n_checker_gates(1, 2)   # one comparator, 2 gates
    2
    """
    comparators = 0
    for rnd in range(n):
        start = rnd % 2
        comparators += len(range(start, n - 1, 2))
    return 2 * comparators


def parity_checker_gates(width: int) -> int:
    """XOR gates in the split two-tree parity checker plus 1 inverter."""
    half = width // 2
    xors = max(0, half - 1) + max(0, (width - half) - 1)
    return xors + 1


def two_rail_tree_gates(pairs: int) -> int:
    """Gates in a two-rail checker tree over ``pairs`` rail pairs."""
    return 6 * max(0, pairs - 1)
