"""Calibrated standard-cell area model — reproduces Tables 1 and 2.

The paper measured real AT&T 0.4 µm standard-cell layouts (proprietary).
We substitute a two-parameter physical model, calibrated once against the
table slopes (see DESIGN.md §3):

* RAM macro area, in RAM-cell-equivalents::

      A_ram(capacity) = capacity + PERIPHERY * sqrt(capacity)

  The square-root term models the row/column periphery (sense amps,
  drivers, decoders) that dominates less as capacity grows — it is what
  makes the relative overhead fall by slightly *less* than 2x per 4x
  capacity step in the tables (24.8 → 13.7 → 7.3 instead of a pure
  halving).

* Decoder-check logic area ≈ ``ROM_CELL * r * (2^p + 2^s)`` — the two
  NOR-matrix ROMs realised in standard cells, hence the large cell ratio
  relative to the compiled RAM macro (the paper's k = 0.3 applies to a
  dense ROM next to a dense RAM; a std-cell ROM next to a compiled RAM
  macro is an order of magnitude worse, which is why Table 1's overheads
  are ~20x the §IV analytic example).

Calibration (two anchor ratios + one absolute point from Table 1):

* slope ratios 4.93/2.74 and 2.74/1.46 (% per unit r across the three
  RAM sizes) fix ``PERIPHERY = 53.5`` via
  ``(4 + 2rho) / (1 + rho) = 3.544`` with ``rho = PERIPHERY/sqrt(c1)``;
* the absolute anchor (16x2K, 3-out-of-5 ⇒ 24.8 %) fixes
  ``ROM_CELL = 7.93``.

With these two constants the model reproduces all 36 table entries within
a few percent relative error (verified in tests and printed by the table
benches).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.area.gatecount import m_out_of_n_checker_gates
from repro.memory.organization import MemoryOrganization

__all__ = ["StdCellAreaModel"]


class StdCellAreaModel:
    """Standard-cell implementation cost, calibrated to §IV's tables."""

    #: periphery coefficient of the RAM macro model (cells per sqrt(bit))
    PERIPHERY = 53.5
    #: std-cell ROM cost per programmed bit, in RAM-cell-equivalents
    ROM_CELL = 7.93
    #: std-cell cost per checker gate, in RAM-cell-equivalents
    CHECKER_GATE = 1.1

    def __init__(
        self,
        periphery: Optional[float] = None,
        rom_cell: Optional[float] = None,
        include_checkers: bool = False,
    ):
        self.periphery = self.PERIPHERY if periphery is None else periphery
        self.rom_cell = self.ROM_CELL if rom_cell is None else rom_cell
        self.include_checkers = include_checkers

    def ram_area(self, org: MemoryOrganization) -> float:
        """RAM macro area in cell-equivalents (storage + periphery)."""
        capacity = float(org.capacity_bits)
        return capacity + self.periphery * math.sqrt(capacity)

    def decoder_check_area(
        self,
        org: MemoryOrganization,
        r_row: int,
        r_column: Optional[int] = None,
        m_row: Optional[int] = None,
        m_column: Optional[int] = None,
    ) -> float:
        """Area of the two ROMs (plus checkers when enabled)."""
        if r_column is None:
            r_column = r_row
        area = self.rom_cell * (
            r_row * (1 << org.p) + r_column * (1 << org.s)
        )
        if self.include_checkers and m_row is not None:
            gates = m_out_of_n_checker_gates(m_row, r_row)
            if m_column is not None:
                gates += m_out_of_n_checker_gates(m_column, r_column)
            area += self.CHECKER_GATE * gates
        return area

    def overhead_percent(
        self,
        org: MemoryOrganization,
        r_row: int,
        r_column: Optional[int] = None,
        m_row: Optional[int] = None,
        m_column: Optional[int] = None,
    ) -> float:
        """Decoder-check overhead as % of the RAM macro — the table metric.

        >>> model = StdCellAreaModel()
        >>> org = MemoryOrganization(2048, 16, column_mux=8)
        >>> round(model.overhead_percent(org, 5), 1)   # 3-out-of-5: ~24.8
        24.7
        """
        added = self.decoder_check_area(
            org, r_row, r_column, m_row, m_column
        )
        return 100.0 * added / self.ram_area(org)

    def slope_percent_per_r(self, org: MemoryOrganization) -> float:
        """Overhead per unit of code width r (both decoders same code)."""
        return self.overhead_percent(org, 1)
