"""Area models: the paper's analytic formula and the calibrated std-cell model."""

from repro.area.gatecount import (
    GATE_AREA_CELLS,
    circuit_area_cells,
    decoder_gate_count,
    m_out_of_n_checker_gates,
    parity_checker_gates,
    two_rail_tree_gates,
)
from repro.area.model import AreaBreakdown, PaperAreaModel
from repro.area.stdcell import StdCellAreaModel

__all__ = [
    "PaperAreaModel",
    "AreaBreakdown",
    "StdCellAreaModel",
    "GATE_AREA_CELLS",
    "circuit_area_cells",
    "decoder_gate_count",
    "m_out_of_n_checker_gates",
    "parity_checker_gates",
    "two_rail_tree_gates",
]
