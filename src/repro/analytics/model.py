"""Typed trend model — what every analytics source normalises into.

One :class:`TrendSeries` is the trajectory of a single numeric metric
of a single bench (``decoder_n6_c512`` x ``vector_speedup``), ordered
oldest to newest, with each :class:`TrendPoint` carrying the version,
timestamp and git SHA that produced it.  The four ``BENCH_*`` history
families and the result-store provenance groups all parse into this
one shape, so the regression detector and the renderers never see a
raw JSONL schema.

:class:`Regression` is the detector's structured finding: offending
bench/metric, the windowed baseline, the observed value, the relative
change, and the before/after version + SHA pair that makes the erosion
attributable to a commit.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "POLARITIES",
    "SEVERITIES",
    "TrendPoint",
    "TrendSeries",
    "Regression",
    "TrendGroup",
]

#: direction of goodness for a gated metric
POLARITIES = ("higher", "lower")

#: regression severities: ``hard`` fails the check (exit 2), ``warn``
#: is annotation-only (shared runners make raw wall seconds noisy)
SEVERITIES = ("hard", "warn")


@dataclass(frozen=True)
class TrendPoint:
    """One measurement of one metric at one point in history."""

    value: float
    #: repro version that produced the entry (``"?"`` when the record
    #: predates version stamping)
    version: str = "?"
    timestamp: Optional[float] = None
    #: short git SHA, when the entry was stamped with one (1.9+)
    git_sha: Optional[str] = None
    #: position of the owning entry within its history file
    index: int = 0

    def to_dict(self) -> dict:
        data: dict = {"value": self.value, "version": self.version}
        if self.timestamp is not None:
            data["timestamp"] = self.timestamp
        if self.git_sha is not None:
            data["git_sha"] = self.git_sha
        return data

    def label(self) -> str:
        """``1.8.0 @abc1234`` — how renderers attribute a point."""
        if self.git_sha:
            return f"{self.version} @{self.git_sha}"
        return self.version


@dataclass
class TrendSeries:
    """The ordered trajectory of one bench's one metric."""

    bench: str
    metric: str
    #: history family (the payload's ``bench`` tag, e.g.
    #: ``campaign_engines``) or a provenance-group label
    family: str = ""
    #: file (or store root) the series was loaded from
    source: str = ""
    points: List[TrendPoint] = field(default_factory=list)

    @property
    def name(self) -> str:
        return f"{self.bench}.{self.metric}"

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> List[float]:
        return [point.value for point in self.points]

    @property
    def last(self) -> Optional[TrendPoint]:
        return self.points[-1] if self.points else None

    def baseline(self, window: int) -> Optional[float]:
        """Median of the up-to-``window`` points *preceding* the last —
        the noise-tolerant reference the observed (last) point is
        judged against.  ``None`` when there is no preceding history
        (single-entry series never crash, they skip)."""
        if len(self.points) < 2 or window < 1:
            return None
        trailing = self.values()[:-1][-window:]
        return float(statistics.median(trailing))

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "family": self.family,
            "source": self.source,
            "points": [point.to_dict() for point in self.points],
        }


@dataclass(frozen=True)
class Regression:
    """One detected metric erosion, with the evidence attached."""

    bench: str
    metric: str
    severity: str
    polarity: str
    #: median of the trailing window (the "before" value)
    baseline: float
    #: the last point's value (the "after" value)
    observed: float
    #: relative change in the *bad* direction, percent (always >= 0)
    change_pct: float
    tolerance_pct: float
    #: how many points the baseline median covered
    window_used: int
    #: attribution: where the baseline window ended / what produced
    #: the observed point (version + SHA labels)
    before: str = "?"
    after: str = "?"
    family: str = ""

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; known: {SEVERITIES}"
            )
        if self.polarity not in POLARITIES:
            raise ValueError(
                f"unknown polarity {self.polarity!r}; known: {POLARITIES}"
            )

    def describe(self) -> str:
        """The one-line finding the CLI prints."""
        direction = (
            "dropped" if self.polarity == "higher" else "rose"
        )
        return (
            f"{self.bench} {self.metric} {direction} "
            f"{self.change_pct:.1f}%: baseline {self.baseline:g} -> "
            f"observed {self.observed:g} (median of {self.window_used}, "
            f"tolerance {self.tolerance_pct:g}%) [{self.before} -> "
            f"{self.after}]"
        )

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "severity": self.severity,
            "polarity": self.polarity,
            "baseline": self.baseline,
            "observed": self.observed,
            "change_pct": self.change_pct,
            "tolerance_pct": self.tolerance_pct,
            "window_used": self.window_used,
            "before": self.before,
            "after": self.after,
            "family": self.family,
        }


@dataclass
class TrendGroup:
    """Store artifacts sharing one provenance identity, time-ordered.

    The read side of the artifact layer: every point is one stored
    campaign's summary (coverage, detection latency, size) keyed by
    the provenance fields the group was built from — campaign family,
    workload label, engine policy."""

    #: grouping identity, e.g. {"campaign": "decoder",
    #: "workload": "uniform(64, 256, seed=3)", "engine": "vector"}
    key: Dict[str, Optional[str]]
    #: one dict per stored artifact, sorted by ``created_at``
    points: List[dict] = field(default_factory=list)

    def label(self) -> str:
        return " / ".join(
            str(value) for value in self.key.values() if value
        ) or "(unlabelled)"

    def __len__(self) -> int:
        return len(self.points)

    def metric_series(self, metric: str) -> TrendSeries:
        """The group's trajectory of one summary metric (``coverage``,
        ``mean_detection_cycle``) as a regular :class:`TrendSeries`,
        so store trends render — and gate — exactly like bench
        history."""
        points = [
            TrendPoint(
                value=float(point[metric]),
                version=str(point.get("repro_version") or "?"),
                timestamp=point.get("created_at"),
                index=index,
            )
            for index, point in enumerate(self.points)
            if isinstance(point.get(metric), (int, float))
            and not isinstance(point.get(metric), bool)
        ]
        return TrendSeries(
            bench=self.label(),
            metric=metric,
            family="store",
            points=points,
        )

    def to_dict(self) -> dict:
        return {
            "key": dict(self.key),
            "count": len(self.points),
            "points": list(self.points),
        }
