"""`AnalyticsReport` — one artifact combining history, gate and store.

:func:`build_report` loads the ``BENCH_*.history.jsonl`` trajectories,
runs the regression detector over them, and (when a store or a
service client is supplied) attaches the provenance-grouped store
trends.  The result renders three ways: ``render()`` text for
terminals, ``to_json()`` for machines, and ``to_html()`` — the
self-contained page CI uploads on every push.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.analytics.history import load_history
from repro.analytics.html import render_html
from repro.analytics.model import TrendGroup, TrendSeries
from repro.analytics.regress import (
    DEFAULT_WINDOW,
    RegressReport,
    detect,
    select_series,
)
from repro.analytics.trends import service_trends, store_trends

__all__ = ["AnalyticsReport", "build_report", "run_regress"]


@dataclass
class AnalyticsReport:
    """Everything the read side knows, in one renderable value."""

    series: List[TrendSeries] = field(default_factory=list)
    regress: RegressReport = field(default_factory=RegressReport)
    store_groups: List[TrendGroup] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    store_root: Optional[str] = None
    service_url: Optional[str] = None
    generated_at: float = 0.0
    repro_version: str = ""

    def to_dict(self) -> dict:
        return {
            "generated_at": self.generated_at,
            "repro_version": self.repro_version,
            "sources": {
                "history_files": list(self.files),
                "store": self.store_root,
                "service": self.service_url,
            },
            "regress": self.regress.to_dict(),
            "series": [entry.to_dict() for entry in self.series],
            "store_trends": [
                group.to_dict() for group in self.store_groups
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_html(self) -> str:
        sources = [f"{len(self.files)} history file(s)"]
        if self.store_root:
            sources.append(f"store {self.store_root}")
        if self.service_url:
            sources.append(f"service {self.service_url}")
        stamp = time.strftime(
            "%Y-%m-%d %H:%M", time.localtime(self.generated_at)
        )
        return render_html(
            self.series,
            self.regress.regressions,
            self.store_groups,
            subtitle=f"{' · '.join(sources)} — generated {stamp}",
            generated_by=f"repro {self.repro_version} "
            f"analytics report",
        )

    def render(self) -> str:
        lines = [
            f"trend analytics — {len(self.files)} history file(s), "
            f"{len(self.series)} series, "
            f"{len(self.store_groups)} store group(s)"
        ]
        lines.append(self.regress.render())
        for group in self.store_groups:
            coverage = group.metric_series("coverage").values()
            trajectory = (
                f"coverage {coverage[0]:g} -> {coverage[-1]:g}"
                if coverage
                else "no coverage points"
            )
            lines.append(
                f"    store {group.label()}: {len(group)} "
                f"artifact(s), {trajectory}"
            )
        return "\n".join(lines)


def run_regress(
    history: Union[str, Sequence[str]],
    window: int = DEFAULT_WINDOW,
    tolerance_pct: Optional[float] = None,
    only: Optional[Sequence[str]] = None,
    skip: Optional[Sequence[str]] = None,
) -> RegressReport:
    """Load the matching histories and run the regression gate.

    Raises ``ValueError`` when the glob matches nothing (a typo'd
    ``--history`` must not pass as "clean") or when ``only``/``skip``
    name an unknown bench."""
    series_map, files, malformed = load_history(history)
    if not files:
        raise ValueError(
            f"no history file matches {history!r} — run the "
            f"benchmarks first (they append BENCH_*.history.jsonl)"
        )
    series = select_series(
        list(series_map.values()), only=only, skip=skip
    )
    report = detect(
        series, window=window, tolerance_pct=tolerance_pct
    )
    report.files = files
    report.malformed = malformed
    return report


def build_report(
    history: Union[str, Sequence[str]] = "BENCH_*.history.jsonl",
    store=None,
    client=None,
    window: int = DEFAULT_WINDOW,
    tolerance_pct: Optional[float] = None,
) -> AnalyticsReport:
    """The full read-side report over every available source.

    ``store`` is a :class:`ResultStore` (or path) for local trend
    queries; ``client`` any :class:`~repro.service.client.ServiceAPI`
    for the same over the wire.  A missing history glob yields an
    empty-but-valid report here (the report is an observability
    artifact; only the ``regress`` gate insists on data)."""
    from repro import __version__
    from repro.results.store import ResultStore

    series_map, files, malformed = load_history(history)
    series = list(series_map.values())
    regress = detect(
        series, window=window, tolerance_pct=tolerance_pct
    )
    regress.files = files
    regress.malformed = malformed
    groups: List[TrendGroup] = []
    store = ResultStore.coerce(store)
    if store is not None:
        groups.extend(store_trends(store))
    if client is not None:
        groups.extend(service_trends(client))
    return AnalyticsReport(
        series=sorted(series, key=lambda s: (s.bench, s.metric)),
        regress=regress,
        store_groups=groups,
        files=files,
        store_root=getattr(store, "root", None),
        service_url=getattr(client, "base_url", None),
        generated_at=time.time(),
        repro_version=__version__,
    )
