"""Cross-version regression detection over bench trend series.

The detector judges every gated series by comparing its **last** point
against a **median-of-trailing-window** baseline — never last-point vs
last-point, so one noisy run on a shared CI runner cannot flake the
gate.  Which metrics are gated, in which direction, and how hard, is
the :class:`MetricPolicy` table, not the CI job script:

* ratio metrics (``speedup``/``*_speedup``, ``coverage``) are
  **higher-is-better, hard** — erosion fails the check (exit 2);
* throughput (``*_faults_per_sec``, ``*_cells_per_sec``) and raw wall
  time (``*_s``, ``*_ms``) are **warn-only** — annotated, never
  failing, because absolute timings on shared runners are noise;
* counters (``faults``, ``cycles``, ``cells``, ``rules_run``, ...)
  describe the workload, not performance, and are not gated at all.

``repro analytics regress`` wraps :func:`detect` in the CLI contract
shared with ``repro store verify``: exit 0 clean, exit 2 on any hard
regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analytics.model import Regression, TrendSeries

__all__ = [
    "DEFAULT_WINDOW",
    "HARD_TOLERANCE_PCT",
    "WARN_TOLERANCE_PCT",
    "MetricPolicy",
    "default_policy",
    "detect",
    "RegressReport",
]

#: trailing-window size the baseline median covers
DEFAULT_WINDOW = 5

#: default tolerance band for hard (ratio) metrics, percent
HARD_TOLERANCE_PCT = 25.0

#: default tolerance band for warn-only (wall-clock) metrics, percent
WARN_TOLERANCE_PCT = 50.0


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is judged: direction, severity, tolerance."""

    polarity: str  # "higher" | "lower"
    severity: str  # "hard" | "warn"
    tolerance_pct: float

    def to_dict(self) -> dict:
        return {
            "polarity": self.polarity,
            "severity": self.severity,
            "tolerance_pct": self.tolerance_pct,
        }


def default_policy(metric: str) -> Optional[MetricPolicy]:
    """The built-in policy table, by metric-name convention.

    ``None`` means the metric is tracked in trends but never gated."""
    if metric == "coverage" or metric.endswith("speedup"):
        return MetricPolicy("higher", "hard", HARD_TOLERANCE_PCT)
    if metric.endswith("_per_sec"):
        return MetricPolicy("higher", "warn", WARN_TOLERANCE_PCT)
    if metric.endswith("_s") or metric.endswith("_ms"):
        return MetricPolicy("lower", "warn", WARN_TOLERANCE_PCT)
    return None


def _change_pct(
    policy: MetricPolicy, baseline: float, observed: float
) -> Optional[float]:
    """Relative change in the bad direction, percent; ``None`` when the
    baseline cannot anchor a ratio (zero/negative baselines occur in
    degenerate synthetic histories, never in real bench output)."""
    if baseline <= 0:
        return None
    if policy.polarity == "higher":
        return (baseline - observed) / baseline * 100.0
    return (observed - baseline) / baseline * 100.0


def detect(
    series: Iterable[TrendSeries],
    window: int = DEFAULT_WINDOW,
    tolerance_pct: Optional[float] = None,
    policies: Optional[Dict[str, MetricPolicy]] = None,
) -> "RegressReport":
    """Judge every gated series; returns the structured report.

    ``tolerance_pct`` overrides every policy's band (the CLI's
    ``--tolerance``); ``policies`` overrides/extends the default table
    per metric name.  Series without a baseline (fewer than two
    points) are recorded as skips, not errors."""
    regressions: List[Regression] = []
    skipped: List[dict] = []
    checked = 0
    for entry in sorted(series, key=lambda s: (s.bench, s.metric)):
        policy = (policies or {}).get(
            entry.metric, default_policy(entry.metric)
        )
        if policy is None:
            continue
        if tolerance_pct is not None:
            policy = MetricPolicy(
                policy.polarity, policy.severity, tolerance_pct
            )
        baseline = entry.baseline(window)
        last = entry.last
        if baseline is None or last is None:
            skipped.append(
                {
                    "bench": entry.bench,
                    "metric": entry.metric,
                    "reason": f"{len(entry)} point(s), no baseline",
                }
            )
            continue
        change = _change_pct(policy, baseline, last.value)
        if change is None:
            skipped.append(
                {
                    "bench": entry.bench,
                    "metric": entry.metric,
                    "reason": f"non-positive baseline {baseline:g}",
                }
            )
            continue
        checked += 1
        if change <= policy.tolerance_pct:
            continue
        window_used = min(window, len(entry) - 1)
        before = entry.points[-2].label() if len(entry) >= 2 else "?"
        regressions.append(
            Regression(
                bench=entry.bench,
                metric=entry.metric,
                severity=policy.severity,
                polarity=policy.polarity,
                baseline=round(baseline, 6),
                observed=round(last.value, 6),
                change_pct=round(change, 2),
                tolerance_pct=policy.tolerance_pct,
                window_used=window_used,
                before=before,
                after=last.label(),
                family=entry.family,
            )
        )
    regressions.sort(
        key=lambda r: (r.severity != "hard", -r.change_pct)
    )
    return RegressReport(
        regressions=regressions,
        skipped=skipped,
        checked=checked,
        window=window,
    )


@dataclass
class RegressReport:
    """What the regression check found, renderable for CLI and CI."""

    regressions: List[Regression] = field(default_factory=list)
    skipped: List[dict] = field(default_factory=list)
    #: gated series that had a usable baseline
    checked: int = 0
    window: int = DEFAULT_WINDOW
    #: history files the series came from (stamped by the CLI)
    files: List[str] = field(default_factory=list)
    #: malformed history lines skipped by the loader
    malformed: int = 0

    @property
    def hard(self) -> List[Regression]:
        return [r for r in self.regressions if r.severity == "hard"]

    @property
    def warnings(self) -> List[Regression]:
        return [r for r in self.regressions if r.severity == "warn"]

    @property
    def ok(self) -> bool:
        """No hard regression — warn findings never fail the check."""
        return not self.hard

    def exit_code(self) -> int:
        """The ``repro store verify`` contract: 0 clean, 2 on failure."""
        return 0 if self.ok else 2

    def to_dict(self) -> dict:
        return {
            "files": list(self.files),
            "window": self.window,
            "checked": self.checked,
            "malformed_lines": self.malformed,
            "hard": len(self.hard),
            "warnings": len(self.warnings),
            "ok": self.ok,
            "regressions": [r.to_dict() for r in self.regressions],
            "skipped": list(self.skipped),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self, verbose: bool = False) -> str:
        lines = [
            f"bench regression check — {len(self.files)} history "
            f"file(s), {self.checked} gated series, window "
            f"{self.window}"
        ]
        for regression in self.regressions:
            tag = (
                "HARD" if regression.severity == "hard" else "warn"
            )
            lines.append(f"    {tag} {regression.describe()}")
        if verbose:
            for skip in self.skipped:
                lines.append(
                    f"    skip {skip['bench']} {skip['metric']}: "
                    f"{skip['reason']}"
                )
        if self.malformed:
            lines.append(
                f"    note {self.malformed} malformed history "
                f"line(s) ignored"
            )
        if self.ok:
            suffix = (
                f" ({len(self.warnings)} warning(s))"
                if self.warnings
                else ""
            )
            lines.append(
                f"ok — no hard regression, {len(self.skipped)} series "
                f"skipped (no baseline){suffix}"
            )
        else:
            lines.append(
                f"FAIL — {len(self.hard)} hard regression(s), "
                f"{len(self.warnings)} warning(s)"
            )
        return "\n".join(lines)


def known_benches(series: Iterable[TrendSeries]) -> List[str]:
    """Sorted unique bench names — what ``--only``/``--skip`` validate
    against."""
    return sorted({entry.bench for entry in series})


def select_series(
    series: Sequence[TrendSeries],
    only: Optional[Sequence[str]] = None,
    skip: Optional[Sequence[str]] = None,
) -> List[TrendSeries]:
    """Bench-level selection for local bisecting; unknown names raise
    ``ValueError`` with the known list (the CLI's one-line
    diagnostic)."""
    known = set(known_benches(series))
    unknown = [
        name
        for name in list(only or []) + list(skip or [])
        if name not in known
    ]
    if unknown:
        raise ValueError(
            f"unknown bench name(s) {unknown}; known: "
            f"{sorted(known)}"
        )
    selected = list(series)
    if only:
        wanted = set(only)
        selected = [s for s in selected if s.bench in wanted]
    if skip:
        dropped = set(skip)
        selected = [s for s in selected if s.bench not in dropped]
    return selected


__all__ += ["known_benches", "select_series"]
