"""Bench-history IO: the shared JSONL append + the tolerant loader.

Write side — :func:`append_entry` is the one history-append helper
every benchmark uses (``run_campaigns.py``, ``bench_suite.py``,
``bench_service.py``, ``bench_analysis.py`` used to hand-roll four
copies of the same block).  It stamps the payload with a timestamp
*and* the current git SHA, so a regression flagged later is
attributable to a commit, and writes one compact JSON line.

Read side — :func:`load_entries` / :func:`load_history` parse every
``BENCH_*.history.jsonl`` trajectory into :class:`HistoryEntry`
records and one :class:`~repro.analytics.model.TrendSeries` per
(bench, numeric metric).  The loader is deliberately tolerant of
schema drift across the four bench families and across versions:
malformed lines are counted and skipped, booleans and identity
columns are not metrics, and an entry missing a column (pre-1.7
records have no ``vector_*``) simply contributes no point to that
series — never a crash.
"""

from __future__ import annotations

import glob as globlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analytics.model import TrendPoint, TrendSeries

__all__ = [
    "git_sha",
    "append_entry",
    "HistoryEntry",
    "load_entries",
    "expand_history",
    "load_history",
]

#: bench-row columns that are identity/configuration, not measurements
NON_METRIC_FIELDS = frozenset({"name", "kind"})


def git_sha() -> Optional[str]:
    """The short SHA of HEAD, or ``None`` outside a git checkout (a
    tarball install, a bare CI workspace) — history entries must never
    fail to append because git is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def append_entry(
    path: str,
    payload: dict,
    timestamp: Optional[float] = None,
    sha: Optional[str] = None,
) -> dict:
    """Append one bench payload to the history trajectory at ``path``.

    Stamps ``timestamp`` (now, 0.1 s resolution) and ``git_sha`` (the
    current short SHA, omitted when unavailable) alongside whatever
    version stamp the payload already carries, then writes the entry
    as one compact sorted JSON line.  Returns the stamped entry."""
    entry = dict(payload)
    entry["timestamp"] = round(
        time.time() if timestamp is None else timestamp, 1
    )
    sha = git_sha() if sha is None else sha
    if sha:
        entry["git_sha"] = sha
    with open(path, "a") as handle:
        json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return entry


@dataclass
class HistoryEntry:
    """One appended bench run: the payload line, parsed and stamped."""

    #: history family — the payload's ``bench`` tag
    family: str
    version: str
    timestamp: Optional[float]
    git_sha: Optional[str]
    #: the per-bench measurement rows (each carries ``name``)
    benches: List[dict] = field(default_factory=list)
    path: str = ""
    #: line number within the file (chronological order)
    index: int = 0

    def label(self) -> str:
        if self.git_sha:
            return f"{self.version} @{self.git_sha}"
        return self.version


def load_entries(path: str) -> Tuple[List[HistoryEntry], int]:
    """``(entries, malformed)`` for one history file.

    Lines that fail to parse, are not JSON objects, or carry no bench
    rows are counted as malformed and skipped — a truncated append
    from a crashed run must not poison the whole trajectory."""
    entries: List[HistoryEntry] = []
    malformed = 0
    with open(path) as handle:
        for index, line in enumerate(handle):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                malformed += 1
                continue
            if not isinstance(data, dict):
                malformed += 1
                continue
            benches = data.get("benches")
            if not isinstance(benches, list):
                malformed += 1
                continue
            entries.append(
                HistoryEntry(
                    family=str(data.get("bench") or "?"),
                    version=str(data.get("version") or "?"),
                    timestamp=(
                        data["timestamp"]
                        if isinstance(
                            data.get("timestamp"), (int, float)
                        )
                        else None
                    ),
                    git_sha=(
                        str(data["git_sha"])
                        if data.get("git_sha")
                        else None
                    ),
                    benches=[
                        row for row in benches if isinstance(row, dict)
                    ],
                    path=path,
                    index=index,
                )
            )
    return entries, malformed


def expand_history(patterns: Union[str, Sequence[str]]) -> List[str]:
    """The sorted, deduplicated file list one or more globs match."""
    if isinstance(patterns, str):
        patterns = [patterns]
    paths: List[str] = []
    for pattern in patterns:
        paths.extend(globlib.glob(pattern))
    return sorted(set(paths))


def load_history(
    patterns: Union[str, Sequence[str]],
) -> Tuple[Dict[str, TrendSeries], List[str], int]:
    """Parse every matching history file into one series table.

    Returns ``(series_by_name, files, malformed)`` where the table
    maps ``"<bench>.<metric>"`` to its :class:`TrendSeries`.  Only
    numeric columns become metrics (bools like ``identical`` are
    pass/fail gates the bench scripts already enforce; ``name`` and
    ``kind`` are identity).  Entries missing a column contribute no
    point to that series, which is how mixed-version histories stay
    loadable."""
    series: Dict[str, TrendSeries] = {}
    malformed = 0
    files = expand_history(patterns)
    for path in files:
        entries, bad = load_entries(path)
        malformed += bad
        for entry in entries:
            for row in entry.benches:
                bench = str(row.get("name") or "?")
                for metric, value in row.items():
                    if metric in NON_METRIC_FIELDS:
                        continue
                    if isinstance(value, bool) or not isinstance(
                        value, (int, float)
                    ):
                        continue
                    key = f"{bench}.{metric}"
                    slot = series.get(key)
                    if slot is None:
                        slot = TrendSeries(
                            bench=bench,
                            metric=metric,
                            family=entry.family,
                            source=path,
                        )
                        series[key] = slot
                    slot.points.append(
                        TrendPoint(
                            value=float(value),
                            version=entry.version,
                            timestamp=entry.timestamp,
                            git_sha=entry.git_sha,
                            index=entry.index,
                        )
                    )
    return series, files, malformed
