"""`repro.analytics` — the read side of the bench/artifact record.

Every push *writes* four ``BENCH_*.history.jsonl`` trajectories and a
provenance-stamped result store; this package *reads* them:

* :mod:`~repro.analytics.history` — the shared history-append helper
  (timestamp + git SHA stamping) and the drift-tolerant loader that
  turns every trajectory into typed
  :class:`~repro.analytics.model.TrendSeries`;
* :mod:`~repro.analytics.regress` — cross-version regression
  detection: median-of-trailing-window baselines, per-metric polarity
  (speedup/coverage higher-is-better hard, wall seconds
  lower-is-better warn-only) and tolerance bands;
* :mod:`~repro.analytics.trends` — coverage/latency trend queries
  over :class:`~repro.results.store.ResultStore` artifacts grouped by
  provenance (campaign family, workload label, engine policy), local
  or over the campaign service's result API;
* :mod:`~repro.analytics.report` / :mod:`~repro.analytics.html` —
  the combined JSON + self-contained static HTML report CI uploads.

CLI: ``repro analytics regress`` (exit 0 clean / 2 on any hard
regression — the ``repro store verify`` contract) and ``repro
analytics report [--out report.html]``.
"""

from repro.analytics.history import (
    HistoryEntry,
    append_entry,
    git_sha,
    load_entries,
    load_history,
)
from repro.analytics.html import render_html
from repro.analytics.model import (
    Regression,
    TrendGroup,
    TrendPoint,
    TrendSeries,
)
from repro.analytics.regress import (
    DEFAULT_WINDOW,
    MetricPolicy,
    RegressReport,
    default_policy,
    detect,
    known_benches,
    select_series,
)
from repro.analytics.report import (
    AnalyticsReport,
    build_report,
    run_regress,
)
from repro.analytics.trends import service_trends, store_trends

__all__ = [
    "HistoryEntry",
    "append_entry",
    "git_sha",
    "load_entries",
    "load_history",
    "render_html",
    "Regression",
    "TrendGroup",
    "TrendPoint",
    "TrendSeries",
    "DEFAULT_WINDOW",
    "MetricPolicy",
    "RegressReport",
    "default_policy",
    "detect",
    "known_benches",
    "select_series",
    "AnalyticsReport",
    "build_report",
    "run_regress",
    "service_trends",
    "store_trends",
]
