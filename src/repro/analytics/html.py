"""Self-contained static HTML rendering of an analytics report.

Pure stdlib: one ``<style>`` block, tables, and inline SVG sparklines
(no JavaScript, no external assets), so CI can upload the file as an
artifact and it renders anywhere.  Regressions come first (hard in
red, warnings in amber), then the per-bench history trajectories, then
the provenance-grouped store trends.
"""

from __future__ import annotations

import html as htmllib
from typing import List, Optional, Sequence

from repro.analytics.model import Regression, TrendGroup, TrendSeries

__all__ = ["render_html"]

_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a1a1a; }
h1 { font-size: 1.4rem; }  h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td { text-align: left; padding: .3rem .6rem;
         border-bottom: 1px solid #e0e0e0; font-variant-numeric:
         tabular-nums; }
th { background: #f5f5f5; font-weight: 600; }
td.num { text-align: right; }
.hard { background: #fdecea; }  .hard td:first-child { color: #b3261e;
       font-weight: 600; }
.warn { background: #fff4e5; }  .warn td:first-child { color: #8a5300;
       font-weight: 600; }
.ok   { color: #1b5e20; font-weight: 600; }
.meta { color: #666; font-size: .85rem; }
svg.spark { vertical-align: middle; }
svg.spark polyline { fill: none; stroke: #4466aa; stroke-width: 1.5; }
svg.spark circle { fill: #b3261e; }
code { background: #f5f5f5; padding: 0 .25rem; border-radius: 3px; }
"""


def _esc(value: object) -> str:
    return htmllib.escape(str(value))


def _fmt(value: object) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def sparkline(
    values: Sequence[float], width: int = 120, height: int = 24
) -> str:
    """An inline SVG polyline of the series, last point dotted.

    Flat or single-point series draw a midline — the chart never
    divides by a zero range."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    pad = 2.0
    inner_w, inner_h = width - 2 * pad, height - 2 * pad
    step = inner_w / max(len(values) - 1, 1)
    coords = [
        (
            pad + index * step,
            pad + inner_h * (1.0 - (value - low) / span),
        )
        for index, value in enumerate(values)
    ]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    last_x, last_y = coords[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2"/></svg>'
    )


def _regressions_section(regressions: List[Regression]) -> List[str]:
    out = ["<h2>Regressions</h2>"]
    if not regressions:
        out.append(
            '<p class="ok">No regression against the windowed '
            "baselines.</p>"
        )
        return out
    out.append(
        "<table><tr><th>severity</th><th>bench</th><th>metric</th>"
        "<th>baseline</th><th>observed</th><th>change</th>"
        "<th>blame</th></tr>"
    )
    for regression in regressions:
        css = "hard" if regression.severity == "hard" else "warn"
        out.append(
            f'<tr class="{css}"><td>{_esc(regression.severity)}</td>'
            f"<td>{_esc(regression.bench)}</td>"
            f"<td>{_esc(regression.metric)}</td>"
            f'<td class="num">{_fmt(regression.baseline)}</td>'
            f'<td class="num">{_fmt(regression.observed)}</td>'
            f'<td class="num">{regression.change_pct:+.1f}%</td>'
            f"<td>{_esc(regression.before)} → "
            f"{_esc(regression.after)}</td></tr>"
        )
    out.append("</table>")
    return out


def _history_section(series: List[TrendSeries]) -> List[str]:
    out = ["<h2>Bench history</h2>"]
    if not series:
        out.append('<p class="meta">No history series loaded.</p>')
        return out
    by_bench: dict = {}
    for entry in series:
        by_bench.setdefault((entry.family, entry.bench), []).append(
            entry
        )
    for (family, bench), rows in sorted(by_bench.items()):
        out.append(
            f"<h3>{_esc(bench)} "
            f'<span class="meta">({_esc(family)})</span></h3>'
        )
        out.append(
            "<table><tr><th>metric</th><th>trend</th><th>first</th>"
            "<th>last</th><th>points</th><th>last entry</th></tr>"
        )
        for entry in sorted(rows, key=lambda s: s.metric):
            values = entry.values()
            last = entry.last
            out.append(
                f"<tr><td>{_esc(entry.metric)}</td>"
                f"<td>{sparkline(values)}</td>"
                f'<td class="num">{_fmt(values[0])}</td>'
                f'<td class="num">{_fmt(values[-1])}</td>'
                f'<td class="num">{len(values)}</td>'
                f"<td>{_esc(last.label() if last else '?')}</td>"
                f"</tr>"
            )
        out.append("</table>")
    return out


def _store_section(groups: List[TrendGroup]) -> List[str]:
    out = ["<h2>Store trends</h2>"]
    if not groups:
        out.append(
            '<p class="meta">No result store queried (pass '
            "<code>--store</code> or <code>--url</code>).</p>"
        )
        return out
    for group in groups:
        out.append(f"<h3>{_esc(group.label())}</h3>")
        coverage = group.metric_series("coverage").values()
        latency = group.metric_series(
            "mean_detection_cycle"
        ).values()
        out.append(
            "<table><tr><th>metric</th><th>trend</th><th>first</th>"
            "<th>last</th><th>points</th></tr>"
        )
        for metric, values in (
            ("coverage", coverage),
            ("mean_detection_cycle", latency),
        ):
            if not values:
                continue
            out.append(
                f"<tr><td>{_esc(metric)}</td>"
                f"<td>{sparkline(values)}</td>"
                f'<td class="num">{_fmt(values[0])}</td>'
                f'<td class="num">{_fmt(values[-1])}</td>'
                f'<td class="num">{len(values)}</td></tr>'
            )
        out.append("</table>")
        keys = ", ".join(
            point["key"][:12] + "…" for point in group.points[-5:]
        )
        out.append(
            f'<p class="meta">{len(group.points)} artifact(s); '
            f"latest keys: {_esc(keys)}</p>"
        )
    return out


def render_html(
    series: List[TrendSeries],
    regressions: List[Regression],
    store_groups: List[TrendGroup],
    title: str = "repro trend analytics",
    subtitle: str = "",
    generated_by: Optional[str] = None,
) -> str:
    """The full self-contained report page."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if subtitle:
        parts.append(f'<p class="meta">{_esc(subtitle)}</p>')
    parts.extend(_regressions_section(regressions))
    parts.extend(_history_section(series))
    parts.extend(_store_section(store_groups))
    if generated_by:
        parts.append(
            f'<p class="meta">generated by {_esc(generated_by)}</p>'
        )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
