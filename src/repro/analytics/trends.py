"""Trend queries over the result store — and over a running service.

The artifact layer stamps every stored campaign with provenance (key
material: campaign family, target identity, workload label, engine
policy) and a summary (coverage, detection latency).  These queries
are the read side: group the store's entries by their provenance
fields and order each group by ``created_at``, yielding
coverage/latency trajectories per (campaign x workload x engine)
identity — without parsing a single JSONL payload (metadata only, so
a thousand-artifact store scans in milliseconds).

:func:`service_trends` is the same query executed over the campaign
service's result-query surface (``GET /jobs`` + ``GET
/results/{key}``): any :class:`~repro.service.client.ServiceAPI`
implementation works — the urllib client against a live ``repro
serve`` or the in-process test double — which makes the analytics
layer the first real remote consumer of that API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytics.model import TrendGroup

__all__ = [
    "GROUP_FIELDS",
    "store_trends",
    "service_trends",
]

#: provenance fields a store group is keyed on, in render order
GROUP_FIELDS = ("campaign", "target", "workload", "engine")


def _target_label(target: object) -> Optional[str]:
    """A short code-family label from the key material's target dict:
    the structural type when one is recorded, else the top-level
    shape (decoder campaigns key on ``{checked, checker}``)."""
    if not isinstance(target, dict):
        return None
    if isinstance(target.get("type"), str):
        label = target["type"]
        if isinstance(target.get("organization"), str):
            label += f"[{target['organization']}]"
        return label
    checked = target.get("checked")
    if isinstance(checked, dict) and isinstance(
        checked.get("type"), str
    ):
        return checked["type"]
    return None


def _summary_point(key: str, meta: dict) -> dict:
    summary = meta.get("summary") or {}
    return {
        "key": key,
        "created_at": meta.get("created_at"),
        "repro_version": meta.get("repro_version") or "?",
        "faults": summary.get("faults"),
        "detected": summary.get("detected"),
        "coverage": summary.get("coverage"),
        "mean_detection_cycle": summary.get("mean_detection_cycle"),
        "cycles_simulated": summary.get("cycles_simulated"),
        "engine": summary.get("engine"),
    }


def _grouped(
    rows: Sequence[Tuple[Dict[str, Optional[str]], dict]],
    group_by: Sequence[str],
) -> List[TrendGroup]:
    groups: Dict[Tuple, TrendGroup] = {}
    for identity, point in rows:
        key = {name: identity.get(name) for name in group_by}
        bucket = tuple(key.values())
        group = groups.get(bucket)
        if group is None:
            group = TrendGroup(key=key)
            groups[bucket] = group
        group.points.append(point)
    for group in groups.values():
        group.points.sort(
            key=lambda point: (
                point.get("created_at") or 0.0,
                point["key"],
            )
        )
    return sorted(
        groups.values(),
        key=lambda group: tuple(
            str(value or "") for value in group.key.values()
        ),
    )


def store_trends(
    store, group_by: Sequence[str] = GROUP_FIELDS
) -> List[TrendGroup]:
    """Provenance-grouped trends over a :class:`ResultStore`.

    ``group_by`` picks which of :data:`GROUP_FIELDS` form the group
    identity (fewer fields = coarser groups).  Shard checkpoints are
    excluded; entries whose metadata is unreadable are skipped."""
    unknown = [name for name in group_by if name not in GROUP_FIELDS]
    if unknown:
        raise ValueError(
            f"unknown group field(s) {unknown}; known: "
            f"{list(GROUP_FIELDS)}"
        )
    rows: List[Tuple[Dict[str, Optional[str]], dict]] = []
    for key in store.keys():
        meta = store.meta(key)
        if meta is None:
            continue
        material = meta.get("material") or {}
        workload = material.get("workload") or {}
        policy = material.get("policy") or {}
        summary = meta.get("summary") or {}
        identity: Dict[str, Optional[str]] = {
            "campaign": meta.get("campaign")
            or material.get("campaign"),
            "target": _target_label(material.get("target")),
            "workload": workload.get("label"),
            "engine": policy.get("engine") or summary.get("engine"),
        }
        rows.append((identity, _summary_point(key, meta)))
    return _grouped(rows, group_by)


def service_trends(
    client, group_by: Sequence[str] = ("campaign", "engine")
) -> List[TrendGroup]:
    """The same query over a running campaign service.

    Walks ``client.jobs()`` for result keys, fetches each campaign
    artifact's metadata with ``client.result(key)``, and groups by
    campaign family + engine (the fields the wire metadata carries).
    Design-report entries are skipped — they have no campaign
    summary."""
    allowed = ("campaign", "engine")
    unknown = [name for name in group_by if name not in allowed]
    if unknown:
        raise ValueError(
            f"unknown group field(s) {unknown} for a service source; "
            f"known: {list(allowed)}"
        )
    keys: List[str] = []
    seen = set()
    for job in client.jobs():
        for key in job.get("result_keys") or ():
            if key not in seen:
                seen.add(key)
                keys.append(key)
    rows: List[Tuple[Dict[str, Optional[str]], dict]] = []
    for key in keys:
        meta = client.result(key)
        if not isinstance(meta, dict) or meta.get("kind") != "campaign":
            continue
        summary = meta.get("summary") or {}
        identity: Dict[str, Optional[str]] = {
            "campaign": meta.get("campaign"),
            "engine": summary.get("engine"),
        }
        rows.append((identity, _summary_point(meta["key"], meta)))
    return _grouped(rows, group_by)
