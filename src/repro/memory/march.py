"""March test algorithms — deterministic memory test workloads.

March tests are the standard off-line/periodic test workloads for RAMs
(the paper's keyword list includes "Concurrent Testing of Memories"; its
companion literature, e.g. [NIC 94] UBIST, runs March-like sequences
concurrently).  We implement the classical algorithms as first-class
objects so they can serve two roles here:

* an off-line detector for the behavioural fault models (stuck-at cells,
  data lines, coupling faults) — with the textbook coverage guarantees
  tested in the suite;
* deterministic *address streams* for the decoder fault campaigns (a
  sweeping address pattern exercises every decoder line, giving the
  deterministic latency bounds of :mod:`repro.core.deterministic`).

Notation: ⇑ ascending, ⇓ descending, ⇕ either; r0/r1 read expecting 0/1,
w0/w1 write 0/1.  Data backgrounds are all-0s/all-1s words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.memory.ram import BehavioralRAM

__all__ = [
    "MarchElement",
    "MarchTest",
    "MARCH_C_MINUS",
    "MATS_PLUS",
    "MARCH_X",
    "MARCH_Y",
    "MARCH_TESTS",
    "run_march",
    "MarchViolation",
    "march_address_stream",
]


@dataclass(frozen=True)
class MarchElement:
    """One march element: an address order and a list of operations.

    ``order`` is '+' (ascending), '-' (descending) or '*' (either; we use
    ascending).  Operations are strings in {'r0', 'r1', 'w0', 'w1'}.
    """

    order: str
    operations: Tuple[str, ...]

    def __post_init__(self):
        if self.order not in ("+", "-", "*"):
            raise ValueError(f"order must be +, - or *, got {self.order!r}")
        for op in self.operations:
            if op not in ("r0", "r1", "w0", "w1"):
                raise ValueError(f"unknown march operation {op!r}")

    def addresses(self, words: int) -> Iterator[int]:
        if self.order == "-":
            return iter(range(words - 1, -1, -1))
        return iter(range(words))

    def __str__(self) -> str:
        arrow = {"+": "up", "-": "down", "*": "any"}[self.order]
        return f"{arrow}({','.join(self.operations)})"


@dataclass(frozen=True)
class MarchTest:
    """A named sequence of march elements."""

    name: str
    elements: Tuple[MarchElement, ...]

    @property
    def complexity(self) -> int:
        """Operations per cell (the usual xN rating: March C- is 10N)."""
        return sum(len(e.operations) for e in self.elements)

    def __str__(self) -> str:
        body = "; ".join(str(e) for e in self.elements)
        return f"{self.name}: {{{body}}} ({self.complexity}N)"


def _element(order: str, *ops: str) -> MarchElement:
    return MarchElement(order, tuple(ops))


#: March C-: 10N; detects SAFs, TFs, CFins, CFids, AFs.
MARCH_C_MINUS = MarchTest(
    "March C-",
    (
        _element("*", "w0"),
        _element("+", "r0", "w1"),
        _element("+", "r1", "w0"),
        _element("-", "r0", "w1"),
        _element("-", "r1", "w0"),
        _element("*", "r0"),
    ),
)

#: MATS+: 5N; detects SAFs and AFs.
MATS_PLUS = MarchTest(
    "MATS+",
    (
        _element("*", "w0"),
        _element("+", "r0", "w1"),
        _element("-", "r1", "w0"),
    ),
)

#: March X: 6N; SAFs, TFs, CFins.
MARCH_X = MarchTest(
    "March X",
    (
        _element("*", "w0"),
        _element("+", "r0", "w1"),
        _element("-", "r1", "w0"),
        _element("*", "r0"),
    ),
)

#: March Y: 8N; SAFs, TFs, some linked faults.
MARCH_Y = MarchTest(
    "March Y",
    (
        _element("*", "w0"),
        _element("+", "r0", "w1", "r1"),
        _element("-", "r1", "w0", "r0"),
        _element("*", "r0"),
    ),
)


#: the classical algorithms by display name (used by workload
#: serialisation and the CLI's march campaign command)
MARCH_TESTS = {
    test.name: test
    for test in (MARCH_C_MINUS, MATS_PLUS, MARCH_X, MARCH_Y)
}


@dataclass
class MarchViolation:
    """One failed read during a march run."""

    element_index: int
    operation: str
    address: int
    expected: Tuple[int, ...]
    observed: Tuple[int, ...]


def _background(ram: BehavioralRAM, bit: int) -> Tuple[int, ...]:
    return (bit,) * ram.organization.bits


def run_march(ram: BehavioralRAM, test: MarchTest) -> List[MarchViolation]:
    """Execute a march test; returns the list of read violations.

    An empty list means the memory passed (no detectable fault for this
    algorithm's coverage class).
    """
    violations: List[MarchViolation] = []
    words = ram.organization.words
    for element_index, element in enumerate(test.elements):
        for address in element.addresses(words):
            for op in element.operations:
                kind, bit = op[0], int(op[1])
                if kind == "w":
                    ram.write(address, _background(ram, bit))
                else:
                    expected = _background(ram, bit)
                    observed = ram.read_data(address)
                    if observed != expected:
                        violations.append(
                            MarchViolation(
                                element_index=element_index,
                                operation=op,
                                address=address,
                                expected=expected,
                                observed=observed,
                            )
                        )
    return violations


def march_address_stream(
    test: MarchTest, words: int, reads_only: bool = False
) -> List[int]:
    """Flatten a march test into the address-per-cycle stream it applies.

    .. deprecated:: 1.4
        Thin shim over ``Workload.march`` (1.3+): the canonical compiled
        form of a march test is a :class:`repro.scenarios.MarchWorkload`,
        whose read/write accesses also drive the RAM-level march
        campaigns; this helper keeps the pre-1.3 address-only view.
    """
    import warnings

    warnings.warn(
        "march_address_stream() is a 1.2-era shim; build "
        "Workload.march(test, words, reads_only=reads_only) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.scenarios.workload import Workload

    return Workload.march(test, words, reads_only=reads_only).address_list()
