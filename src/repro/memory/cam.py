"""Behavioural CAM — the last of the §IV "other memory types".

A content-addressable memory stores tag words and answers *match*
queries: which entries equal the search key?  Reads-by-index reuse the
RAM read path (and hence the parity protection); the match port is
modelled with per-entry match lines so the extension experiments can
study how a stored-cell fault corrupts matching (a stuck cell causes both
false hits and false misses, only the read path of which parity can see —
the match path needs the decoder-style checking on its priority encoder,
which we model behaviourally).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.memory.faults import MemoryFault
from repro.memory.organization import MemoryOrganization
from repro.memory.ram import BehavioralRAM

__all__ = ["BehavioralCAM"]


class BehavioralCAM:
    """CAM with ``entries`` tag words of ``tag_bits`` bits each."""

    def __init__(self, entries: int, tag_bits: int):
        if entries < 1 or entries & (entries - 1):
            raise ValueError(
                f"entry count must be a power of two, got {entries}"
            )
        mux = 2 if entries >= 4 else 1
        if mux == 1:
            raise ValueError("CAM needs at least 4 entries")
        self.entries = entries
        self.tag_bits = tag_bits
        self._store = BehavioralRAM(
            MemoryOrganization(words=entries, bits=tag_bits, column_mux=mux)
        )
        self._valid: List[bool] = [False] * entries

    def __repr__(self) -> str:
        return f"BehavioralCAM(entries={self.entries}, tag_bits={self.tag_bits})"

    def inject(self, fault: MemoryFault) -> None:
        """Behavioural faults land on the backing store (read/match path)."""
        self._store.inject(fault)

    def clear_faults(self) -> None:
        self._store.clear_faults()

    def write(self, index: int, tag: Sequence[int]) -> None:
        self._store.write(index, tag)
        self._valid[index] = True

    def invalidate(self, index: int) -> None:
        if not 0 <= index < self.entries:
            raise ValueError(f"index {index} out of range")
        self._valid[index] = False

    def read(self, index: int) -> Tuple[int, ...]:
        """Read-by-index (data + parity) — the parity-protected path."""
        return self._store.read(index)

    def parity_ok(self, index: int) -> bool:
        return self._store.parity_ok(index)

    def match_lines(self, key: Sequence[int]) -> Tuple[int, ...]:
        """Per-entry match vector for a search key (faults applied)."""
        key = tuple(key)
        if len(key) != self.tag_bits:
            raise ValueError(
                f"expected {self.tag_bits} key bits, got {len(key)}"
            )
        lines = []
        for index in range(self.entries):
            if not self._valid[index]:
                lines.append(0)
                continue
            stored = self._store.read_data(index)
            lines.append(1 if stored == key else 0)
        return tuple(lines)

    def lookup(self, key: Sequence[int]) -> Optional[int]:
        """First matching entry index (priority encoder), or None."""
        for index, hit in enumerate(self.match_lines(key)):
            if hit:
                return index
        return None
