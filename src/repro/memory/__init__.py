"""Behavioural memory models: organisation, RAM, ROM, CAM, fault models."""

from repro.memory.cam import BehavioralCAM
from repro.memory.faults import (
    CellStuckAt,
    CouplingFault,
    DataLineStuckAt,
    MemoryFault,
    MuxLineStuckAt,
)
from repro.memory.march import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    MarchElement,
    MarchTest,
    MarchViolation,
    march_address_stream,
    run_march,
)
from repro.memory.organization import (
    PAPER_ORGS,
    MemoryOrganization,
    paper_org,
)
from repro.memory.ram import BehavioralRAM
from repro.memory.rom_mem import BehavioralROM

__all__ = [
    "MemoryOrganization",
    "PAPER_ORGS",
    "paper_org",
    "BehavioralRAM",
    "BehavioralROM",
    "BehavioralCAM",
    "MemoryFault",
    "CellStuckAt",
    "DataLineStuckAt",
    "MuxLineStuckAt",
    "CouplingFault",
    "MarchElement",
    "MarchTest",
    "MarchViolation",
    "MARCH_C_MINUS",
    "MATS_PLUS",
    "MARCH_X",
    "MARCH_Y",
    "run_march",
    "march_address_stream",
]
