"""Behavioural memory fault models.

These act on the *behavioural* parts of the memory (cell array, MUX, data
register); decoder and ROM faults are structural
(:class:`repro.circuits.faults.NetStuckAt` injected into the gate-level
trees).  Read-path faults mutate only the value observed by a read — the
array contents are kept pristine so faults can be added and removed
freely during a campaign.  The one exception is the *write-triggered*
coupling model (:class:`CouplingFault` with ``write_triggered=True``),
whose whole point is that an aggressor write corrupts the victim's
stored state — campaigns re-initialise contents per fault anyway.
"""

from __future__ import annotations

import abc
from typing import Sequence, Tuple

__all__ = [
    "MemoryFault",
    "CellStuckAt",
    "DataLineStuckAt",
    "MuxLineStuckAt",
    "CouplingFault",
    "CompositeFault",
]


class MemoryFault(abc.ABC):
    """A fault observable on the read path of a behavioural memory."""

    @abc.abstractmethod
    def apply_read(self, address: int, word: list, memory) -> None:
        """Mutate ``word`` (list of bits) in place for a read of ``address``."""

    def apply_write(self, address: int, word: list, memory) -> None:
        """Hook for faults that corrupt writes; default: no effect."""


class CellStuckAt(MemoryFault):
    """One cell of the array stuck at a value — flips at most one output
    bit, the single-parity-bit case of §II."""

    def __init__(self, address: int, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.address = address
        self.bit = bit
        self.value = value

    def apply_read(self, address: int, word: list, memory) -> None:
        if address == self.address:
            word[self.bit] = self.value

    def __repr__(self) -> str:
        return f"CellStuckAt(addr={self.address}, bit={self.bit}, sa{self.value})"


class DataLineStuckAt(MemoryFault):
    """A data-register/output line stuck — affects every address."""

    def __init__(self, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.bit = bit
        self.value = value

    def apply_read(self, address: int, word: list, memory) -> None:
        word[self.bit] = self.value

    def __repr__(self) -> str:
        return f"DataLineStuckAt(bit={self.bit}, sa{self.value})"


class MuxLineStuckAt(MemoryFault):
    """A column-mux way stuck: reads of one mux way return a stuck bit.

    Each MUX line connects to exactly one memory output (§II), so this
    also flips at most one output bit per read — parity-detectable.
    """

    def __init__(self, column: int, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.column = column
        self.bit = bit
        self.value = value

    def apply_read(self, address: int, word: list, memory) -> None:
        if memory.organization.split_address(address)[1] == self.column:
            word[self.bit] = self.value

    def __repr__(self) -> str:
        return (
            f"MuxLineStuckAt(column={self.column}, bit={self.bit}, "
            f"sa{self.value})"
        )


class CouplingFault(MemoryFault):
    """Idempotent coupling fault (CFid) between an aggressor and a victim.

    Two models, selected by ``write_triggered``:

    * ``False`` (default, the pre-1.3 behaviour) — *state coupling* on
      the read path: reading the victim sees ``forced`` in one bit
      whenever the aggressor cell currently holds ``trigger``;
    * ``True`` — the textbook CFid: a write that *transitions* the
      aggressor bit into ``trigger`` forces the victim's **stored** bit
      to ``forced``.  This exercises :meth:`MemoryFault.apply_write`
      and carries the classical march guarantees: March C- detects
      every ⟨aggressor, victim⟩ order, MATS+ provably misses the
      aggressor-above-victim case.

    Beyond the paper's single-stuck-at model; used by the extension tests
    to show what parity and each march algorithm do and do not catch.
    """

    def __init__(
        self,
        aggressor_address: int,
        aggressor_bit: int,
        victim_address: int,
        victim_bit: int,
        trigger: int = 1,
        forced: int = 1,
        write_triggered: bool = False,
    ):
        self.aggressor_address = aggressor_address
        self.aggressor_bit = aggressor_bit
        self.victim_address = victim_address
        self.victim_bit = victim_bit
        self.trigger = trigger
        self.forced = forced
        self.write_triggered = write_triggered
        if write_triggered and aggressor_address == victim_address:
            raise ValueError(
                "write-triggered coupling needs distinct aggressor and "
                "victim cells"
            )

    def apply_read(self, address: int, word: list, memory) -> None:
        if self.write_triggered or address != self.victim_address:
            return
        aggressor = memory.raw_word(self.aggressor_address)
        if aggressor[self.aggressor_bit] == self.trigger:
            word[self.victim_bit] = self.forced

    def apply_write(self, address: int, word: list, memory) -> None:
        """Write-triggered model: an aggressor-bit transition into
        ``trigger`` corrupts the victim's stored bit (called before the
        array update, so the pre-write value is still readable)."""
        if not self.write_triggered or address != self.aggressor_address:
            return
        old = memory.raw_word(address)[self.aggressor_bit]
        new = word[self.aggressor_bit]
        if new == self.trigger and old != self.trigger:
            memory.force_stored_bit(
                self.victim_address, self.victim_bit, self.forced
            )

    def __repr__(self) -> str:
        mode = "w" if self.write_triggered else "r"
        return (
            f"CouplingFault(aggr=({self.aggressor_address},"
            f"{self.aggressor_bit}), victim=({self.victim_address},"
            f"{self.victim_bit}), {mode}-triggered)"
        )


class CompositeFault(MemoryFault):
    """Several behavioural faults active together, applied in order —
    the multi-fault combination the scenario layer routes as one unit."""

    def __init__(self, faults: Sequence[MemoryFault]):
        self.faults: Tuple[MemoryFault, ...] = tuple(faults)
        if not self.faults:
            raise ValueError("a composite fault needs at least one part")

    def apply_read(self, address: int, word: list, memory) -> None:
        for fault in self.faults:
            fault.apply_read(address, word, memory)

    def apply_write(self, address: int, word: list, memory) -> None:
        for fault in self.faults:
            fault.apply_write(address, word, memory)

    def __repr__(self) -> str:
        return f"CompositeFault({', '.join(repr(f) for f in self.faults)})"
