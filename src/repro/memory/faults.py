"""Behavioural memory fault models.

These act on the *behavioural* parts of the memory (cell array, MUX, data
register); decoder and ROM faults are structural
(:class:`repro.circuits.faults.NetStuckAt` injected into the gate-level
trees).  Each fault mutates the value observed by a read — the array
contents themselves are kept pristine so faults can be added and removed
freely during a campaign.
"""

from __future__ import annotations

import abc
from typing import Sequence

__all__ = [
    "MemoryFault",
    "CellStuckAt",
    "DataLineStuckAt",
    "MuxLineStuckAt",
    "CouplingFault",
]


class MemoryFault(abc.ABC):
    """A fault observable on the read path of a behavioural memory."""

    @abc.abstractmethod
    def apply_read(self, address: int, word: list, memory) -> None:
        """Mutate ``word`` (list of bits) in place for a read of ``address``."""

    def apply_write(self, address: int, word: list, memory) -> None:
        """Hook for faults that corrupt writes; default: no effect."""


class CellStuckAt(MemoryFault):
    """One cell of the array stuck at a value — flips at most one output
    bit, the single-parity-bit case of §II."""

    def __init__(self, address: int, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.address = address
        self.bit = bit
        self.value = value

    def apply_read(self, address: int, word: list, memory) -> None:
        if address == self.address:
            word[self.bit] = self.value

    def __repr__(self) -> str:
        return f"CellStuckAt(addr={self.address}, bit={self.bit}, sa{self.value})"


class DataLineStuckAt(MemoryFault):
    """A data-register/output line stuck — affects every address."""

    def __init__(self, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.bit = bit
        self.value = value

    def apply_read(self, address: int, word: list, memory) -> None:
        word[self.bit] = self.value

    def __repr__(self) -> str:
        return f"DataLineStuckAt(bit={self.bit}, sa{self.value})"


class MuxLineStuckAt(MemoryFault):
    """A column-mux way stuck: reads of one mux way return a stuck bit.

    Each MUX line connects to exactly one memory output (§II), so this
    also flips at most one output bit per read — parity-detectable.
    """

    def __init__(self, column: int, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0/1, got {value!r}")
        self.column = column
        self.bit = bit
        self.value = value

    def apply_read(self, address: int, word: list, memory) -> None:
        if memory.organization.split_address(address)[1] == self.column:
            word[self.bit] = self.value

    def __repr__(self) -> str:
        return (
            f"MuxLineStuckAt(column={self.column}, bit={self.bit}, "
            f"sa{self.value})"
        )


class CouplingFault(MemoryFault):
    """Idempotent coupling: reading the victim sees the aggressor's value
    forced into one bit when the aggressor cell holds ``trigger``.

    Beyond the paper's single-stuck-at model; used by the extension tests
    to show what parity does and does not catch.
    """

    def __init__(
        self,
        aggressor_address: int,
        aggressor_bit: int,
        victim_address: int,
        victim_bit: int,
        trigger: int = 1,
        forced: int = 1,
    ):
        self.aggressor_address = aggressor_address
        self.aggressor_bit = aggressor_bit
        self.victim_address = victim_address
        self.victim_bit = victim_bit
        self.trigger = trigger
        self.forced = forced

    def apply_read(self, address: int, word: list, memory) -> None:
        if address != self.victim_address:
            return
        aggressor = memory.raw_word(self.aggressor_address)
        if aggressor[self.aggressor_bit] == self.trigger:
            word[self.victim_bit] = self.forced

    def __repr__(self) -> str:
        return (
            f"CouplingFault(aggr=({self.aggressor_address},"
            f"{self.aggressor_bit}), victim=({self.victim_address},"
            f"{self.victim_bit}))"
        )
